"""Query-log corpora, calibrated workloads, and the analysis pipeline.

Public surface:

* Workloads: :class:`SourceProfile`, :class:`QueryGenerator`,
  :func:`generate_source_log`, the per-source profiles
  (:data:`DBPEDIA`, :data:`WIKIDATA_ROBOTIC`, …)
* Corpora: :class:`QueryLogCorpus`, :func:`normalize_text`
* Analysis: :func:`analyze_corpus`, :func:`analyze_query`,
  :class:`LogReport`, :func:`combine_reports`
* Reports: the ``render_table*`` functions of :mod:`repro.logs.report`
"""

from .analyzer import (
    LogReport,
    VUCounter,
    analyze_corpus,
    analyze_many,
    analyze_query,
    combine_reports,
)
from .corpus import (
    ParsedEntry,
    QueryLogCorpus,
    merge_table2,
    normalize_text,
)
from .report import (
    render_figure3,
    render_path_classes,
    render_table2,
    render_table3,
    render_table45,
    render_table6,
    render_table7,
    render_table8,
    render_well_designed,
)
from .workload import (
    ALL_PROFILES,
    BIOPORTAL,
    BRITISH_MUSEUM,
    DBPEDIA,
    DBPEDIA_FAMILY,
    LGD,
    QueryGenerator,
    SourceProfile,
    WIKIDATA_FAMILY,
    WIKIDATA_ORGANIC,
    WIKIDATA_ROBOTIC,
    generate_source_log,
)

__all__ = [
    "LogReport",
    "VUCounter",
    "analyze_corpus",
    "analyze_many",
    "analyze_query",
    "combine_reports",
    "ParsedEntry",
    "QueryLogCorpus",
    "merge_table2",
    "normalize_text",
    "render_figure3",
    "render_path_classes",
    "render_table2",
    "render_table3",
    "render_table45",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_well_designed",
    "ALL_PROFILES",
    "BIOPORTAL",
    "BRITISH_MUSEUM",
    "DBPEDIA",
    "DBPEDIA_FAMILY",
    "LGD",
    "QueryGenerator",
    "SourceProfile",
    "WIKIDATA_FAMILY",
    "WIKIDATA_ORGANIC",
    "WIKIDATA_ROBOTIC",
    "generate_source_log",
]
