"""Query-log corpora, calibrated workloads, and the analysis pipeline.

Public surface:

* Workloads: :class:`SourceProfile`, :class:`QueryGenerator`,
  :func:`generate_source_log`, the per-source profiles
  (:data:`DBPEDIA`, :data:`WIKIDATA_ROBOTIC`, …)
* Corpora: :class:`QueryLogCorpus`, :func:`normalize_text`
* Analysis: :func:`analyze_corpus`, :func:`analyze_query` (reference),
  :func:`analyze_query_fused` (the single-traversal production
  battery), :class:`LogReport`, :func:`combine_reports`
* Pipeline: :func:`run_study` (fused parse+analyze workers),
  :func:`stream_corpus` (dedup-first parallel ingestion),
  :class:`PipelineStats`, :class:`AnalysisCache`,
  :func:`battery_fingerprint`
* Reports: the ``render_table*`` functions of :mod:`repro.logs.report`
"""

from .analyzer import (
    BATTERY_VERSION,
    COUNTER_FIELDS,
    LogReport,
    VUCounter,
    analyze_corpus,
    analyze_many,
    analyze_query,
    apply_analysis,
    combine_reports,
    encode_analysis,
)
from .battery import analyze_query_fused, clear_battery_memos
from .cache import AnalysisCache, battery_fingerprint, cache_key
from .corpus import (
    ParsedEntry,
    QueryLogCorpus,
    merge_table2,
    normalize_text,
)
from .pipeline import (
    PipelineStats,
    iter_log_entries,
    run_study,
    stream_corpus,
)
from .report import (
    render_figure3,
    render_path_classes,
    render_table2,
    render_table3,
    render_table45,
    render_table6,
    render_table7,
    render_table8,
    render_well_designed,
)
from .workload import (
    ALL_PROFILES,
    BIOPORTAL,
    BRITISH_MUSEUM,
    DBPEDIA,
    DBPEDIA_FAMILY,
    LGD,
    QueryGenerator,
    SourceProfile,
    WIKIDATA_FAMILY,
    WIKIDATA_ORGANIC,
    WIKIDATA_ROBOTIC,
    generate_source_log,
)

__all__ = [
    "AnalysisCache",
    "BATTERY_VERSION",
    "COUNTER_FIELDS",
    "LogReport",
    "PipelineStats",
    "VUCounter",
    "analyze_corpus",
    "analyze_many",
    "analyze_query",
    "analyze_query_fused",
    "apply_analysis",
    "clear_battery_memos",
    "battery_fingerprint",
    "cache_key",
    "combine_reports",
    "encode_analysis",
    "iter_log_entries",
    "run_study",
    "stream_corpus",
    "ParsedEntry",
    "QueryLogCorpus",
    "merge_table2",
    "normalize_text",
    "render_figure3",
    "render_path_classes",
    "render_table2",
    "render_table3",
    "render_table45",
    "render_table6",
    "render_table7",
    "render_table8",
    "render_well_designed",
    "ALL_PROFILES",
    "BIOPORTAL",
    "BRITISH_MUSEUM",
    "DBPEDIA",
    "DBPEDIA_FAMILY",
    "LGD",
    "QueryGenerator",
    "SourceProfile",
    "WIKIDATA_FAMILY",
    "WIKIDATA_ORGANIC",
    "WIKIDATA_ROBOTIC",
    "generate_source_log",
]
