"""The SHARQL-style analysis battery (Sections 9.3–9.6).

:func:`analyze_corpus` runs every structural analysis over a corpus and
returns a :class:`LogReport` holding Valid- and Unique-weighted counters
for each of the paper's tables:

* triple-count histogram (Figure 3),
* keyword features (Table 3),
* operator-set fragments and the CQ / CQ+F / C2RPQ+F subtotals
  (Tables 4–5),
* hypertree width and free-connex acyclicity of CQ+F queries (Table 6),
* canonical-graph shapes, with and without constants (Table 7),
* property-path type buckets plus STE / C_tract / T_tract coverage
  (Table 8 and the Section 9.6 discussion),
* well-designedness of the And/Filter/Optional fragment (Section 9.4).

Every per-query analysis is computed once per *unique* query and then
weighted by its multiplicity for the Valid numbers — exactly how a study
over hundreds of millions of queries has to operate.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional as Opt, Tuple

from ..core.parallelism import fanout_chunk_size, pool_width
from ..sparql.ast import PathPattern, Query
from ..sparql.features import (
    count_triple_patterns,
    is_opt_fragment,
    operator_set,
    query_features,
)
from ..sparql.hypergraph import (
    canonical_hypergraph,
    hypertree_width,
    is_free_connex_acyclic,
)
from ..sparql.pathtypes import (
    path_in_ctract,
    path_in_ttract,
    path_is_simple_transitive,
    table8_bucket,
)
from ..sparql.shapes import (
    is_suitable_for_graph_analysis,
    query_shape,
)
from ..sparql.welldesigned import (
    is_union_of_well_designed,
    is_well_behaved,
    is_well_designed,
)
from .battery import analyze_query_fused
from .corpus import QueryLogCorpus

#: Version of the analysis battery.  Bump whenever :func:`analyze_query`
#: or :func:`apply_analysis` change what they compute or how results are
#: keyed — the persistent cache (:mod:`repro.logs.cache`) folds it into
#: its fingerprint, so stale cached analyses invalidate automatically.
BATTERY_VERSION = "1"

#: The counter fields of :class:`LogReport`, in declaration order; the
#: single source of truth for merging, fingerprinting, and the identity
#: checks of the differential oracle.
COUNTER_FIELDS = (
    "triple_histogram",
    "features",
    "operator_sets",
    "query_types",
    "htw",
    "free_connex",
    "shapes_with_constants",
    "shapes_without_constants",
    "path_buckets",
    "path_classes",
    "well_designed",
    "union_well_designed",
    "well_behaved",
)


class VUCounter:
    """A counter that tracks Valid (multiplicity-weighted) and Unique
    counts per key."""

    def __init__(self):
        self.valid: Counter = Counter()
        self.unique: Counter = Counter()

    def add(self, key, multiplicity: int) -> None:
        self.valid[key] += multiplicity
        self.unique[key] += 1

    def items(self):
        keys = sorted(set(self.valid) | set(self.unique), key=str)
        return [(key, self.valid[key], self.unique[key]) for key in keys]

    def totals(self) -> Tuple[int, int]:
        return sum(self.valid.values()), sum(self.unique.values())


@dataclass
class LogReport:
    """All analysis results for one corpus."""

    source: str
    total: int
    valid: int
    unique: int
    triple_histogram: VUCounter = field(default_factory=VUCounter)
    features: VUCounter = field(default_factory=VUCounter)
    operator_sets: VUCounter = field(default_factory=VUCounter)
    query_types: VUCounter = field(default_factory=VUCounter)
    htw: VUCounter = field(default_factory=VUCounter)
    free_connex: VUCounter = field(default_factory=VUCounter)
    shapes_with_constants: VUCounter = field(default_factory=VUCounter)
    shapes_without_constants: VUCounter = field(default_factory=VUCounter)
    path_buckets: VUCounter = field(default_factory=VUCounter)
    path_classes: VUCounter = field(default_factory=VUCounter)
    well_designed: VUCounter = field(default_factory=VUCounter)
    union_well_designed: VUCounter = field(default_factory=VUCounter)
    well_behaved: VUCounter = field(default_factory=VUCounter)
    #: per-stage timings and cache accounting when the report was built
    #: by :func:`repro.logs.pipeline.run_study` (a
    #: :class:`~repro.logs.pipeline.PipelineStats`); ``None`` for the
    #: sequential battery
    stats: Opt[object] = field(default=None, repr=False, compare=False)

    # subtotals over operator sets ------------------------------------------------

    def fragment_subtotal(self, allowed: frozenset) -> Tuple[int, int]:
        valid = unique = 0
        for key, v, u in self.operator_sets.items():
            if frozenset(key) <= allowed:
                valid += v
                unique += u
        return valid, unique

    def cq_subtotal(self) -> Tuple[int, int]:
        return self.fragment_subtotal(frozenset({"And"}))

    def cq_f_subtotal(self) -> Tuple[int, int]:
        return self.fragment_subtotal(frozenset({"And", "Filter"}))

    def c2rpq_f_subtotal(self) -> Tuple[int, int]:
        return self.fragment_subtotal(
            frozenset({"And", "Filter", "2RPQ"})
        )


def _histogram_bucket(count: int) -> str:
    """Figure 3 buckets: 0..10 and '11+'."""
    return str(count) if count <= 10 else "11+"


def analyze_query(query: Query) -> Dict[str, object]:
    """All per-query analysis results (memoized per unique query by the
    corpus loop).

    This is the *reference* battery: each metric is an independent
    library call, at the cost of re-walking the AST per metric.  The
    production paths (:func:`analyze_corpus`, the study pipeline, the
    service) run :func:`repro.logs.battery.analyze_query_fused`, which
    must stay observably identical — the ``fused-battery`` differential
    oracle in :mod:`repro.testing` fuzzes the equivalence against this
    implementation."""
    out: Dict[str, object] = {}
    out["triples"] = count_triple_patterns(query)
    out["features"] = query_features(query)
    out["operators"] = operator_set(query)
    out["type"] = query.query_type

    operators = out["operators"]
    if operators <= {"And", "Filter"} and out["triples"] > 0:
        hypergraph = canonical_hypergraph(query)
        try:
            out["htw"] = hypertree_width(hypergraph, max_k=4)
        except ValueError:
            out["htw"] = None
        out["fca"] = is_free_connex_acyclic(query)
    if is_suitable_for_graph_analysis(query):
        out["shape_with"] = query_shape(query, with_constants=True)
        out["shape_without"] = query_shape(query, with_constants=False)
    if is_opt_fragment(query):
        out["well_designed"] = is_well_designed(query.pattern)
        out["well_behaved"] = is_well_behaved(query.pattern)
    if operators <= {"And", "Filter", "Optional", "Union"}:
        out["uwd"] = is_union_of_well_designed(query.pattern)
    paths = [
        node.path
        for node in query.pattern.walk()
        if isinstance(node, PathPattern)
    ]
    if paths:
        out["path_buckets"] = [table8_bucket(path) for path in paths]
        out["path_classes"] = [
            (
                path_is_simple_transitive(path),
                path_in_ctract(path),
                path_in_ttract(path),
            )
            for path in paths
        ]
    return out


def apply_analysis(
    report: LogReport, analysis: Dict[str, object], multiplicity: int
) -> None:
    """Fold one per-query analysis into a report's counters.

    Accepts both the in-memory form of :func:`analyze_query` and the
    JSON round-tripped form of :func:`encode_analysis` (sets arrive as
    lists, tuples as lists) — every counter key built here is identical
    for the two, which is what makes the parallel and cached pipeline
    paths counter-for-counter equal to the sequential battery.
    """
    report.query_types.add(analysis["type"], multiplicity)
    if analysis["type"] == "DESCRIBE":
        # the paper omits DESCRIBE from the per-feature statistics
        return
    report.triple_histogram.add(
        _histogram_bucket(analysis["triples"]), multiplicity
    )
    for feature in analysis["features"]:
        report.features.add(feature, multiplicity)
    report.operator_sets.add(
        tuple(sorted(analysis["operators"])), multiplicity
    )
    if "htw" in analysis and analysis["htw"] is not None:
        report.htw.add(analysis["htw"], multiplicity)
        report.free_connex.add(bool(analysis["fca"]), multiplicity)
    if "shape_with" in analysis:
        report.shapes_with_constants.add(
            analysis["shape_with"], multiplicity
        )
        report.shapes_without_constants.add(
            analysis["shape_without"], multiplicity
        )
    if "well_designed" in analysis:
        report.well_designed.add(
            bool(analysis["well_designed"]), multiplicity
        )
        report.well_behaved.add(
            bool(analysis["well_behaved"]), multiplicity
        )
    if "uwd" in analysis:
        report.union_well_designed.add(
            bool(analysis["uwd"]), multiplicity
        )
    for bucket in analysis.get("path_buckets", ()):
        report.path_buckets.add(bucket, multiplicity)
    for ste, ctract, ttract in analysis.get("path_classes", ()):
        report.path_classes.add(
            (
                "ste" if ste else "non-ste",
                "ctract" if ctract else "non-ctract",
                "ttract" if ttract else "non-ttract",
            ),
            multiplicity,
        )


def encode_analysis(analysis: Dict[str, object]) -> Dict[str, object]:
    """The JSON-able form of an :func:`analyze_query` result.

    Sets become sorted lists and bool-triples become lists; everything
    else (ints, bools, strings, the ``htw: None`` marker) is already
    JSON.  :func:`apply_analysis` accepts this form directly, so the
    encoded record is what workers ship back and what the persistent
    cache stores — never an AST.
    """
    out: Dict[str, object] = {}
    for key, value in analysis.items():
        if key in ("features", "operators"):
            out[key] = sorted(value)
        elif key == "path_classes":
            out[key] = [
                [bool(ste), bool(ctract), bool(ttract)]
                for ste, ctract, ttract in value
            ]
        else:
            out[key] = value
    return out


def analyze_corpus(corpus: QueryLogCorpus) -> LogReport:
    """Run the full battery over one corpus (the sequential reference
    path — :func:`repro.logs.pipeline.run_study` is checked against it
    counter for counter)."""
    report = LogReport(
        corpus.source, corpus.total, corpus.valid, corpus.unique
    )
    for query, multiplicity in corpus.iter_valid():
        apply_analysis(report, analyze_query_fused(query), multiplicity)
    return report


def _analyze_pairs(
    payload: Tuple[str, List[Tuple[Query, int]]]
) -> LogReport:
    """Process-pool worker: analyze one shard of (query, multiplicity)
    pairs.  Workers receive only the ASTs and multiplicities — the raw
    texts and dedup keys of the entries never cross the pickle boundary.
    The header numbers are restored by the caller."""
    source, pairs = payload
    report = LogReport(source, 0, 0, 0)
    for query, multiplicity in pairs:
        apply_analysis(report, analyze_query_fused(query), multiplicity)
    return report


def analyze_many(
    corpora: List[QueryLogCorpus],
    workers: Opt[int] = None,
    chunk_size: int = 512,
    pool: Opt[ProcessPoolExecutor] = None,
) -> Dict[str, LogReport]:
    """Run the battery over several corpora.

    With ``workers`` unset (or <= 1) this is the sequential loop.  With
    ``workers=N`` the corpora — and, within a corpus larger than
    ``chunk_size`` unique queries, chunks of its entries — are analyzed
    on a process pool and the partial :class:`LogReport`\\ s merged via
    :func:`combine_reports`.  Per-query analyses are independent, so the
    merged counters are identical to the sequential ones.

    ``pool`` lends an externally managed
    :class:`~concurrent.futures.ProcessPoolExecutor`: the call uses it
    and leaves it running, so a long-lived caller (the serving layer, a
    study loop) pays worker startup once instead of per invocation.
    Without it, a pool of ``workers`` processes is created and torn
    down inside the call, as before.

    Only ``(query, multiplicity)`` pairs are shipped to the workers (not
    the entry texts and keys), and empty corpora never reach the pool.
    For end-to-end studies that start from raw text prefer
    :func:`repro.logs.pipeline.run_study`, which fuses parsing and
    analysis in the workers and skips this AST-pickling round-trip
    entirely.
    """
    if pool is None and (not workers or workers <= 1):
        return {corpus.source: analyze_corpus(corpus) for corpus in corpora}
    total_entries = sum(len(corpus.entries) for corpus in corpora)
    chunk_size = fanout_chunk_size(
        total_entries, pool_width(workers, pool), chunk_size
    )
    tasks: List[Tuple[int, Tuple[str, List[Tuple[Query, int]]]]] = []
    for index, corpus in enumerate(corpora):
        entries = corpus.entries
        for start in range(0, len(entries), chunk_size):
            pairs = [
                (entry.query, entry.occurrences)
                for entry in entries[start : start + chunk_size]
            ]
            tasks.append((index, (corpus.source, pairs)))
    own_pool = (
        ProcessPoolExecutor(max_workers=workers) if pool is None else None
    )
    try:
        partials = list(
            (pool or own_pool).map(
                _analyze_pairs, [payload for _, payload in tasks]
            )
        )
    finally:
        if own_pool is not None:
            own_pool.shutdown()
    grouped: Dict[int, List[LogReport]] = defaultdict(list)
    for (index, _), partial in zip(tasks, partials):
        grouped[index].append(partial)
    out: Dict[str, LogReport] = {}
    for index, corpus in enumerate(corpora):
        merged = combine_reports(grouped[index], name=corpus.source)
        # chunk headers carry no Table 2 numbers (and an empty corpus has
        # no chunks at all); restore them from the corpus itself
        merged.total = corpus.total
        merged.valid = corpus.valid
        merged.unique = corpus.unique
        out[corpus.source] = merged
    return out


def _encode_key(key) -> object:
    """A JSON-able tagged form of one counter key.

    Counter keys are strings, ints, bools, or tuples of those
    (operator sets, path classes); JSON cannot key objects by tuple and
    would conflate ``True``/``1`` and ``"3"``/``3``, so every key is
    tagged with its type and restored exactly by :func:`_decode_key`.
    """
    if isinstance(key, bool):
        return ["b", key]
    if isinstance(key, int):
        return ["i", key]
    if isinstance(key, str):
        return ["s", key]
    if isinstance(key, tuple):
        return ["t", [_encode_key(part) for part in key]]
    if key is None:
        return ["n"]
    raise TypeError(f"unencodable counter key: {key!r}")


def _decode_key(encoded) -> object:
    tag = encoded[0]
    if tag == "b":
        return bool(encoded[1])
    if tag == "i":
        return int(encoded[1])
    if tag == "s":
        return encoded[1]
    if tag == "t":
        return tuple(_decode_key(part) for part in encoded[1])
    if tag == "n":
        return None
    raise ValueError(f"unknown counter-key tag: {tag!r}")


def encode_report(report: LogReport) -> Dict[str, object]:
    """The JSON-able form of a :class:`LogReport` — the battery
    endpoint's wire payload, and how sharded workers ship counter
    partials to the coordinator.  :func:`decode_report` restores a
    report whose counters compare equal (``stats`` is not carried)."""
    return {
        "source": report.source,
        "total": report.total,
        "valid": report.valid,
        "unique": report.unique,
        "counters": {
            attribute: [
                [_encode_key(key), valid, unique]
                for key, valid, unique in getattr(report, attribute).items()
            ]
            for attribute in COUNTER_FIELDS
        },
    }


def decode_report(payload: Dict[str, object]) -> LogReport:
    """The :class:`LogReport` a :func:`encode_report` payload encodes."""
    report = LogReport(
        payload["source"],
        payload["total"],
        payload["valid"],
        payload["unique"],
    )
    for attribute in COUNTER_FIELDS:
        counter: VUCounter = getattr(report, attribute)
        for encoded, valid, unique in payload["counters"][attribute]:
            key = _decode_key(encoded)
            counter.valid[key] = valid
            counter.unique[key] = unique
    return report


def combine_reports(
    reports: List[LogReport], name: str = "combined"
) -> LogReport:
    """Merge per-source reports (e.g. the DBpedia–BritM family)."""
    combined = LogReport(
        name,
        sum(r.total for r in reports),
        sum(r.valid for r in reports),
        sum(r.unique for r in reports),
    )
    for report in reports:
        for attribute in COUNTER_FIELDS:
            source: VUCounter = getattr(report, attribute)
            target: VUCounter = getattr(combined, attribute)
            target.valid.update(source.valid)
            target.unique.update(source.unique)
    return combined
