"""Persistent, content-addressed analysis cache for log studies.

Repeated studies over overlapping logs (the normal situation: monthly
log drops share most of their unique queries with the previous drop)
re-parse and re-analyze nothing that is already known.  The cache maps
the *normalized query text* (hashed — the same dedup key the corpora
use) to the encoded per-query analysis record of
:func:`repro.logs.analyzer.encode_analysis`, or to ``None`` for texts
known not to parse.  No AST is ever stored.

Layout and invariants
---------------------

* ``root/<fingerprint>/shard-XX.jsonl`` — records are sharded by the
  first two hex digits of the key so no single file grows unboundedly
  and concurrent writers rarely touch the same file.
* The *fingerprint* (:func:`battery_fingerprint`) digests the battery
  version and the report schema.  A changed battery lands in a fresh
  subdirectory, so stale analyses of an older schema are never read —
  versioned invalidation without a migration step.
* Appends are whole-line writes on an ``O_APPEND`` descriptor, so
  concurrent writers on the same directory interleave at line
  granularity in the common case; the cache is content-addressed, so a
  duplicated key is idempotent and last-write-wins on load is safe.
* A corrupt line (torn write, truncation, garbage) is *skipped and
  counted*, never fatal: the worst outcome of a damaged cache file is a
  re-computed analysis.
* A shard whose last line was torn (no trailing newline — a writer died
  mid-append) is *healed* on the next flush: the append starts with a
  newline so new records never concatenate onto the torn fragment, and
  the re-computed analysis of the torn key is re-persisted rather than
  silently lost.  ``durable=True`` additionally fsyncs every flushed
  shard, for pipelines that must not lose cache warmth to a crash.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Optional as Opt, Tuple, Union

from ..core.hashing import payload_fingerprint, text_key
from . import analyzer as _analyzer

#: bump when the on-disk record layout (not the battery) changes
RECORD_VERSION = "1"


def battery_fingerprint() -> str:
    """Digest of everything a cached record's meaning depends on: the
    battery version, the report's counter schema, and the record
    layout.  Any change moves the cache to a fresh subdirectory."""
    return payload_fingerprint(
        {
            "battery": _analyzer.BATTERY_VERSION,
            "counters": list(_analyzer.COUNTER_FIELDS),
            "record": RECORD_VERSION,
        }
    )


def cache_key(normalized_text: str) -> str:
    """The content address of one unique query: SHA-256 of its
    whitespace-normalized text (the corpus dedup key).  The digest
    itself lives in :func:`repro.core.hashing.text_key`, shared with the
    service result cache so the two key disciplines cannot drift."""
    return text_key(normalized_text)


class AnalysisCache:
    """On-disk analysis cache (see module docstring for the layout).

    ``get``/``put`` work against an in-memory map loaded lazily from the
    shard files; ``flush`` appends the new records.  ``hits``/``misses``
    count ``get`` outcomes; ``corrupt_lines`` counts skipped damage.
    """

    def __init__(
        self,
        root: Union[str, Path],
        fingerprint: Opt[str] = None,
        durable: bool = False,
    ):
        self.root = Path(root)
        self.fingerprint = fingerprint or battery_fingerprint()
        self.directory = self.root / self.fingerprint
        #: when True, every flush fsyncs each shard (and, after creating
        #: a shard, its directory) before returning — a crash after
        #: ``flush`` can no longer lose or tear the appended records
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.corrupt_lines = 0
        #: shard appends that had to heal a torn tail (see ``flush``)
        self.healed_tails = 0
        self._records: Dict[str, Any] = {}
        self._dirty: Dict[str, Any] = {}
        self._loaded = False

    # -- loading ----------------------------------------------------------------

    def load(self) -> "AnalysisCache":
        """Read every shard of this fingerprint (idempotent).  Damaged
        lines and unreadable files are skipped and counted."""
        if self._loaded:
            return self
        self._loaded = True
        if not self.directory.is_dir():
            return self
        for path in sorted(self.directory.glob("shard-*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self.corrupt_lines += 1
                    continue
                if not isinstance(entry, dict) or "k" not in entry:
                    self.corrupt_lines += 1
                    continue
                self._records[entry["k"]] = entry.get("r")
        return self

    def __len__(self) -> int:
        self.load()
        return len(self._records)

    # -- lookup / insert --------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, record)`` — the record may legitimately be ``None``
        (a text known not to parse), which is why the hit flag exists."""
        self.load()
        if key in self._records:
            self.hits += 1
            return True, self._records[key]
        self.misses += 1
        return False, None

    def put(self, key: str, record: Any) -> None:
        """Stage one record; a key already present is left alone (the
        cache is content-addressed, so the record would be identical)."""
        self.load()
        if key in self._records:
            return
        self._records[key] = record
        self._dirty[key] = record

    @staticmethod
    def _tail_is_torn(path: Path) -> bool:
        """True when the shard's last byte exists and is not a newline —
        the signature of an append cut short (crash, full disk, kill)."""
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def flush(self) -> int:
        """Append the staged records to their shards; returns how many
        were written.  One buffered ``write`` per shard keeps concurrent
        writers line-atomic in practice.

        Two failure modes of plain ``O_APPEND`` appends are handled:

        * **Torn tails.**  A previous writer that died mid-write leaves
          a final line without a newline.  Appending straight after it
          would concatenate the first new record onto the torn line,
          corrupting *both* — the damaged line and a perfectly good new
          record would be skipped on the next load.  When the shard's
          last byte is not a newline the append starts with one, so the
          torn fragment is isolated to exactly one corrupt line and
          every new record survives.
        * **Durability.**  By default the appended bytes live in the
          page cache and a crash shortly after ``flush`` can drop them —
          acceptable for a cache (the records are re-computed), but not
          for study pipelines that account on cache warmth.  With
          ``durable=True`` each shard is fsynced (and a newly created
          shard's directory entry too) before ``flush`` returns.
        """
        if not self._dirty:
            return 0
        created_shard = False
        self.directory.mkdir(parents=True, exist_ok=True)
        by_shard: Dict[Path, list] = {}
        for key, record in self._dirty.items():
            path = self.directory / f"shard-{key[:2]}.jsonl"
            by_shard.setdefault(path, []).append((key, record))
        written = 0
        for path, items in by_shard.items():
            payload = "".join(
                json.dumps(
                    {"k": key, "r": record},
                    ensure_ascii=False,
                    separators=(",", ":"),
                )
                + "\n"
                for key, record in items
            )
            if self._tail_is_torn(path):
                payload = "\n" + payload
                self.healed_tails += 1
            if not path.exists():
                created_shard = True
            descriptor = os.open(
                str(path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(descriptor, payload.encode("utf-8"))
                if self.durable:
                    os.fsync(descriptor)
            finally:
                os.close(descriptor)
            written += len(items)
        if self.durable and created_shard:
            descriptor = os.open(str(self.directory), os.O_RDONLY)
            try:
                os.fsync(descriptor)
            finally:
                os.close(descriptor)
        self._dirty.clear()
        return written

    # -- maintenance ------------------------------------------------------------

    def purge_stale(self) -> int:
        """Delete sibling fingerprint directories (caches of older
        battery versions); returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.iterdir():
            if path.is_dir() and path.name != self.fingerprint:
                shutil.rmtree(path, ignore_errors=True)
                removed += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "entries": len(self._records) if self._loaded else None,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_lines": self.corrupt_lines,
            "healed_tails": self.healed_tails,
        }
