"""Query-log corpora: the Total / Valid / Unique bookkeeping of Table 2.

Studies on SPARQL logs report three numbers per source: all log entries
(*Total*), the syntactically correct ones (*Valid*, a multiset), and the
result of duplicate elimination (*Unique*).  Analyses are then run
"V (U)" — with respect to both.  :class:`QueryLogCorpus` materializes
exactly this: it parses every entry with the real parser, keeps parse
failures counted, and deduplicates by whitespace-normalized text (the
textual dedup real studies perform).
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional as Opt, Tuple

from ..errors import SPARQLParseError
from ..sparql.ast import Query
from ..sparql.parser import parse_query

_WHITESPACE_RE = _re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """The dedup key: collapse whitespace and strip (comments were
    already removed by the tokenizer, but dedup happens on raw text, so
    only whitespace is normalized — matching the published studies).

    ``str.split`` with no separator splits on the same whitespace runs
    as ``\\s+`` and drops the leading/trailing run, so the join below is
    equivalent to ``_WHITESPACE_RE.sub(" ", text).strip()`` — and about
    3x faster, which matters because ingestion normalizes *every* raw
    entry, duplicates included."""
    return " ".join(text.split())


@dataclass
class ParsedEntry:
    """One valid log entry: the raw text, its normalized key, its parsed
    query, and how often it occurred in the raw log."""

    text: str
    key: str
    query: Query
    occurrences: int = 1


@dataclass
class QueryLogCorpus:
    """A parsed and deduplicated query log for one source."""

    source: str
    total: int = 0
    invalid: int = 0
    entries: List[ParsedEntry] = field(default_factory=list)
    _index: Dict[str, int] = field(default_factory=dict, repr=False)
    _valid: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        # callers may hand entries straight to the constructor (the
        # pipeline does); derive the index and the running Valid counter
        # from them so the invariants hold from the start
        if self.entries:
            if not self._index:
                self._index = {
                    entry.key: position
                    for position, entry in enumerate(self.entries)
                }
            self._valid = sum(
                entry.occurrences for entry in self.entries
            )

    @classmethod
    def from_texts(
        cls, source: str, texts: Iterable[str]
    ) -> "QueryLogCorpus":
        corpus = cls(source)
        for text in texts:
            corpus.add(text)
        return corpus

    @classmethod
    def from_stream(
        cls,
        source: str,
        entries: Iterable[str],
        workers: Opt[int] = None,
        chunk_size: Opt[int] = None,
    ) -> "QueryLogCorpus":
        """Dedup-first streaming ingestion (see
        :func:`repro.logs.pipeline.stream_corpus`): normalize and count
        every raw entry first, then parse only the unique texts — in
        parallel chunks when ``workers`` > 1."""
        from .pipeline import stream_corpus

        return stream_corpus(
            source, entries, workers=workers, chunk_size=chunk_size
        )

    def add(self, text: str) -> Opt[ParsedEntry]:
        """Ingest one raw log entry; returns its entry when valid."""
        self.total += 1
        key = normalize_text(text)
        existing = self._index.get(key)
        if existing is not None:
            entry = self.entries[existing]
            entry.occurrences += 1
            self._valid += 1
            return entry
        try:
            query = parse_query(text)
        except SPARQLParseError:
            self.invalid += 1
            return None
        except RecursionError:
            self.invalid += 1
            return None
        entry = ParsedEntry(text, key, query)
        self._index[key] = len(self.entries)
        self.entries.append(entry)
        self._valid += 1
        return entry

    # -- Table 2 numbers ----------------------------------------------------------

    @property
    def valid(self) -> int:
        """|Valid|: total entries that parse (with multiplicity).

        Maintained as a running counter by :meth:`add` (and rebuilt in
        ``__post_init__`` for constructor-supplied entries) — reports,
        merges, and table rows read it per access, so the O(n) sum the
        seed recomputed every time is gone."""
        return self._valid

    @property
    def unique(self) -> int:
        """|Unique|: distinct valid queries."""
        return len(self.entries)

    def table2_row(self) -> Tuple[str, int, int, int]:
        return (self.source, self.total, self.valid, self.unique)

    # -- iteration helpers ----------------------------------------------------------

    def iter_valid(self) -> Iterable[Tuple[Query, int]]:
        """(query, multiplicity) pairs — analyses weight by multiplicity
        for the V numbers and by 1 for the U numbers."""
        for entry in self.entries:
            yield entry.query, entry.occurrences

    def __len__(self) -> int:
        return self.total


def merge_table2(
    corpora: Iterable[QueryLogCorpus],
) -> List[Tuple[str, int, int, int]]:
    """Table 2 rows plus the Total line."""
    rows = [corpus.table2_row() for corpus in corpora]
    total = (
        "Total",
        sum(row[1] for row in rows),
        sum(row[2] for row in rows),
        sum(row[3] for row in rows),
    )
    return rows + [total]
