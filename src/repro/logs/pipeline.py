"""The scalable end-to-end log-study pipeline.

The paper's headline studies run over logs of hundreds of millions of
entries; the sequential path (:meth:`QueryLogCorpus.add` per entry, then
:func:`analyze_corpus`) tokenizes and parses inline on one core and
keeps every raw text and AST resident.  This module is the
corpus-scale path, organized the way the Bonifati et al. log studies
were: **dedup first, shard, fuse, cache**.

* :func:`stream_corpus` / :meth:`QueryLogCorpus.from_stream` —
  streaming ingestion: normalize and count every raw entry first (one
  dict pass, duplicates never reach the parser), then parse only the
  unique texts, in chunks on a :class:`ProcessPoolExecutor` when
  ``workers`` > 1.  Workers receive raw text, never pickled ASTs.
* :func:`run_study` — the fused path: each worker parses a shard of
  unique texts *and* runs the single-traversal battery
  (:func:`repro.logs.battery.analyze_query_fused`) in the same process,
  shipping back only a compact partial :class:`LogReport` plus
  ``(key, record)`` pairs (``record`` = the JSON-able
  :func:`encode_analysis` form, or ``None`` for unparseable text).
  Partials merge through the existing :func:`combine_reports`; no AST
  ever crosses the process boundary in either direction.
* An opt-in persistent :class:`~repro.logs.cache.AnalysisCache` makes
  repeated studies over overlapping logs incremental: cache hits skip
  parsing *and* analysis, and a battery-fingerprint mismatch silently
  invalidates stale records.
* Every :func:`run_study` report carries a :class:`PipelineStats` with
  per-stage timings and cache accounting (printed by the benchmarks).

Identity contract: ``run_study`` reports are counter-for-counter equal
to ``analyze_corpus(QueryLogCorpus.from_texts(...))`` — asserted by the
``log-pipeline`` differential oracle of :mod:`repro.testing` on
randomized workloads.  One documented precondition, inherited from
textual dedup itself: entries with the same whitespace-normalized key
must have the same parse verdict (the sequential path also parses only
the first occurrence of a key it has accepted).
"""

from __future__ import annotations

import json
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional as Opt,
    Tuple,
    Union,
)

from ..errors import SPARQLParseError
from ..sparql.ast import Query
from ..sparql.parser import parse_query
from ..core.parallelism import fanout_chunk_size, pool_width
from .analyzer import (
    LogReport,
    apply_analysis,
    combine_reports,
    encode_analysis,
)
from .battery import analyze_query_fused
from .cache import AnalysisCache, cache_key
from .corpus import ParsedEntry, QueryLogCorpus, normalize_text

#: unique texts per process-pool task
DEFAULT_CHUNK_SIZE = 512

Source = Union[str, Path, Iterable[str]]
CacheSpec = Union[None, str, Path, AnalysisCache]


@dataclass
class PipelineStats:
    """Per-stage observability for one :func:`run_study` run."""

    source: str
    workers: int = 0
    chunks: int = 0
    entries: int = 0  #: raw entries ingested (== report.total)
    unique_texts: int = 0  #: distinct normalized keys, valid + invalid
    parsed_texts: int = 0  #: texts actually parsed this run
    cache_hits: int = 0
    cache_misses: int = 0
    ingest_seconds: float = 0.0
    parse_analyze_seconds: float = 0.0
    #: time inside :func:`~repro.sparql.parser.parse_query` across all
    #: workers (a subset of ``parse_analyze_seconds``; under a process
    #: pool the worker-side sums can exceed the stage wall-clock)
    parse_seconds: float = 0.0
    #: time inside the fused battery + :func:`encode_analysis`, same
    #: accounting as ``parse_seconds``
    analyze_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "workers": self.workers,
            "chunks": self.chunks,
            "entries": self.entries,
            "unique_texts": self.unique_texts,
            "parsed_texts": self.parsed_texts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "ingest_seconds": round(self.ingest_seconds, 4),
            "parse_analyze_seconds": round(self.parse_analyze_seconds, 4),
            "parse_seconds": round(self.parse_seconds, 4),
            "analyze_seconds": round(self.analyze_seconds, 4),
            "merge_seconds": round(self.merge_seconds, 4),
            "total_seconds": round(self.total_seconds, 4),
        }

    def summary(self) -> str:
        return (
            f"[{self.source}] {self.entries} entries "
            f"({self.unique_texts} unique, {self.parsed_texts} parsed, "
            f"cache hit-rate {100.0 * self.cache_hit_rate:.1f}%) in "
            f"{self.total_seconds:.2f}s — ingest "
            f"{self.ingest_seconds:.2f}s, parse+analyze "
            f"{self.parse_analyze_seconds:.2f}s "
            f"(parse {self.parse_seconds:.2f}s, analyze "
            f"{self.analyze_seconds:.2f}s) "
            f"({self.workers or 1} worker(s), {self.chunks} chunk(s)), "
            f"merge {self.merge_seconds:.2f}s"
        )


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


def iter_log_entries(
    source: Source, text_field: str = "query"
) -> Iterator[str]:
    """Raw entry texts from a source.

    * an iterable of strings is passed through;
    * a ``str``/``Path`` names a log file read line by line —
      ``.jsonl``/``.json`` files hold one JSON value per line (either a
      string or an object whose ``text_field`` — falling back to
      ``"text"`` — holds the query), anything else is one raw query per
      line (the usual shape of exported endpoint logs).
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        jsonl = path.suffix.lower() in (".jsonl", ".json")
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line.strip():
                    continue
                if not jsonl:
                    yield line
                    continue
                value = json.loads(line)
                if isinstance(value, str):
                    yield value
                elif isinstance(value, dict):
                    text = value.get(text_field, value.get("text"))
                    if not isinstance(text, str):
                        raise ValueError(
                            f"JSONL entry without a {text_field!r} or "
                            f"'text' string field: {line[:80]!r}"
                        )
                    yield text
                else:
                    raise ValueError(
                        f"JSONL entry is neither string nor object: "
                        f"{line[:80]!r}"
                    )
    else:
        yield from source


def _ingest(
    texts: Iterator[str],
) -> Tuple[int, Dict[str, int], Dict[str, str], List[str]]:
    """Dedup-first pass: one dict probe per raw entry, no parsing.
    Returns (total, multiplicity per key, first raw text per key, keys
    in first-seen order)."""
    total = 0
    counts: Dict[str, int] = {}
    first_text: Dict[str, str] = {}
    order: List[str] = []
    get = counts.get
    for text in texts:
        total += 1
        key = normalize_text(text)
        seen = get(key)
        if seen is None:
            counts[key] = 1
            first_text[key] = text
            order.append(key)
        else:
            counts[key] = seen + 1
    return total, counts, first_text, order


def _chunked(items: List, chunk_size: int) -> List[List]:
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def _fanout_chunks(items: List, workers: int, chunk_size: int) -> List[List]:
    """Split ``items`` for a process pool so the pool actually fans out.

    The old fixed-size split quietly serialized moderate workloads: with
    the default 512-text chunks, any run with fewer than ``512 *
    workers`` unique texts produced fewer chunks than workers — e.g.
    1000 unique texts on 4 workers became 2 chunks, idling half the
    pool while still paying full pool construction and pickling cost.
    The chunk size is re-derived from the pool width via
    :func:`~repro.logs.analyzer.fanout_chunk_size`, so ``chunk_size``
    only caps task payload size, never fan-out.
    """
    if not items:
        return []
    return _chunked(items, fanout_chunk_size(len(items), workers, chunk_size))


def _pool_width(
    workers: Opt[int], pool: Opt[ProcessPoolExecutor]
) -> int:
    """The effective number of workers a parallel stage will run on
    (defers to the module-level ``_usable_cpus`` so tests can narrow
    the perceived machine)."""
    if workers and workers > 1:
        return workers
    if pool is not None:
        return pool_width(None, pool)
    return _usable_cpus()


def _open_cache(cache: CacheSpec) -> Opt[AnalysisCache]:
    if cache is None or isinstance(cache, AnalysisCache):
        return cache
    return AnalysisCache(cache)


# ---------------------------------------------------------------------------
# streaming ingestion -> corpus
# ---------------------------------------------------------------------------


def _parse_worker(
    chunk: List[Tuple[str, str]]
) -> List[Tuple[str, Opt[Query]]]:
    """Process-pool worker: parse one chunk of (key, raw text) pairs;
    ``None`` marks a text that does not parse."""
    out: List[Tuple[str, Opt[Query]]] = []
    for key, text in chunk:
        try:
            out.append((key, parse_query(text)))
        except (SPARQLParseError, RecursionError):
            out.append((key, None))
    return out


def stream_corpus(
    source: str,
    entries: Source,
    workers: Opt[int] = None,
    chunk_size: Opt[int] = None,
    text_field: str = "query",
    pool: Opt[ProcessPoolExecutor] = None,
) -> QueryLogCorpus:
    """Streaming ingestion: build a :class:`QueryLogCorpus` equal to
    ``QueryLogCorpus.from_texts(source, entries)`` but dedup-first —
    duplicates never reach the parser — and, with ``workers`` > 1 (or an
    externally managed ``pool``, which is borrowed and left running),
    with the unique texts parsed in chunks on a process pool."""
    chunk_size = chunk_size or DEFAULT_CHUNK_SIZE
    total, counts, first_text, order = _ingest(
        iter_log_entries(entries, text_field)
    )
    pairs = [(key, first_text[key]) for key in order]
    parallel = pool is not None or (workers and workers > 1)
    if parallel and len(pairs) > 1:
        own_pool = (
            ProcessPoolExecutor(max_workers=workers)
            if pool is None
            else None
        )
        try:
            chunks = (pool or own_pool).map(
                _parse_worker,
                _fanout_chunks(pairs, _pool_width(workers, pool), chunk_size),
            )
            parsed = [pair for chunk in chunks for pair in chunk]
        finally:
            if own_pool is not None:
                own_pool.shutdown()
    else:
        parsed = _parse_worker(pairs)
    invalid = 0
    parsed_entries: List[ParsedEntry] = []
    for key, query in parsed:
        if query is None:
            invalid += counts[key]
        else:
            parsed_entries.append(
                ParsedEntry(first_text[key], key, query, counts[key])
            )
    return QueryLogCorpus(
        source, total=total, invalid=invalid, entries=parsed_entries
    )


# ---------------------------------------------------------------------------
# fused parse+analyze study
# ---------------------------------------------------------------------------


def _usable_cpus() -> int:
    # module-level indirection over the shared helper: tests monkeypatch
    # this symbol to simulate narrower machines
    from ..core.parallelism import usable_cpus

    return usable_cpus()


#: one-time guard for the workers>1-on-one-CPU warning
_fallback_warned = False


def _warn_sequential_fallback(
    source: str, pending: List[Tuple[str, str, int]], chunk_size: int
) -> None:
    """Warn (once per process) that a parallel study was downgraded.

    On a single usable CPU a process pool cannot win: the chunks still
    serialize through pickle and the workers time-slice one core, so the
    overhead is pure loss (the committed benchmark artifact measured a
    0.85x parallel "speedup" in exactly this situation).  The warning
    quantifies the per-chunk serialization cost so the downgrade is
    explainable from logs alone.
    """
    global _fallback_warned
    if _fallback_warned:
        return
    _fallback_warned = True
    chunk = pending[:chunk_size]
    started = time.perf_counter()
    payload_bytes = len(pickle.dumps((source, chunk)))
    pickle_seconds = time.perf_counter() - started
    warnings.warn(
        f"run_study({source!r}): workers>1 requested but only one "
        f"usable CPU is available; chunk serialization alone costs "
        f"{pickle_seconds * 1e3:.2f} ms per {len(chunk)}-text chunk "
        f"({payload_bytes} bytes) with no parallelism to pay for it — "
        f"falling back to the fused sequential path",
        RuntimeWarning,
        stacklevel=3,
    )


def _study_worker(
    payload: Tuple[str, List[Tuple[str, str, int]]]
) -> Tuple[
    LogReport,
    int,
    int,
    List[Tuple[str, Opt[Dict[str, Any]]]],
    float,
    float,
]:
    """Process-pool worker: parse *and* analyze one shard of
    (key, raw text, multiplicity) triples in the same process.

    Returns a compact partial: a :class:`LogReport` holding only
    counters, the invalid occurrence/unique counts, the
    ``(key, record)`` pairs for the cache — no AST travels back — and
    the seconds spent parsing vs analyzing, so
    :class:`PipelineStats` can attribute the stage cost.
    """
    source, triples = payload
    report = LogReport(source, 0, 0, 0)
    records: List[Tuple[str, Opt[Dict[str, Any]]]] = []
    invalid = 0
    invalid_unique = 0
    parse_seconds = 0.0
    analyze_seconds = 0.0
    perf = time.perf_counter
    for key, text, multiplicity in triples:
        started = perf()
        try:
            query = parse_query(text)
        except (SPARQLParseError, RecursionError):
            parse_seconds += perf() - started
            records.append((key, None))
            invalid += multiplicity
            invalid_unique += 1
            continue
        parsed_at = perf()
        parse_seconds += parsed_at - started
        record = encode_analysis(analyze_query_fused(query))
        analyze_seconds += perf() - parsed_at
        apply_analysis(report, record, multiplicity)
        records.append((key, record))
    return (
        report,
        invalid,
        invalid_unique,
        records,
        parse_seconds,
        analyze_seconds,
    )


def run_study(
    source: str,
    entries: Source,
    workers: Opt[int] = None,
    cache: CacheSpec = None,
    chunk_size: Opt[int] = None,
    text_field: str = "query",
    pool: Opt[ProcessPoolExecutor] = None,
) -> LogReport:
    """The fused end-to-end study: raw entries in, :class:`LogReport`
    out, counter-for-counter identical to
    ``analyze_corpus(QueryLogCorpus.from_texts(source, entries))``.

    Stages (each timed on ``report.stats``):

    1. *ingest* — dedup-first streaming pass over the raw entries;
    2. *cache* — known keys are folded in from the
       :class:`AnalysisCache` (``cache`` may be a directory path or an
       open cache; ``None`` disables caching);
    3. *parse+analyze* — remaining unique texts go to fused workers
       (``workers`` > 1: a process pool; otherwise inline);
    4. *merge* — partials combine via :func:`combine_reports`, new
       records are flushed to the cache.

    ``pool`` lends an externally managed
    :class:`~concurrent.futures.ProcessPoolExecutor` for stage 3 and
    leaves it running afterwards — the long-lived serving deployment
    runs periodic studies without per-call pool construction.  Without
    it (and ``workers`` > 1) a fresh pool lives only for the call.
    """
    overall_started = time.perf_counter()
    chunk_size = chunk_size or DEFAULT_CHUNK_SIZE
    stats = PipelineStats(source=source, workers=int(workers or 0))

    stage_started = time.perf_counter()
    total, counts, first_text, order = _ingest(
        iter_log_entries(entries, text_field)
    )
    stats.ingest_seconds = time.perf_counter() - stage_started
    stats.entries = total
    stats.unique_texts = len(order)

    stage_started = time.perf_counter()
    cache_obj = _open_cache(cache)
    cached_partial = LogReport(source, 0, 0, 0)
    invalid = 0
    invalid_unique = 0
    pending: List[Tuple[str, str, int]] = []
    if cache_obj is not None:
        cache_obj.load()
        hits_before, misses_before = cache_obj.hits, cache_obj.misses
        for key in order:
            hit, record = cache_obj.get(cache_key(key))
            if not hit:
                pending.append((key, first_text[key], counts[key]))
            elif record is None:
                invalid += counts[key]
                invalid_unique += 1
            else:
                apply_analysis(cached_partial, record, counts[key])
        stats.cache_hits = cache_obj.hits - hits_before
        stats.cache_misses = cache_obj.misses - misses_before
    else:
        pending = [(key, first_text[key], counts[key]) for key in order]
    stats.parsed_texts = len(pending)

    partials: List[LogReport] = [cached_partial]
    new_records: List[Tuple[str, Opt[Dict[str, Any]]]] = []
    if pending:
        parallel = bool(
            pool is not None or (workers and workers > 1)
        )
        if parallel and pool is None and _usable_cpus() < 2:
            _warn_sequential_fallback(source, pending, chunk_size)
            parallel = False
        if parallel and len(pending) > 1:
            chunks = _fanout_chunks(
                pending, _pool_width(workers, pool), chunk_size
            )
            stats.chunks = len(chunks)
            own_pool = (
                ProcessPoolExecutor(max_workers=workers)
                if pool is None
                else None
            )
            try:
                results = list(
                    (pool or own_pool).map(
                        _study_worker,
                        [(source, chunk) for chunk in chunks],
                    )
                )
            finally:
                if own_pool is not None:
                    own_pool.shutdown()
        else:
            stats.chunks = 1
            results = [_study_worker((source, pending))]
        for (
            partial,
            chunk_invalid,
            chunk_invalid_unique,
            records,
            parse_seconds,
            analyze_seconds,
        ) in results:
            partials.append(partial)
            invalid += chunk_invalid
            invalid_unique += chunk_invalid_unique
            new_records.extend(records)
            stats.parse_seconds += parse_seconds
            stats.analyze_seconds += analyze_seconds
    stats.parse_analyze_seconds = time.perf_counter() - stage_started

    stage_started = time.perf_counter()
    report = combine_reports(partials, name=source)
    report.total = total
    report.valid = total - invalid
    report.unique = stats.unique_texts - invalid_unique
    if cache_obj is not None:
        for key, record in new_records:
            cache_obj.put(cache_key(key), record)
        cache_obj.flush()
    stats.merge_seconds = time.perf_counter() - stage_started
    stats.total_seconds = time.perf_counter() - overall_started
    report.stats = stats
    return report
