"""Calibrated synthetic SPARQL query-log generators.

The paper's corpora (Table 2: 546M valid queries from DBpedia, Wikidata,
LinkedGeoData, BioPortal, …) are not redistributable; per DESIGN.md §2
we substitute per-source stochastic generators whose parameters are read
off the published distributions:

* triple-pattern counts follow the Figure 3 histograms (0–2 triples
  dominate; organic and timeout queries skew larger);
* operator probabilities follow Table 3 (DBpedia–BritM: Filter 46%,
  Optional 33%, Union 26%, Service ≈ 0; Wikidata: Service 8%, Values
  32%, property paths 24%);
* join shapes are drawn star-heavy, matching Table 7;
* property-path types are drawn from the Table 8 mix (``a*`` half of
  all robotic paths, then ``ab*``/``a+``, plain sequences, …);
* a per-source share of queries is syntactically invalid and a share is
  exact duplicates, reproducing the Total / Valid / Unique split.

Every generated query is plain SPARQL text; the pipeline parses it with
the real parser, so the analysis code paths are identical to those a
real log would exercise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional as Opt, Tuple

# (bucket template, weight) — weights from Table 8 (Valid, robotic).
PATH_TYPE_MIX_WIKIDATA: Tuple[Tuple[str, float], ...] = (
    ("a*", 50.5),
    ("ab*", 12.0),
    ("a+", 5.0),
    ("ab*c*", 1.5),
    ("A*", 0.6),
    ("ab*c", 0.2),
    ("a*b*", 0.1),
    ("abc*", 0.05),
    ("a?b*", 0.03),
    ("A+", 0.01),
    ("seq2", 15.0),  # a1 a2
    ("seq3", 6.0),  # a1 a2 a3
    ("seq4", 3.3),
    ("A", 5.5),
    ("^a", 0.04),
    ("abc?", 0.01),
)

PATH_TYPE_MIX_DBPEDIA: Tuple[Tuple[str, float], ...] = (
    ("a*", 40.0),
    ("a+", 20.0),
    ("ab*", 15.0),
    ("seq2", 15.0),
    ("A", 9.0),
    ("a*b*", 1.0),
)


@dataclass
class SourceProfile:
    """Calibration parameters for one log source."""

    name: str
    robotic: bool = True
    invalid_rate: float = 0.03
    unique_rate: float = 0.45  # |Unique| / |Valid|
    # triple-count histogram: P[k triples] for k = 0, 1, 2, ...; the last
    # entry is the tail weight spread over larger sizes
    triple_histogram: Tuple[float, ...] = (
        0.02,
        0.50,
        0.22,
        0.10,
        0.06,
        0.04,
        0.03,
        0.03,
    )
    max_tail_triples: int = 14
    # operator probabilities (per query)
    p_filter: float = 0.46
    p_optional: float = 0.33
    p_union: float = 0.26
    p_distinct: float = 0.30
    p_limit: float = 0.14
    p_offset: float = 0.03
    p_order_by: float = 0.01
    p_group_by: float = 0.03
    p_values: float = 0.02
    p_service: float = 0.0
    p_minus: float = 0.007
    p_not_exists: float = 0.008
    p_graph: float = 0.08
    p_property_path: float = 0.004
    p_ask: float = 0.02
    p_construct: float = 0.02
    p_describe: float = 0.03
    # structure
    p_star_join: float = 0.65  # vs chain join
    p_constant_object: float = 0.45
    p_constant_subject: float = 0.10
    path_type_mix: Tuple[Tuple[str, float], ...] = PATH_TYPE_MIX_DBPEDIA
    vocabulary_size: int = 60


DBPEDIA = SourceProfile(name="DBpedia")

LGD = SourceProfile(
    name="LGD",
    unique_rate=0.3,
    p_filter=0.5,
    p_distinct=0.2,
    triple_histogram=(0.01, 0.6, 0.2, 0.09, 0.04, 0.03, 0.02, 0.01),
)

BIOPORTAL = SourceProfile(
    name="BioPortal",
    unique_rate=0.1,
    p_filter=0.3,
    p_optional=0.15,
    p_union=0.1,
    triple_histogram=(0.02, 0.7, 0.18, 0.05, 0.02, 0.01, 0.01, 0.01),
)

BRITISH_MUSEUM = SourceProfile(
    name="BritM",
    unique_rate=0.09,
    p_filter=0.2,
    p_optional=0.1,
    p_union=0.05,
    # template queries: larger and concentrated
    triple_histogram=(0.0, 0.05, 0.1, 0.2, 0.25, 0.2, 0.1, 0.1),
)

WIKIDATA_ROBOTIC = SourceProfile(
    name="WikiRobot",
    robotic=True,
    invalid_rate=0.002,
    unique_rate=0.17,
    p_filter=0.18,
    p_optional=0.15,
    p_union=0.09,
    p_distinct=0.08,
    p_limit=0.18,
    p_offset=0.07,
    p_order_by=0.09,
    p_group_by=0.004,
    p_values=0.32,
    p_service=0.08,
    p_graph=0.0,
    p_property_path=0.24,
    path_type_mix=PATH_TYPE_MIX_WIKIDATA,
    triple_histogram=(0.04, 0.52, 0.18, 0.10, 0.06, 0.04, 0.03, 0.03),
)

WIKIDATA_ORGANIC = SourceProfile(
    name="WikiOrganic",
    robotic=False,
    invalid_rate=0.016,
    unique_rate=0.39,
    p_filter=0.25,
    p_optional=0.3,
    p_union=0.1,
    p_distinct=0.2,
    p_limit=0.25,
    p_service=0.13,
    p_graph=0.0,
    p_property_path=0.39,
    path_type_mix=PATH_TYPE_MIX_WIKIDATA,
    # organic queries have more triple patterns (Figure 3)
    triple_histogram=(0.02, 0.30, 0.22, 0.16, 0.10, 0.08, 0.06, 0.06),
    max_tail_triples=20,
)

ALL_PROFILES = (
    DBPEDIA,
    LGD,
    BIOPORTAL,
    BRITISH_MUSEUM,
    WIKIDATA_ROBOTIC,
    WIKIDATA_ORGANIC,
)

DBPEDIA_FAMILY = (DBPEDIA, LGD, BIOPORTAL, BRITISH_MUSEUM)
WIKIDATA_FAMILY = (WIKIDATA_ROBOTIC, WIKIDATA_ORGANIC)


class QueryGenerator:
    """Generates SPARQL query texts for one source profile."""

    def __init__(self, profile: SourceProfile, rng: Opt[random.Random] = None):
        self.profile = profile
        self.rng = rng or random.Random()
        self._var_counter = 0

    # -- small helpers ----------------------------------------------------------

    def _fresh_var(self) -> str:
        self._var_counter += 1
        return f"?v{self._var_counter}"

    def _predicate(self) -> str:
        return f"<http://ex.org/p{self.rng.randrange(self.profile.vocabulary_size)}>"

    def _constant(self) -> str:
        return f"<http://ex.org/e{self.rng.randrange(self.profile.vocabulary_size * 4)}>"

    def _triple_count(self) -> int:
        histogram = self.profile.triple_histogram
        roll = self.rng.random()
        cumulative = 0.0
        for count, weight in enumerate(histogram[:-1]):
            cumulative += weight
            if roll < cumulative:
                return count
        return self.rng.randint(
            len(histogram) - 1, self.profile.max_tail_triples
        )

    def _property_path(self) -> str:
        kinds = [kind for kind, _w in self.profile.path_type_mix]
        weights = [w for _k, w in self.profile.path_type_mix]
        kind = self.rng.choices(kinds, weights=weights)[0]
        p = self._predicate
        if kind == "a*":
            return f"{p()}*"
        if kind == "a+":
            return f"{p()}+"
        if kind == "ab*":
            return f"{p()}/{p()}*"
        if kind == "ab*c*":
            return f"{p()}/{p()}*/{p()}*"
        if kind == "A*":
            return f"({p()}|{p()})*"
        if kind == "ab*c":
            return f"{p()}/{p()}*/{p()}"
        if kind == "a*b*":
            return f"{p()}*/{p()}*"
        if kind == "abc*":
            return f"{p()}/{p()}/{p()}*"
        if kind == "a?b*":
            return f"{p()}?/{p()}*"
        if kind == "A+":
            return f"({p()}|{p()})+"
        if kind == "seq2":
            return f"{p()}/{p()}"
        if kind == "seq3":
            return f"{p()}/{p()}/{p()}"
        if kind == "seq4":
            return f"{p()}/{p()}/{p()}/{p()}"
        if kind == "A":
            return f"{p()}|{p()}"
        if kind == "^a":
            return f"^{p()}"
        if kind == "abc?":
            return f"{p()}/{p()}/{p()}?"
        raise ValueError(f"unknown path kind {kind!r}")

    # -- body -------------------------------------------------------------------

    def _triples_block(self, count: int) -> Tuple[List[str], List[str]]:
        """Returns (triple texts, variables used)."""
        rng = self.rng
        profile = self.profile
        triples: List[str] = []
        variables: List[str] = []
        if count == 0:
            return triples, variables
        hub = self._fresh_var()
        variables.append(hub)
        previous = hub
        star = rng.random() < profile.p_star_join
        for _ in range(count):
            use_path = rng.random() < profile.p_property_path
            predicate = self._property_path() if use_path else self._predicate()
            if rng.random() < profile.p_constant_object:
                obj = self._constant()
            else:
                obj = self._fresh_var()
                variables.append(obj)
            subject = hub if star else previous
            if rng.random() < profile.p_constant_subject and len(triples) == 0:
                subject = self._constant()
            triples.append(f"{subject} {predicate} {obj}")
            if not star and obj.startswith("?"):
                previous = obj
        return triples, variables

    def _body(self) -> Tuple[str, List[str]]:
        rng = self.rng
        profile = self.profile
        count = self._triple_count()
        triples, variables = self._triples_block(count)
        parts: List[str] = list(triples)

        if rng.random() < profile.p_optional and variables:
            anchor = rng.choice(variables)
            extra = self._fresh_var()
            variables.append(extra)
            parts.append(
                f"OPTIONAL {{ {anchor} {self._predicate()} {extra} }}"
            )
        if rng.random() < profile.p_minus and variables:
            anchor = rng.choice(variables)
            parts.append(
                f"MINUS {{ {anchor} {self._predicate()} {self._constant()} }}"
            )
        if rng.random() < profile.p_not_exists and variables:
            anchor = rng.choice(variables)
            parts.append(
                f"FILTER NOT EXISTS {{ {anchor} {self._predicate()} "
                f"{self._constant()} }}"
            )
        if rng.random() < profile.p_values and variables:
            anchor = rng.choice(variables)
            values = " ".join(self._constant() for _ in range(rng.randint(1, 3)))
            parts.append(f"VALUES {anchor} {{ {values} }}")
        if rng.random() < profile.p_service and variables:
            anchor = rng.choice(variables)
            extra = self._fresh_var()
            parts.append(
                f"SERVICE <http://ex.org/label> "
                f"{{ {anchor} <http://ex.org/labelOf> {extra} }}"
            )
            variables.append(extra)
        if rng.random() < profile.p_filter and variables:
            anchor = rng.choice(variables)
            style = rng.random()
            if style < 0.6 or len(variables) < 2:
                parts.append(f"FILTER({anchor} != {self._constant()})")
            elif style < 0.85:
                other = rng.choice(variables)
                parts.append(f"FILTER({anchor} = {other})")
            else:
                other = rng.choice(variables)
                parts.append(f"FILTER({anchor} != {other})")

        body = " . ".join(parts) if parts else ""
        if rng.random() < profile.p_union:
            alt_triples, alt_vars = self._triples_block(
                max(1, min(count, 2))
            )
            variables.extend(alt_vars)
            alternative = " . ".join(alt_triples)
            if body:
                body = f"{{ {body} }} UNION {{ {alternative} }}"
            else:
                body = alternative
        if rng.random() < profile.p_graph and body:
            body = f"GRAPH {self._constant()} {{ {body} }}"
        return body, variables

    # -- full queries ------------------------------------------------------------

    def generate_valid(self) -> str:
        rng = self.rng
        profile = self.profile
        self._var_counter = 0
        body, variables = self._body()
        roll = rng.random()
        if roll < profile.p_ask:
            return f"ASK {{ {body} }}"
        if roll < profile.p_ask + profile.p_construct and variables:
            anchor = variables[0]
            return (
                f"CONSTRUCT {{ {anchor} <http://ex.org/out> "
                f"{self._constant()} }} WHERE {{ {body} }}"
            )
        if (
            roll
            < profile.p_ask + profile.p_construct + profile.p_describe
        ):
            target = variables[0] if variables else self._constant()
            if target.startswith("?"):
                return f"DESCRIBE {target} WHERE {{ {body} }}"
            return f"DESCRIBE {target}"

        distinct = "DISTINCT " if rng.random() < profile.p_distinct else ""
        if rng.random() < profile.p_group_by and variables:
            anchor = variables[0]
            head = f"SELECT {anchor} (COUNT(*) AS ?cnt)"
            tail = f" GROUP BY {anchor}"
        else:
            head = f"SELECT {distinct}*"
            tail = ""
        query = f"{head} WHERE {{ {body} }}{tail}"
        if rng.random() < profile.p_order_by and variables:
            query += f" ORDER BY {rng.choice(variables)}"
        if rng.random() < profile.p_limit:
            query += f" LIMIT {rng.choice((1, 10, 50, 100, 1000))}"
            if rng.random() < min(
                1.0, profile.p_offset / max(profile.p_limit, 1e-9)
            ):
                query += f" OFFSET {rng.choice((10, 100, 1000))}"
        return query

    def generate_invalid(self) -> str:
        """A syntactically broken query (Total minus Valid in Table 2).

        Corruption styles mirror real log noise (unbalanced braces,
        typo'd keywords, stray tokens); the result is checked against
        the parser so every produced entry genuinely fails to parse.
        """
        from ..errors import SPARQLParseError
        from ..sparql.parser import parse_query as _parse

        base = self.generate_valid()
        candidates = [
            "} " + base,  # stray leading brace
            base.replace("WHERE", "WHRE", 1),
            base.replace("SELECT", "SELECT FORM", 1),
            base[: base.rfind("}")] if "}" in base else base + "(",
            base + " )",
        ]
        self.rng.shuffle(candidates)
        for candidate in candidates:
            try:
                _parse(candidate)
            except SPARQLParseError:
                return candidate
            except RecursionError:
                return candidate
        return "SELECT * WHERE {"

    def generate_log(self, total: int) -> List[str]:
        """A raw log of ``total`` entries with the profile's invalid and
        duplication rates.

        A pool of unique valid queries of size ≈ ``valid × unique_rate``
        is generated first; the log samples from the pool (creating the
        duplicates a real log has) and mixes in invalid entries.
        """
        rng = self.rng
        invalid_count = int(round(total * self.profile.invalid_rate))
        valid_count = total - invalid_count
        pool_size = max(1, int(round(valid_count * self.profile.unique_rate)))
        pool = [self.generate_valid() for _ in range(pool_size)]
        log = [rng.choice(pool) for _ in range(valid_count)]
        log.extend(self.generate_invalid() for _ in range(invalid_count))
        rng.shuffle(log)
        return log


def generate_source_log(
    profile: SourceProfile, total: int, seed: int = 0
) -> List[str]:
    """Convenience wrapper: a reproducible raw log for one source."""
    return QueryGenerator(profile, random.Random(seed)).generate_log(total)
