"""The fused analysis battery: one AST traversal per query.

:func:`repro.logs.analyzer.analyze_query` composes the per-query
analyses out of independent library calls (`count_triple_patterns`,
`query_features`, `operator_set`, the shape/hypergraph/well-designedness
preconditions), each of which re-walks the AST — a typical query is
traversed eight to ten times, and ``operator_set`` alone three times.
At corpus scale that interpreted dispatch dominates the study runtime.

:func:`analyze_query_fused` collects every fact those analyses need in
**one** stack traversal (tracking whether a node sits inside an EXISTS
constraint, the only place where the library's two walk disciplines
differ) and then derives the battery output in post-passes over the
collected atoms and filters — building the canonical graph and
hypergraph directly instead of re-walking the tree.  The expensive
derivations that depend only on collected *structure* (shape ladder,
hypertree width, free-connex acyclicity) are additionally memoized on
that structure, which template-generated real-world logs hit hard.

The output contract is strict: for every query the result dict is
key-for-key and value-for-value identical to ``analyze_query`` — same
keys, same insertion order, same list orders — so the
:func:`~repro.logs.analyzer.encode_analysis` form is byte-identical and
:data:`~repro.logs.analyzer.BATTERY_VERSION` does not change.  The old
battery stays in place as the reference oracle; the ``fused-battery``
differential target in :mod:`repro.testing` fuzzes the equivalence.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional as Opt, Set, Tuple

from ..sparql.ast import (
    And,
    Bind,
    EmptyPattern,
    Filter,
    Graph,
    Minus,
    Optional as OptPattern,
    PathPattern,
    Query,
    Service,
    SubQuery,
    TriplePattern,
    Union as UnionPattern,
    Values,
    Var,
)
from ..sparql.features import _exists_list, is_simple_filter
from ..sparql.hypergraph import Hypergraph, hypertree_width, is_acyclic
from ..sparql.pathtypes import (
    path_in_ctract,
    path_in_ttract,
    path_is_simple_transitive,
    table8_bucket,
)
from ..sparql.shapes import CanonicalGraph, _node_key, shape_of
from ..sparql.welldesigned import (
    _check_wd,
    certain_variables,
    is_union_of_well_designed,
)

_K_TRIPLE = 0
_K_PATH = 1
_K_AND = 2
_K_FILTER = 3
_K_OPT = 4
_K_UNION = 5
_K_GRAPH = 6
_K_VALUES = 7
_K_BIND = 8
_K_MINUS = 9
_K_SERVICE = 10
_K_SUB = 11
_K_EMPTY = 12

_NODE_KIND = {
    TriplePattern: _K_TRIPLE,
    PathPattern: _K_PATH,
    And: _K_AND,
    Filter: _K_FILTER,
    OptPattern: _K_OPT,
    UnionPattern: _K_UNION,
    Graph: _K_GRAPH,
    Values: _K_VALUES,
    Bind: _K_BIND,
    Minus: _K_MINUS,
    Service: _K_SERVICE,
    SubQuery: _K_SUB,
    EmptyPattern: _K_EMPTY,
}

_CQ_F_OPS = frozenset({"And", "Filter"})
_OPT_OPS = frozenset({"And", "Filter", "Optional"})
_UWD_OPS = frozenset({"And", "Filter", "Optional", "Union"})

_AGGREGATE_FEATURES = (
    ("COUNT", "Count"),
    ("AVG", "Avg"),
    ("MIN", "Min"),
    ("MAX", "Max"),
    ("SUM", "Sum"),
)

#: structure-keyed memo bound; on overflow the memos reset (the working
#: set of a template-generated log is far below this)
_MEMO_LIMIT = 65536
_shape_memo: Dict[Tuple, Tuple[str, str]] = {}
_htw_memo: Dict[Tuple, Opt[int]] = {}
_fca_memo: Dict[Tuple, bool] = {}


def clear_battery_memos() -> None:
    """Drop the structure-keyed derivation memos (for tests/benchmarks
    that want cold-path timings)."""
    _shape_memo.clear()
    _htw_memo.clear()
    _fca_memo.clear()


class _Facts:
    """Everything one traversal learns about a query pattern."""

    __slots__ = (
        "triples",
        "operators",
        "features",
        "saw_and",
        "plain_atoms",
        "plain_filters",
        "exists_filters",
        "plain_paths",
        "plain_optionals",
        "subqueries",
    )

    def __init__(self) -> None:
        self.triples = 0
        self.operators: Set[str] = set()
        self.features: Set[str] = set()
        self.saw_and = False
        self.plain_atoms: List = []
        self.plain_filters: List[Filter] = []
        self.exists_filters: List[Filter] = []
        self.plain_paths: List = []
        self.plain_optionals = 0
        self.subqueries: List[Query] = []


def _collect(pattern) -> _Facts:
    """One preorder traversal, descending into EXISTS subpatterns with
    an ``in_exists`` flag: the plain collections (atoms, filters, paths,
    optionals) see exactly the nodes ``Pattern.walk()`` yields, in the
    same relative order, while the counts/sets cover the extended walk
    of :func:`~repro.sparql.features._walk_with_expressions`."""
    facts = _Facts()
    operators_add = facts.operators.add
    features_add = facts.features.add
    kind_of = _NODE_KIND
    stack: List[Tuple[object, bool]] = [(pattern, False)]
    pop = stack.pop
    push = stack.append
    while stack:
        node, in_exists = pop()
        kind = kind_of[node.__class__]
        if kind == _K_TRIPLE:
            facts.triples += 1
            if not in_exists:
                facts.plain_atoms.append(node)
        elif kind == _K_AND:
            facts.saw_and = True
            operators_add("And")
            push((node.right, in_exists))
            push((node.left, in_exists))
        elif kind == _K_FILTER:
            operators_add("Filter")
            features_add("Filter")
            if in_exists:
                facts.exists_filters.append(node)
            else:
                facts.plain_filters.append(node)
            push((node.pattern, in_exists))
            for exists in _exists_list(node.constraint):
                features_add(
                    "NotExists" if exists.negated else "Exists"
                )
                push((exists.pattern, True))
        elif kind == _K_OPT:
            operators_add("Optional")
            features_add("Optional")
            if not in_exists:
                facts.plain_optionals += 1
            push((node.right, in_exists))
            push((node.left, in_exists))
        elif kind == _K_PATH:
            facts.triples += 1
            operators_add("2RPQ")
            features_add("PropertyPath")
            if not in_exists:
                facts.plain_atoms.append(node)
                facts.plain_paths.append(node.path)
        elif kind == _K_UNION:
            operators_add("Union")
            features_add("Union")
            push((node.right, in_exists))
            push((node.left, in_exists))
        elif kind == _K_GRAPH:
            operators_add("Graph")
            features_add("Graph")
            push((node.pattern, in_exists))
        elif kind == _K_VALUES:
            operators_add("Values")
            features_add("Values")
        elif kind == _K_BIND:
            # Bind is an operator-set member but not a Table 3 feature
            operators_add("Bind")
        elif kind == _K_MINUS:
            operators_add("Minus")
            features_add("Minus")
            push((node.right, in_exists))
            push((node.left, in_exists))
        elif kind == _K_SERVICE:
            operators_add("Service")
            features_add("Service")
            push((node.pattern, in_exists))
        elif kind == _K_SUB:
            operators_add("SubQuery")
            facts.subqueries.append(node.query)
            push((node.query.pattern, in_exists))
        # _K_EMPTY: nothing to record, no children
    return facts


def _modifier_features(query: Query, features: Set[str]) -> None:
    """The solution-modifier and aggregate features of one (sub)query —
    the non-pattern half of :func:`~repro.sparql.features.query_features`."""
    modifier = query.modifier
    if modifier.distinct:
        features.add("Distinct")
    if modifier.limit is not None:
        features.add("Limit")
    if modifier.offset is not None:
        features.add("Offset")
    if modifier.order_by:
        features.add("OrderBy")
    if modifier.group_by:
        features.add("GroupBy")
    if modifier.having:
        features.add("Having")
    aggregates = query.aggregates_used()
    if aggregates:
        for name, feature in _AGGREGATE_FEATURES:
            if name in aggregates:
                features.add(feature)


def _is_graph_pattern(plain_atoms) -> bool:
    """:func:`~repro.sparql.shapes.is_graph_pattern` over the collected
    plain atoms (identical logic, no re-walk)."""
    predicate_vars: Dict[str, int] = {}
    other_positions: Set[str] = set()
    for node in plain_atoms:
        if isinstance(node, TriplePattern):
            predicate = node.predicate
            if isinstance(predicate, Var):
                predicate_vars[predicate.name] = (
                    predicate_vars.get(predicate.name, 0) + 1
                )
            for term in (node.subject, node.object):
                if isinstance(term, Var):
                    other_positions.add(term.name)
    for name, count in predicate_vars.items():
        if count > 1 or name in other_positions:
            return False
    return True


def _shape_from(
    pairs: Tuple, filter_entries: Tuple, with_constants: bool
) -> str:
    """Build the canonical graph straight from collected atom/filter
    structure (same result as
    :func:`~repro.sparql.shapes.canonical_graph` + ``shape_of``)."""
    adjacency: Dict[Tuple[str, str, bool], Set] = {}
    edge_count = 0
    self_loops = 0
    for subject, obj in pairs:
        a, b = subject, obj
        if not with_constants:
            if a is not None and a[2]:
                a = None
            if b is not None and b[2]:
                b = None
        if a is None or b is None:
            for node in (a, b):
                if node is not None:
                    adjacency.setdefault(node, set())
            continue
        neighbours = adjacency.setdefault(a, set())
        adjacency.setdefault(b, set())
        if a == b:
            self_loops += 1
            edge_count += 1
            continue
        if b not in neighbours:
            edge_count += 1
        neighbours.add(b)
        adjacency[b].add(a)
    for entry in filter_entries:
        if len(entry) == 2:
            a = ("var", entry[0], False)
            b = ("var", entry[1], False)
            neighbours = adjacency.setdefault(a, set())
            adjacency.setdefault(b, set())
            if a == b:
                self_loops += 1
                edge_count += 1
                continue
            if b not in neighbours:
                edge_count += 1
            neighbours.add(b)
            adjacency[b].add(a)
        else:
            adjacency.setdefault(("var", entry[0], False), set())
    return shape_of(CanonicalGraph(adjacency, edge_count, self_loops))


def _shapes(pairs: Tuple, filter_entries: Tuple) -> Tuple[str, str]:
    # the shape ladder is isomorphism-invariant, so node identities are
    # canonicalized to first-occurrence indexes before the memo probe:
    # re-instantiations of one template (fresh constants, renamed
    # variables, same structure) collapse onto a single memo entry
    rename: Dict[Tuple[str, str, bool], Tuple[str, int, bool]] = {}
    rename_get = rename.get
    norm_pairs = []
    for subject, obj in pairs:
        if subject is None:
            a = None
        else:
            a = rename_get(subject)
            if a is None:
                a = rename[subject] = (
                    subject[0],
                    len(rename),
                    subject[2],
                )
        if obj is None:
            b = None
        else:
            b = rename_get(obj)
            if b is None:
                b = rename[obj] = (obj[0], len(rename), obj[2])
        norm_pairs.append((a, b))
    norm_entries = []
    for entry in filter_entries:
        renamed = []
        for name in entry:
            node = ("var", name, False)
            mapped = rename_get(node)
            if mapped is None:
                mapped = rename[node] = ("var", len(rename), False)
            renamed.append(mapped[1])
        norm_entries.append(tuple(renamed))
    key = (tuple(norm_pairs), tuple(norm_entries))
    shapes = _shape_memo.get(key)
    if shapes is None:
        shapes = (
            _shape_from(key[0], key[1], True),
            _shape_from(key[0], key[1], False),
        )
        if len(_shape_memo) >= _MEMO_LIMIT:
            _shape_memo.clear()
        _shape_memo[key] = shapes
    return shapes


def _hypertree_width(edges: Tuple[FrozenSet[str], ...]) -> Opt[int]:
    if edges in _htw_memo:
        return _htw_memo[edges]
    try:
        width: Opt[int] = hypertree_width(Hypergraph(edges), max_k=4)
    except ValueError:
        width = None
    if len(_htw_memo) >= _MEMO_LIMIT:
        _htw_memo.clear()
    _htw_memo[edges] = width
    return width


def _free_connex(
    edges: Tuple[FrozenSet[str], ...], free: FrozenSet[str]
) -> bool:
    vertices: Set[str] = set()
    for edge in edges:
        vertices |= edge
    free = free & vertices
    key = (edges, free)
    result = _fca_memo.get(key)
    if result is None:
        hypergraph = Hypergraph(edges)
        if not is_acyclic(hypergraph):
            result = False
        elif not free:
            result = True
        else:
            result = is_acyclic(hypergraph.with_edge(free))
        if len(_fca_memo) >= _MEMO_LIMIT:
            _fca_memo.clear()
        _fca_memo[key] = result
    return result


def analyze_query_fused(query: Query) -> Dict[str, object]:
    """Single-traversal equivalent of
    :func:`~repro.logs.analyzer.analyze_query` (identical output)."""
    pattern = query.pattern
    facts = _collect(pattern)
    operators = facts.operators
    features = facts.features

    _modifier_features(query, features)
    for sub in facts.subqueries:
        _modifier_features(sub, features)
    if facts.saw_and:
        features.add("And")

    out: Dict[str, object] = {}
    out["triples"] = facts.triples
    out["features"] = frozenset(features)
    out["operators"] = frozenset(operators)
    out["type"] = query.query_type

    plain_filters = facts.plain_filters
    filter_vars: Opt[List[List[str]]] = None

    def filter_var_names() -> List[List[str]]:
        nonlocal filter_vars
        if filter_vars is None:
            filter_vars = [
                sorted(
                    variable.name
                    for variable in node.constraint.variables()
                )
                for node in plain_filters
            ]
        return filter_vars

    if operators <= _CQ_F_OPS and facts.triples > 0:
        edges = tuple(
            frozenset(v.name for v in atom._own_variables())
            for atom in facts.plain_atoms
        ) + tuple(
            frozenset(names)
            for names in filter_var_names()
            if names
        )
        out["htw"] = _hypertree_width(edges)
        if query.select_star():
            free: Set[str] = set()
            for edge in edges:
                free |= edge
            out["fca"] = _free_connex(edges, frozenset(free))
        else:
            out["fca"] = _free_connex(
                edges,
                frozenset(p.variable.name for p in query.projections),
            )

    if (
        operators <= _CQ_F_OPS
        and _is_graph_pattern(facts.plain_atoms)
        and all(
            is_simple_filter(node.constraint)
            for node in plain_filters
        )
        and all(
            is_simple_filter(node.constraint)
            for node in facts.exists_filters
        )
    ):
        pairs = tuple(
            (_node_key(atom.subject), _node_key(atom.object))
            for atom in facts.plain_atoms
        )
        entries = tuple(
            tuple(names)
            for names in filter_var_names()
            if 1 <= len(names) <= 2
        )
        shape_with, shape_without = _shapes(pairs, entries)
        out["shape_with"] = shape_with
        out["shape_without"] = shape_without

    if operators <= _OPT_OPS:
        # the And/Filter/Optional fragment precondition of
        # is_well_designed holds by construction here, and a pattern
        # with no plain Optional is trivially well-designed
        well_designed = (
            _check_wd(pattern, pattern)
            if facts.plain_optionals
            else True
        )
        out["well_designed"] = well_designed
        well_behaved = well_designed
        if well_designed:
            for node in plain_filters:
                if not (
                    node.constraint.variables()
                    <= certain_variables(node.pattern)
                ):
                    well_behaved = False
                    break
        out["well_behaved"] = well_behaved

    if operators <= _UWD_OPS:
        if "Union" in operators:
            out["uwd"] = is_union_of_well_designed(pattern)
        else:
            out["uwd"] = well_designed

    if facts.plain_paths:
        out["path_buckets"] = [
            table8_bucket(path) for path in facts.plain_paths
        ]
        out["path_classes"] = [
            (
                path_is_simple_transitive(path),
                path_in_ctract(path),
                path_in_ttract(path),
            )
            for path in facts.plain_paths
        ]
    return out
