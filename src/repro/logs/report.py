"""Table renderers matching the paper's table layouts.

Each ``render_*`` function takes analyzer output and returns the table
as a string; the benchmarks print these so a run of the harness
regenerates the paper's tables side by side with the reproduction.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..sparql.features import TABLE3_FEATURES
from ..sparql.shapes import SHAPE_LADDER
from .analyzer import LogReport, VUCounter
from .corpus import QueryLogCorpus


def _format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    table = [list(map(str, headers))] + [
        [str(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in table) for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(table):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _pct(part: int, whole: int) -> str:
    if whole == 0:
        return "0.00%"
    return f"{100.0 * part / whole:.2f}%"


def render_table2(corpora: Iterable[QueryLogCorpus]) -> str:
    """Table 2: Total / Valid / Unique per source."""
    rows: List[Tuple] = []
    totals = [0, 0, 0]
    for corpus in corpora:
        source, total, valid, unique = corpus.table2_row()
        rows.append((source, total, valid, unique))
        totals[0] += total
        totals[1] += valid
        totals[2] += unique
    rows.append(("Total", *totals))
    return _format_table(("Source", "Total #Q", "Valid #Q", "Unique #Q"), rows)


def render_figure3(report: LogReport) -> str:
    """Figure 3: triple-count distribution (0..11+), Valid vs Unique."""
    valid_total, unique_total = report.triple_histogram.totals()
    buckets = [str(i) for i in range(11)] + ["11+"]
    rows = []
    for bucket in buckets:
        v = report.triple_histogram.valid.get(bucket, 0)
        u = report.triple_histogram.unique.get(bucket, 0)
        rows.append(
            (bucket, v, _pct(v, valid_total), u, _pct(u, unique_total))
        )
    return _format_table(
        ("#Triples", "Valid", "Valid%", "Unique", "Unique%"), rows
    )


def render_table3(report: LogReport) -> str:
    """Table 3: per-feature usage, Valid and Unique, absolute + relative."""
    rows = []
    for feature in TABLE3_FEATURES:
        v = report.features.valid.get(feature, 0)
        u = report.features.unique.get(feature, 0)
        rows.append(
            (
                feature,
                v,
                _pct(v, report.valid),
                u,
                _pct(u, report.unique),
            )
        )
    return _format_table(
        ("SPARQL operator", "AbsV", "RelV", "AbsU", "RelU"), rows
    )


_OPSET_ROWS = (
    ((), "none"),
    (("And",), "And"),
    (("Filter",), "Filter"),
    (("And", "Filter"), "And, Filter"),
    (("2RPQ",), "2RPQ"),
    (("2RPQ", "And"), "And, 2RPQ"),
    (("2RPQ", "Filter"), "Filter, 2RPQ"),
    (("2RPQ", "And", "Filter"), "And, Filter, 2RPQ"),
)


def render_table45(report: LogReport, with_paths: bool = False) -> str:
    """Tables 4 (DBpedia–BritM) / 5 (Wikidata): operator-set fragments.

    With ``with_paths`` the 2RPQ rows and the C2RPQ+F subtotal are
    included (Table 5); otherwise only the CQ+F lattice (Table 4).
    """
    rows = []
    for key, label in _OPSET_ROWS:
        if not with_paths and "2RPQ" in key:
            continue
        sorted_key = tuple(sorted(key))
        v = report.operator_sets.valid.get(sorted_key, 0)
        u = report.operator_sets.unique.get(sorted_key, 0)
        rows.append(
            (label, v, _pct(v, report.valid), u, _pct(u, report.unique))
        )
    cq_f_v, cq_f_u = report.cq_f_subtotal()
    rows.append(
        (
            "CQ+F subtotal",
            cq_f_v,
            _pct(cq_f_v, report.valid),
            cq_f_u,
            _pct(cq_f_u, report.unique),
        )
    )
    if with_paths:
        c2_v, c2_u = report.c2rpq_f_subtotal()
        rows.append(
            (
                "C2RPQ+F subtotal",
                c2_v,
                _pct(c2_v, report.valid),
                c2_u,
                _pct(c2_u, report.unique),
            )
        )
    return _format_table(
        ("Operator Set", "AbsV", "RelV", "AbsU", "RelU"), rows
    )


def render_table6(report: LogReport) -> str:
    """Table 6: hypertree width (cumulative) + free-connex acyclicity of
    the CQ+F queries."""
    valid_total, unique_total = report.htw.totals()
    fca_v = report.free_connex.valid.get(True, 0)
    fca_u = report.free_connex.unique.get(True, 0)
    rows = [
        (
            "FCA",
            fca_v,
            _pct(fca_v, valid_total),
            fca_u,
            _pct(fca_u, unique_total),
        )
    ]
    for bound in (1, 2, 3):
        v = sum(
            count
            for width, count in report.htw.valid.items()
            if width <= bound
        )
        u = sum(
            count
            for width, count in report.htw.unique.items()
            if width <= bound
        )
        rows.append(
            (
                f"htw <= {bound}",
                v,
                _pct(v, valid_total),
                u,
                _pct(u, unique_total),
            )
        )
    rows.append(
        ("Total", valid_total, "100.00%", unique_total, "100.00%")
    )
    return _format_table(("", "AbsV", "RelV", "AbsU", "RelU"), rows)


def render_table7(report: LogReport, with_constants: bool = True) -> str:
    """Table 7: cumulative shape ladder of graph-CQ+F queries."""
    counter: VUCounter = (
        report.shapes_with_constants
        if with_constants
        else report.shapes_without_constants
    )
    valid_total, unique_total = counter.totals()
    rows = []
    cumulative_v = cumulative_u = 0
    for shape in SHAPE_LADDER:
        cumulative_v += counter.valid.get(shape, 0)
        cumulative_u += counter.unique.get(shape, 0)
        label = {
            "no-edge": "no edge",
            "le-1-edge": "<= 1 edge",
            "tw<=2": "tw <= 2",
            "tw<=3": "tw <= 3",
            "other": "total",
        }.get(shape, shape)
        rows.append(
            (
                label,
                cumulative_v,
                _pct(cumulative_v, valid_total),
                cumulative_u,
                _pct(cumulative_u, unique_total),
            )
        )
    return _format_table(("Shape", "AbsV", "RelV", "AbsU", "RelU"), rows)


def render_table8(report: LogReport) -> str:
    """Table 8: property-path type buckets."""
    from ..sparql.pathtypes import TABLE8_BUCKETS

    valid_total, unique_total = report.path_buckets.totals()
    rows = []
    for bucket in TABLE8_BUCKETS:
        v = report.path_buckets.valid.get(bucket, 0)
        u = report.path_buckets.unique.get(bucket, 0)
        if v == 0 and u == 0:
            continue
        rows.append(
            (
                bucket,
                v,
                _pct(v, valid_total),
                u,
                _pct(u, unique_total),
            )
        )
    rows.append(
        ("Total", valid_total, "100%", unique_total, "100%")
    )
    return _format_table(
        ("Expression Type", "AbsV", "RelV", "AbsU", "RelU"), rows
    )


def render_path_classes(report: LogReport) -> str:
    """The Section 9.6 coverage numbers: STE / C_tract / T_tract."""
    valid_total, unique_total = report.path_classes.totals()
    rows = []
    for label, index in (("STE", 0), ("C_tract", 1), ("T_tract", 2)):
        good_v = sum(
            count
            for key, count in report.path_classes.valid.items()
            if not key[index].startswith("non-")
        )
        good_u = sum(
            count
            for key, count in report.path_classes.unique.items()
            if not key[index].startswith("non-")
        )
        rows.append(
            (
                label,
                good_v,
                _pct(good_v, valid_total),
                good_u,
                _pct(good_u, unique_total),
            )
        )
    return _format_table(("Class", "AbsV", "RelV", "AbsU", "RelU"), rows)


def render_well_designed(report: LogReport) -> str:
    """Sections 9.1/9.4: well-designed, well-behaved (AFO fragment) and
    unions of well-designed (AFOU fragment)."""
    valid_total, unique_total = report.well_designed.totals()
    wd_v = report.well_designed.valid.get(True, 0)
    wd_u = report.well_designed.unique.get(True, 0)
    wb_v = report.well_behaved.valid.get(True, 0)
    wb_u = report.well_behaved.unique.get(True, 0)
    rows = [
        (
            "well-designed",
            wd_v,
            _pct(wd_v, valid_total),
            wd_u,
            _pct(wd_u, unique_total),
        ),
        (
            "well-behaved",
            wb_v,
            _pct(wb_v, valid_total),
            wb_u,
            _pct(wb_u, unique_total),
        ),
        ("AFO fragment total", valid_total, "100%", unique_total, "100%"),
    ]
    uwd_valid_total, uwd_unique_total = report.union_well_designed.totals()
    uwd_v = report.union_well_designed.valid.get(True, 0)
    uwd_u = report.union_well_designed.unique.get(True, 0)
    rows.append(
        (
            "union of well-designed",
            uwd_v,
            _pct(uwd_v, uwd_valid_total),
            uwd_u,
            _pct(uwd_u, uwd_unique_total),
        )
    )
    rows.append(
        (
            "AFOU fragment total",
            uwd_valid_total,
            "100%",
            uwd_unique_total,
            "100%",
        )
    )
    return _format_table(("", "AbsV", "RelV", "AbsU", "RelU"), rows)
