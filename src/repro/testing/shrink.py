"""Greedy shrinking of failing fuzz cases (ddmin-style).

The loop is oracle-agnostic: an oracle supplies a stream of *smaller*
candidate cases for the current failure; the first candidate that still
fails becomes the new current case and the loop restarts.  Termination
is guaranteed because candidates are strictly smaller by the oracle's
own size measure and the step budget is bounded.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional as Opt

Check = Callable[[Any], Opt[str]]
Candidates = Callable[[Any], Iterable[Any]]


def _safe_check(check: Check, case: Any) -> Opt[str]:
    try:
        return check(case)
    except Exception as exc:  # a crashing check is itself a failure
        return f"oracle crashed: {type(exc).__name__}: {exc}"


def shrink(
    case: Any,
    check: Check,
    candidates: Candidates,
    max_steps: int = 3000,
) -> Any:
    """Smallest case found that still fails ``check``.

    ``case`` must already fail; the original is returned unchanged when
    no candidate preserves the failure.
    """
    if _safe_check(check, case) is None:
        raise ValueError("shrink() needs a failing case")
    current = case
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in candidates(current):
            steps += 1
            if _safe_check(check, candidate) is not None:
                current = candidate
                improved = True
                break
            if steps >= max_steps:
                break
    return current


def text_candidates(text: str) -> Iterable[str]:
    """Chunk-removal candidates for string cases, largest cuts first."""
    n = len(text)
    size = max(1, n // 2)
    while size >= 1:
        start = 0
        while start < n:
            yield text[:start] + text[start + size :]
            start += size
        if size == 1:
            break
        size //= 2


def sequence_candidates(items: list) -> Iterable[list]:
    """Chunk-removal candidates for list cases (events, triples, …)."""
    n = len(items)
    size = max(1, n // 2)
    while size >= 1:
        start = 0
        while start < n:
            yield items[:start] + items[start + size :]
            start += size
        if size == 1:
            break
        size //= 2
