"""The fuzz loop and corpus replay.

``fuzz`` drives one oracle for a wall-clock budget or an iteration
count with a deterministic seed; every divergence is shrunk before it
is reported.  ``replay`` re-checks previously recorded cases (the
regression corpus).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional as Opt, Tuple

from .oracles import ORACLES, Oracle
from .shrink import shrink


@dataclass
class Divergence:
    """One fuzz failure: the raw case, its shrunk form, the messages."""

    target: str
    message: str
    case: Any  # encoded (JSON-able)
    shrunk: Any  # encoded (JSON-able)
    shrunk_message: str


@dataclass
class FuzzReport:
    target: str
    seed: int
    executed: int
    elapsed: float
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _checked(oracle: Oracle, case: Any) -> Opt[str]:
    try:
        return oracle.check(case)
    except Exception as exc:
        # a crashing oracle is a divergence too — the harness must never
        # silently swallow it
        return f"oracle crashed: {type(exc).__name__}: {exc}"


def fuzz(
    target: str,
    seconds: Opt[float] = None,
    iterations: Opt[int] = None,
    seed: int = 0,
    max_divergences: int = 5,
    do_shrink: bool = True,
) -> FuzzReport:
    """Fuzz one oracle; deterministic given (target, seed, iterations).

    With a ``seconds`` budget the case *sequence* is still seed-determined
    — only how far the loop gets depends on the clock.  At least one of
    ``seconds``/``iterations`` is required.
    """
    if seconds is None and iterations is None:
        raise ValueError("fuzz() needs a seconds or iterations budget")
    oracle = ORACLES[target]
    rng = random.Random(seed)
    deadline = None if seconds is None else time.monotonic() + seconds
    started = time.monotonic()
    report = FuzzReport(target=target, seed=seed, executed=0, elapsed=0.0)
    while True:
        if iterations is not None and report.executed >= iterations:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        case = oracle.generate(rng)
        report.executed += 1
        message = _checked(oracle, case)
        if message is None:
            continue
        shrunk = case
        if do_shrink:
            shrunk = shrink(
                case,
                lambda c: _checked(oracle, c),
                oracle.shrink_candidates,
            )
        report.divergences.append(
            Divergence(
                target=target,
                message=message,
                case=oracle.encode(case),
                shrunk=oracle.encode(shrunk),
                shrunk_message=_checked(oracle, shrunk) or message,
            )
        )
        if len(report.divergences) >= max_divergences:
            break
    report.elapsed = time.monotonic() - started
    return report


def replay(
    target: str, encoded_cases: List[Any]
) -> List[Tuple[Any, str]]:
    """Re-check recorded cases; returns the (encoded case, message)
    pairs that diverge (empty list = everything passes)."""
    oracle = ORACLES[target]
    failures: List[Tuple[Any, str]] = []
    for encoded in encoded_cases:
        case = oracle.decode(encoded)
        message = _checked(oracle, case)
        if message is not None:
            failures.append((encoded, message))
    return failures
