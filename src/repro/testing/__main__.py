"""``python -m repro.testing`` — see :mod:`repro.testing.cli`."""

import sys

from .cli import main

sys.exit(main())
