"""Seedable, grammar-aware input generators for the fuzzing harness.

Every generator is a pure function of the :class:`random.Random` it is
handed, so a fixed seed reproduces the exact case sequence (asserted by
``tests/testing/test_generators.py``).  Generators aim for the shape of
the paper's data: small labeled trees, DTD content models, regexes over
2–4 letter alphabets, RPQ expressions with inverse atoms, and the
SPARQL fragment of Section 9.
"""

from __future__ import annotations

import json as _json
import random
from typing import Any, Dict, List, Optional as Opt, Tuple

from ..regex.ast import (
    EMPTY,
    EPSILON,
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

Event = Tuple[str, str]

# ---------------------------------------------------------------------------
# Regex ASTs and their corpus encoding
# ---------------------------------------------------------------------------
#
# Corpus entries store regex ASTs as nested JSON arrays, NOT the academic
# string notation: ``str(Concat((Plus(a), b)))`` is ``"a+ b"``, which the
# context-disambiguated '+' reparses as a Union — the encoding must not
# depend on that ambiguity.


def regex_to_json(expr: Regex) -> list:
    if isinstance(expr, Empty):
        return ["empty"]
    if isinstance(expr, Epsilon):
        return ["eps"]
    if isinstance(expr, Symbol):
        return ["sym", expr.label]
    if isinstance(expr, Union):
        return ["union"] + [regex_to_json(p) for p in expr.parts]
    if isinstance(expr, Concat):
        return ["cat"] + [regex_to_json(p) for p in expr.parts]
    if isinstance(expr, Star):
        return ["star", regex_to_json(expr.child)]
    if isinstance(expr, Plus):
        return ["plus", regex_to_json(expr.child)]
    if isinstance(expr, Optional):
        return ["opt", regex_to_json(expr.child)]
    raise TypeError(f"cannot encode regex node {expr!r}")


def regex_from_json(obj: list) -> Regex:
    tag = obj[0]
    if tag == "empty":
        return EMPTY
    if tag == "eps":
        return EPSILON
    if tag == "sym":
        return Symbol(obj[1])
    if tag == "union":
        return Union(tuple(regex_from_json(p) for p in obj[1:]))
    if tag == "cat":
        return Concat(tuple(regex_from_json(p) for p in obj[1:]))
    if tag == "star":
        return Star(regex_from_json(obj[1]))
    if tag == "plus":
        return Plus(regex_from_json(obj[1]))
    if tag == "opt":
        return Optional(regex_from_json(obj[1]))
    raise ValueError(f"unknown regex tag {tag!r}")


def random_regex_ast(
    rng: random.Random,
    alphabet: Tuple[str, ...],
    depth: int,
    allow_empty: bool = True,
) -> Regex:
    """A random expression tree; ``allow_empty`` admits ``[]`` leaves
    (the source of the one-unambiguity trimming bug)."""
    if depth <= 0:
        leaves: List[Regex] = [Symbol(rng.choice(alphabet))]
        if rng.random() < 0.25:
            leaves = [EPSILON]
        if allow_empty and rng.random() < 0.12:
            leaves = [EMPTY]
        return leaves[0]
    kind = rng.randrange(6)
    if kind == 0:
        return Union(
            tuple(
                random_regex_ast(rng, alphabet, depth - 1, allow_empty)
                for _ in range(rng.randrange(2, 4))
            )
        )
    if kind == 1:
        return Concat(
            tuple(
                random_regex_ast(rng, alphabet, depth - 1, allow_empty)
                for _ in range(rng.randrange(2, 4))
            )
        )
    if kind == 2:
        return Star(random_regex_ast(rng, alphabet, depth - 1, allow_empty))
    if kind == 3:
        return Plus(random_regex_ast(rng, alphabet, depth - 1, allow_empty))
    if kind == 4:
        return Optional(
            random_regex_ast(rng, alphabet, depth - 1, allow_empty)
        )
    return random_regex_ast(rng, alphabet, depth - 1, allow_empty)


# ---------------------------------------------------------------------------
# JSON documents
# ---------------------------------------------------------------------------

_JSON_KEYS = ("a", "bb", "key", "名前", "x y", "", "it\tem")
_JSON_STRINGS = (
    "",
    "plain",
    "with \"quotes\" and \\backslash",
    "unicode: café 𝄞",
    "line\nbreak\ttab",
    " control",
)
# token-level splices that exercise the number/string grammar edges
_JSON_SPLICES = (
    "1e",
    "1.e5",
    "-.",
    "01",
    "1.",
    "-",
    "+1",
    "0x1",
    "1e+",
    ".5",
    "00",
    "\\u12",
    "\\ud834",
    "\\udd1e",
    "\\u+123",
    "\\x41",
    'tru',
    "nul",
    "NaN",
    "Infinity",
    ",,",
    "[",
    "}",
    '"',
    "\x01",
    "\x1f",
)


def _random_json_value(rng: random.Random, depth: int) -> Any:
    if depth <= 0 or rng.random() < 0.4:
        kind = rng.randrange(7)
        if kind == 0:
            return rng.choice((True, False, None))
        if kind == 1:
            return rng.randrange(-1000, 1000)
        if kind == 2:
            return rng.choice((0, -0, 10**18, -(10**12)))
        if kind == 3:
            mantissa = rng.randrange(-999, 1000)
            exponent = rng.randrange(-20, 20)
            return float(f"{mantissa}e{exponent}")
        return rng.choice(_JSON_STRINGS)
    if rng.random() < 0.5:
        return {
            rng.choice(_JSON_KEYS)
            + str(i): _random_json_value(rng, depth - 1)
            for i in range(rng.randrange(0, 4))
        }
    return [
        _random_json_value(rng, depth - 1)
        for _ in range(rng.randrange(0, 4))
    ]


def random_json_text(rng: random.Random) -> str:
    """A JSON document: usually valid (possibly oddly formatted), often
    mutated at the text level to probe reject paths."""
    value = _random_json_value(rng, rng.randrange(1, 5))
    text = _json.dumps(
        value,
        ensure_ascii=rng.random() < 0.5,
        separators=rng.choice(((",", ":"), (", ", ": "))),
    )
    roll = rng.random()
    if roll < 0.45:
        return text
    # mutate: splice a grammar-edge token, delete a slice, or flip a char
    mutated = text
    for _ in range(rng.randrange(1, 3)):
        op = rng.randrange(3)
        if op == 0:
            at = rng.randrange(len(mutated) + 1)
            mutated = (
                mutated[:at] + rng.choice(_JSON_SPLICES) + mutated[at:]
            )
        elif op == 1 and len(mutated) > 1:
            start = rng.randrange(len(mutated))
            end = min(len(mutated), start + rng.randrange(1, 4))
            mutated = mutated[:start] + mutated[end:]
        elif mutated:
            at = rng.randrange(len(mutated))
            mutated = (
                mutated[:at]
                + rng.choice('{}[],:"\\-+.eE0123 \t\n')
                + mutated[at + 1 :]
            )
    return mutated


# ---------------------------------------------------------------------------
# DTDs, trees and event streams
# ---------------------------------------------------------------------------

_DTD_LABELS = ("a", "b", "c", "d")


def _random_content_model(
    rng: random.Random,
    depth: int,
    atoms: Tuple[str, ...] = _DTD_LABELS,
) -> str:
    """A textual rule body parseable by ``parse_regex(multi_char=True)``;
    composites are always parenthesized so the rendering is unambiguous."""
    if depth <= 0:
        if rng.random() < 0.15:
            return "()"
        return rng.choice(atoms)
    kind = rng.randrange(6)
    if kind == 0:
        return (
            "("
            + _random_content_model(rng, depth - 1, atoms)
            + " "
            + _random_content_model(rng, depth - 1, atoms)
            + ")"
        )
    if kind == 1:
        return (
            "("
            + _random_content_model(rng, depth - 1, atoms)
            + "|"
            + _random_content_model(rng, depth - 1, atoms)
            + ")"
        )
    if kind == 2:
        return "(" + _random_content_model(rng, depth - 1, atoms) + ")*"
    if kind == 3:
        return "(" + _random_content_model(rng, depth - 1, atoms) + ")?"
    if kind == 4:
        return "(" + _random_content_model(rng, depth - 1, atoms) + ")+"
    return _random_content_model(rng, depth - 1, atoms)


def random_dtd_rules(
    rng: random.Random,
) -> Tuple[Dict[str, str], str]:
    """Textual rules for :meth:`repro.trees.dtd.DTD.from_rules` plus the
    start label."""
    rules = {
        label: (
            ""
            if rng.random() < 0.2
            else _random_content_model(rng, rng.randrange(1, 3))
        )
        for label in _DTD_LABELS
        if rng.random() < 0.85
    }
    start = rng.choice(_DTD_LABELS)
    rules.setdefault(start, _random_content_model(rng, 1))
    return rules, start


_EDTD_TYPES = ("ta", "tb", "tc", "td", "te")
_EDTD_TARGET_LABELS = ("a", "b", "c")


def random_edtd_rules(
    rng: random.Random,
) -> Tuple[Dict[str, str], List[str], Dict[str, str]]:
    """Textual rules for :meth:`repro.trees.edtd.EDTD.from_rules` plus
    start types and the renaming µ.  Types are drawn from a pool larger
    than the label set µ maps onto, so µ-collisions (two types with the
    same element name — the non-single-type regime where streaming needs
    candidate *sets*) are the common case, not the corner case."""
    types = [t for t in _EDTD_TYPES if rng.random() < 0.8]
    if not types:
        types = [rng.choice(_EDTD_TYPES)]
    atoms = tuple(types)
    rules = {
        t: (
            ""
            if rng.random() < 0.25
            else _random_content_model(rng, rng.randrange(1, 3), atoms)
        )
        for t in types
    }
    mu = {t: rng.choice(_EDTD_TARGET_LABELS) for t in types}
    start = sorted(
        {rng.choice(types) for _ in range(rng.randrange(1, 3))}
    )
    return rules, start, mu


def random_event_stream(rng: random.Random) -> List[Event]:
    """A SAX-style event stream: half the time the stream of a random
    (often invalid) tree with text events injected, half the time an
    arbitrary start/end/text sequence probing unbalanced cases."""
    events: List[Event] = []
    if rng.random() < 0.5:
        depth = 0
        for _ in range(rng.randrange(1, 14)):
            roll = rng.random()
            if roll < 0.2 and depth > 0:
                events.append(("end", events[-1][1] if rng.random() < 0.5 else rng.choice(_DTD_LABELS)))
                depth -= 1
            elif roll < 0.35:
                events.append(("text", rng.choice(("", "hi", " "))))
            else:
                events.append(("start", rng.choice(_DTD_LABELS)))
                depth += 1
        # sometimes close the document properly, sometimes leave it open
        if rng.random() < 0.7:
            stack: List[str] = []
            balanced: List[Event] = []
            for kind, label in events:
                if kind == "start":
                    stack.append(label)
                elif kind == "end":
                    if not stack:
                        continue
                    label = stack.pop()
                balanced.append((kind, label))
            while stack:
                balanced.append(("end", stack.pop()))
            events = balanced
    else:
        for _ in range(rng.randrange(0, 12)):
            kind = rng.choice(("start", "end", "text"))
            events.append((kind, rng.choice(_DTD_LABELS + ("hi",))))
    return events


# ---------------------------------------------------------------------------
# RPQ cases
# ---------------------------------------------------------------------------

_RPQ_NODES = ("n0", "n1", "n2", "n3", "n4", "n5", "n6")
_RPQ_PREDICATES = ("p", "q", "r")
_RPQ_ATOMS = ("p", "q", "r", "^p", "^q")


def random_rpq_case(rng: random.Random) -> Dict[str, Any]:
    """A store + expression + endpoints + semantics choice."""
    node_pool = _RPQ_NODES[: rng.randrange(2, len(_RPQ_NODES) + 1)]
    triples = sorted(
        {
            (
                rng.choice(node_pool),
                rng.choice(_RPQ_PREDICATES),
                rng.choice(node_pool),
            )
            for _ in range(rng.randrange(0, 13))
        }
    )
    expr = random_regex_ast(
        rng, _RPQ_ATOMS, rng.randrange(1, 4), allow_empty=True
    )
    ghosts = node_pool + ("ghost",)
    return {
        "triples": [list(t) for t in triples],
        "expr": regex_to_json(expr),
        "source": rng.choice(ghosts),
        "target": rng.choice(ghosts),
        "semantics": rng.choice(("walk", "simple", "trail")),
    }


# ---------------------------------------------------------------------------
# SPARQL queries
# ---------------------------------------------------------------------------

_SPARQL_VARS = ("?x", "?y", "?z", "?s", "?o")
_SPARQL_IRIS = (":p", ":q", "foaf:knows", "<http://ex.org/p>", "a")
_SPARQL_NODES = (":n1", "<http://ex.org/n>", "_:b1")
_SPARQL_LITERALS = (
    '"plain"',
    '"a\\nb"',
    '"quo\\"te"',
    '"back\\\\slash"',
    '"caf\\u00e9"',
    '"tab\\there"',
    '"x"@en',
    '"5"^^xsd:int',
    '"w"^^<http://www.w3.org/2001/XMLSchema#string>',
    "3",
    "-2.5",
    "1e3",
    "true",
    "false",
)


def _sparql_term(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.45:
        return rng.choice(_SPARQL_VARS)
    if roll < 0.65:
        return rng.choice(_SPARQL_NODES)
    if roll < 0.95:
        return rng.choice(_SPARQL_LITERALS)
    return "[]"


def _sparql_path(rng: random.Random, depth: int) -> str:
    if depth <= 0:
        atom = rng.choice(_SPARQL_IRIS)
        if rng.random() < 0.3:
            return "^" + (atom if atom != "a" else ":p")
        return atom
    kind = rng.randrange(5)
    if kind == 0:
        return (
            f"({_sparql_path(rng, depth - 1)}/{_sparql_path(rng, depth - 1)})"
        )
    if kind == 1:
        return (
            f"({_sparql_path(rng, depth - 1)}|{_sparql_path(rng, depth - 1)})"
        )
    if kind == 2:
        return f"({_sparql_path(rng, depth - 1)})" + rng.choice("*+?")
    if kind == 3:
        return "!(" + "|".join(
            rng.sample((":p", ":q", "^:r"), rng.randrange(1, 3))
        ) + ")"
    return _sparql_path(rng, depth - 1)


def _sparql_predicate(rng: random.Random) -> str:
    roll = rng.random()
    if roll < 0.5:
        return rng.choice(_SPARQL_IRIS)
    if roll < 0.7:
        return rng.choice(_SPARQL_VARS)
    return _sparql_path(rng, rng.randrange(1, 3))


def _sparql_triple(rng: random.Random) -> str:
    return (
        f"{_sparql_term(rng)} {_sparql_predicate(rng)} {_sparql_term(rng)}"
    )


def _sparql_expr(rng: random.Random, depth: int) -> str:
    if depth <= 0:
        roll = rng.random()
        if roll < 0.5:
            return rng.choice(_SPARQL_VARS)
        return rng.choice(_SPARQL_LITERALS)
    kind = rng.randrange(7)
    if kind == 0:
        op = rng.choice(("=", "!=", "<", "<=", ">", ">=", "+", "*"))
        return (
            f"({_sparql_expr(rng, depth - 1)} {op} "
            f"{_sparql_expr(rng, depth - 1)})"
        )
    if kind == 1:
        op = rng.choice(("&&", "||"))
        return (
            f"({_sparql_expr(rng, depth - 1)} {op} "
            f"{_sparql_expr(rng, depth - 1)})"
        )
    if kind == 2:
        return f"!({_sparql_expr(rng, depth - 1)})"
    if kind == 3:
        name = rng.choice(("regex", "lang", "str", "bound", "COUNT"))
        return f"{name}({_sparql_expr(rng, depth - 1)})"
    if kind == 4:
        return (
            f"({rng.choice(_SPARQL_VARS)} IN "
            f"({', '.join(rng.choice(_SPARQL_LITERALS) for _ in range(2))}))"
        )
    if kind == 5:
        return f"EXISTS {{ {_sparql_triple(rng)} }}"
    return _sparql_expr(rng, depth - 1)


def _sparql_group(rng: random.Random, depth: int) -> str:
    parts: List[str] = []
    for _ in range(rng.randrange(1, 4)):
        roll = rng.random()
        if depth > 0 and roll < 0.12:
            parts.append("OPTIONAL " + _sparql_group(rng, depth - 1))
        elif depth > 0 and roll < 0.2:
            parts.append(
                _sparql_group(rng, depth - 1)
                + " UNION "
                + _sparql_group(rng, depth - 1)
            )
        elif depth > 0 and roll < 0.25:
            parts.append("MINUS " + _sparql_group(rng, depth - 1))
        elif roll < 0.35:
            parts.append(f"FILTER ({_sparql_expr(rng, 2)})")
        elif roll < 0.42:
            parts.append(
                f"BIND(({_sparql_expr(rng, 1)}) AS "
                f"?b{rng.randrange(10)})"
            )
        elif roll < 0.48:
            rows = " ".join(
                f"( {rng.choice(_SPARQL_LITERALS + ('UNDEF',))} )"
                for _ in range(rng.randrange(1, 3))
            )
            parts.append(
                f"VALUES ( {rng.choice(_SPARQL_VARS)} ) {{ {rows} }}"
            )
        elif depth > 0 and roll < 0.53:
            parts.append(
                f"GRAPH {rng.choice(_SPARQL_VARS + _SPARQL_NODES[:2])} "
                + _sparql_group(rng, depth - 1)
            )
        else:
            parts.append(_sparql_triple(rng) + " .")
    return "{ " + " ".join(parts) + " }"


def _sparql_modifier(rng: random.Random) -> str:
    parts: List[str] = []
    if rng.random() < 0.25:
        parts.append(f"GROUP BY {rng.choice(_SPARQL_VARS)}")
        if rng.random() < 0.5:
            parts.append(f"HAVING ((COUNT({rng.choice(_SPARQL_VARS)}) > 1))")
    if rng.random() < 0.3:
        var = rng.choice(_SPARQL_VARS)
        parts.append(
            "ORDER BY " + (f"DESC({var})" if rng.random() < 0.5 else var)
        )
    if rng.random() < 0.3:
        parts.append(f"LIMIT {rng.randrange(100)}")
    if rng.random() < 0.2:
        parts.append(f"OFFSET {rng.randrange(50)}")
    return " ".join(parts)


def random_sparql_text(rng: random.Random) -> str:
    form = rng.randrange(10)
    group = _sparql_group(rng, rng.randrange(1, 3))
    modifier = _sparql_modifier(rng)
    if form < 6:
        head = "SELECT"
        if rng.random() < 0.25:
            head += rng.choice((" DISTINCT", " REDUCED"))
        if rng.random() < 0.4:
            head += " *"
        else:
            for _ in range(rng.randrange(1, 3)):
                if rng.random() < 0.25:
                    head += (
                        f" (({_sparql_expr(rng, 1)}) AS"
                        f" ?a{rng.randrange(10)})"
                    )
                else:
                    head += " " + rng.choice(_SPARQL_VARS)
        text = f"{head} WHERE {group}"
    elif form < 8:
        text = f"ASK {group}"
    elif form == 8:
        template = " . ".join(
            f"{rng.choice(_SPARQL_VARS)} {rng.choice(_SPARQL_IRIS)} "
            f"{_sparql_term(rng)}"
            for _ in range(rng.randrange(1, 3))
        )
        text = f"CONSTRUCT {{ {template} }} WHERE {group}"
    else:
        text = f"DESCRIBE {rng.choice(_SPARQL_VARS)} WHERE {group}"
    if modifier:
        text += " " + modifier
    if rng.random() < 0.15:
        text = "PREFIX foaf: <http://xmlns.com/foaf/0.1/> " + text
    return text
