"""Command line entry point: ``python -m repro.testing <command>``.

Commands
--------

``fuzz``
    Run one oracle (or all of them) for a time/iteration budget with a
    deterministic seed.  Exit status 1 when any divergence is found.
    With ``--record``, shrunk divergences are appended to the corpus.

``replay``
    Re-check the regression corpus.  Exit status 1 on any failure.

``list``
    List the registered oracles.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from .corpus import DEFAULT_CORPUS_DIR, append_entry, corpus_path, load_corpus
from .oracles import ORACLES
from .runner import fuzz, replay


def _targets(option: str) -> List[str]:
    if option == "all":
        return sorted(ORACLES)
    if option not in ORACLES:
        raise SystemExit(
            f"unknown target {option!r}; known: {', '.join(sorted(ORACLES))}"
        )
    return [option]


def _cmd_fuzz(args: argparse.Namespace) -> int:
    status = 0
    for target in _targets(args.target):
        report = fuzz(
            target,
            seconds=args.seconds if args.iterations is None else None,
            iterations=args.iterations,
            seed=args.seed,
            max_divergences=args.max_divergences,
        )
        verdict = "ok" if report.ok else "DIVERGED"
        print(
            f"[{target}] {verdict}: {report.executed} cases in "
            f"{report.elapsed:.1f}s (seed {report.seed}, "
            f"{len(report.divergences)} divergence(s))"
        )
        for divergence in report.divergences:
            status = 1
            print(f"  message: {divergence.shrunk_message}")
            print(
                "  shrunk case: "
                + json.dumps(divergence.shrunk, ensure_ascii=False)
            )
            if args.record:
                append_entry(
                    corpus_path(Path(args.corpus), target),
                    f"fuzz seed={report.seed}: {divergence.shrunk_message}",
                    divergence.shrunk,
                )
                print("  recorded to corpus")
    return status


def _cmd_replay(args: argparse.Namespace) -> int:
    status = 0
    for target in _targets(args.target):
        entries = load_corpus(corpus_path(Path(args.corpus), target))
        failures = replay(target, [entry["case"] for entry in entries])
        verdict = "ok" if not failures else "FAILED"
        print(
            f"[{target}] {verdict}: {len(entries)} corpus case(s), "
            f"{len(failures)} failure(s)"
        )
        for encoded, message in failures:
            status = 1
            print(f"  {message}")
            print("  case: " + json.dumps(encoded, ensure_ascii=False))
    return status


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(ORACLES):
        print(f"{name}: {ORACLES[name].description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="differential fuzzing harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz_parser = sub.add_parser("fuzz", help="run a fuzz campaign")
    fuzz_parser.add_argument(
        "--target",
        default="all",
        help="oracle name or 'all' (default: all)",
    )
    fuzz_parser.add_argument(
        "--seconds",
        type=float,
        default=10.0,
        help="wall-clock budget per target (default 10; ignored with "
        "--iterations)",
    )
    fuzz_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="exact case count instead of a time budget",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument("--max-divergences", type=int, default=5)
    fuzz_parser.add_argument(
        "--record",
        action="store_true",
        help="append shrunk divergences to the corpus",
    )
    fuzz_parser.add_argument(
        "--corpus", default=str(DEFAULT_CORPUS_DIR)
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    replay_parser = sub.add_parser(
        "replay", help="re-check the regression corpus"
    )
    replay_parser.add_argument("--target", default="all")
    replay_parser.add_argument(
        "--corpus", default=str(DEFAULT_CORPUS_DIR)
    )
    replay_parser.set_defaults(func=_cmd_replay)

    list_parser = sub.add_parser("list", help="list registered oracles")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
