"""Differential oracles: fast path vs reference path on generated input.

Each oracle bundles five things: a case generator, a divergence check
(``None`` means "agrees"), shrink candidates for failing cases, and an
``encode``/``decode`` pair mapping cases to JSON-able objects for the
checked-in regression corpus.

Register new oracles in :data:`ORACLES`; the runner, the CLI and the
corpus replay tests discover them by name.
"""

from __future__ import annotations

import dataclasses
import json as _stdjson
import random
import tempfile
from collections import deque
from typing import Any, Dict, Iterable, List, Optional as Opt, Set, Tuple

from ..errors import (
    DTDParseError,
    JSONParseError,
    RegexParseError,
    SchemaError,
    SPARQLParseError,
)
from ..graphs.paths import (
    evaluate_rpq,
    evaluate_rpq_reference,
    exists_simple_path,
    exists_simple_path_reference,
    exists_simple_path_smart,
    exists_trail,
    exists_trail_reference,
)
from ..graphs.rdf import TripleStore
from ..logs.analyzer import (
    COUNTER_FIELDS,
    LogReport,
    analyze_corpus,
    analyze_query,
    encode_analysis,
)
from ..logs.battery import analyze_query_fused
from ..logs.corpus import QueryLogCorpus
from ..logs.pipeline import run_study
from ..logs.workload import ALL_PROFILES, generate_source_log
from ..regex.ast import Concat, Optional as OptRegex, Plus, Regex, Star, Union
from ..regex.automata import glushkov
from ..regex.determinism import is_deterministic
from ..sparql.parser import parse_query
from ..sparql.serialize import serialize_query
from ..trees.automata import (
    TreeAutomaton,
    contains_determinize,
    validate_events,
)
from ..trees.dtd import DTD
from ..trees.edtd import EDTD
from ..trees.json_parser import parse_json
from ..trees.streaming import validate_stream
from ..trees.tree import Tree, TreeNode
from .generators import (
    Event,
    random_dtd_rules,
    random_edtd_rules,
    random_event_stream,
    random_json_text,
    random_regex_ast,
    random_rpq_case,
    random_sparql_text,
    regex_from_json,
    regex_to_json,
)
from .shrink import sequence_candidates, text_candidates


class Oracle:
    """Base class of differential oracles (see module docstring)."""

    name: str = ""
    description: str = ""

    def generate(self, rng: random.Random) -> Any:
        raise NotImplementedError

    def check(self, case: Any) -> Opt[str]:
        """A divergence message, or ``None`` when both sides agree (a
        case outside the oracle's precondition also returns ``None``)."""
        raise NotImplementedError

    def shrink_candidates(self, case: Any) -> Iterable[Any]:
        return iter(())

    def encode(self, case: Any) -> Any:
        return case

    def decode(self, obj: Any) -> Any:
        return obj


# ---------------------------------------------------------------------------
# JSON: custom scanner vs stdlib
# ---------------------------------------------------------------------------


def _reject_constant(text: str) -> None:
    # stdlib json accepts NaN/Infinity by default, an extension RFC 8259
    # (and our scanner) rejects; pin the oracle to the strict grammar.
    raise ValueError(f"non-RFC constant {text!r}")


def _typed_equal(a: Any, b: Any) -> bool:
    """Equality that does not conflate bool/int or int/float."""
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return len(a) == len(b) and all(
            k in b and _typed_equal(v, b[k]) for k, v in a.items()
        )
    if isinstance(a, list):
        return len(a) == len(b) and all(
            _typed_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


class JSONOracle(Oracle):
    name = "json"
    description = "custom JSON scanner vs stdlib json (verdict + value)"

    def generate(self, rng: random.Random) -> str:
        return random_json_text(rng)

    def check(self, case: str) -> Opt[str]:
        try:
            ours: Tuple[str, Any] = ("ok", parse_json(case))
        except JSONParseError:
            ours = ("err", None)
        except RecursionError:
            return None  # recursion-depth parity is not a target
        except Exception as exc:
            return (
                f"custom parser leaked {type(exc).__name__}: {exc} "
                f"(JSONParseError expected)"
            )
        try:
            std: Tuple[str, Any] = (
                "ok",
                _stdjson.loads(case, parse_constant=_reject_constant),
            )
        except RecursionError:
            return None
        except Exception:
            std = ("err", None)
        if ours[0] != std[0]:
            return (
                f"accept/reject divergence: custom={ours[0]} "
                f"stdlib={std[0]}"
            )
        if ours[0] == "ok" and not _typed_equal(ours[1], std[1]):
            return (
                f"value divergence: custom={ours[1]!r} stdlib={std[1]!r}"
            )
        return None

    def shrink_candidates(self, case: str) -> Iterable[str]:
        return text_candidates(case)


# ---------------------------------------------------------------------------
# DTD: streaming validator vs in-memory validation
# ---------------------------------------------------------------------------


def _tree_of_events(events: List[Event]) -> Opt[Tree]:
    """The document tree of an event stream, or ``None`` when the stream
    is not a single balanced element (text events are ignored; any other
    unknown kind makes the stream malformed)."""
    root: Opt[TreeNode] = None
    stack: List[TreeNode] = []
    for kind, label in events:
        if kind == "text":
            continue
        if kind == "start":
            node = TreeNode(label)
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                root = node
            else:
                return None  # second root element
            stack.append(node)
        elif kind == "end":
            if not stack or stack[-1].label != label:
                return None  # unbalanced
            stack.pop()
        else:
            return None  # unknown event kind
    if stack or root is None:
        return None
    return Tree(root)


class DTDStreamOracle(Oracle):
    name = "dtd-stream"
    description = "validate_stream vs DTD.validate on the event's tree"

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        rules, start = random_dtd_rules(rng)
        return {
            "rules": rules,
            "start": start,
            "events": [list(e) for e in random_event_stream(rng)],
        }

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        try:
            dtd = DTD.from_rules(case["rules"], start=[case["start"]])
        except (DTDParseError, RegexParseError):
            return None  # malformed rule text is outside the oracle
        events = [tuple(e) for e in case["events"]]
        streaming = validate_stream(dtd, events)
        tree = _tree_of_events(events)
        reference = tree is not None and dtd.validate(tree)
        if streaming != reference:
            return (
                f"stream/in-memory divergence: streaming={streaming} "
                f"in-memory={reference}"
            )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        for events in sequence_candidates(case["events"]):
            yield {**case, "events": events}
        for label in list(case["rules"]):
            if label == case["start"]:
                continue
            smaller = dict(case["rules"])
            del smaller[label]
            yield {**case, "rules": smaller}
        for label, body in case["rules"].items():
            if body:
                yield {**case, "rules": {**case["rules"], label: ""}}


# ---------------------------------------------------------------------------
# RPQ: compiled engine vs reference evaluators, all three semantics
# ---------------------------------------------------------------------------


class RPQOracle(Oracle):
    name = "rpq"
    description = (
        "compiled RPQ engine vs *_reference under walk/simple-path/trail"
    )

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        return random_rpq_case(rng)

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        store = TripleStore()
        for s, p, o in case["triples"]:
            store.add(s, p, o)
        expr = regex_from_json(case["expr"])
        source, target = case["source"], case["target"]
        semantics = case["semantics"]
        if semantics == "walk":
            fast = evaluate_rpq(store, expr)
            ref = evaluate_rpq_reference(store, expr)
            if fast != ref:
                return (
                    f"walk all-pairs divergence: engine-only="
                    f"{sorted(fast - ref)} reference-only={sorted(ref - fast)}"
                )
            fast = evaluate_rpq(store, expr, sources=[source], targets=[target])
            ref = evaluate_rpq_reference(
                store, expr, sources=[source], targets=[target]
            )
            if fast != ref:
                return (
                    f"walk filtered divergence at ({source}, {target}): "
                    f"engine={sorted(fast)} reference={sorted(ref)}"
                )
            return None
        if semantics == "simple":
            fast = exists_simple_path(store, expr, source, target)
            ref = exists_simple_path_reference(store, expr, source, target)
            if fast != ref:
                return (
                    f"simple-path divergence at ({source}, {target}): "
                    f"engine={fast} reference={ref}"
                )
            smart = exists_simple_path_smart(store, expr, source, target)
            if smart != ref:
                return (
                    f"simple-path smart-route divergence at "
                    f"({source}, {target}): smart={smart} reference={ref}"
                )
            return None
        fast = exists_trail(store, expr, source, target)
        ref = exists_trail_reference(store, expr, source, target)
        if fast != ref:
            return (
                f"trail divergence at ({source}, {target}): "
                f"engine={fast} reference={ref}"
            )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        for triples in sequence_candidates(case["triples"]):
            yield {**case, "triples": triples}
        expr = regex_from_json(case["expr"])
        for candidate in _regex_candidates(expr):
            yield {**case, "expr": regex_to_json(candidate)}


# ---------------------------------------------------------------------------
# Regex determinism: syntactic Glushkov test vs brute-force search
# ---------------------------------------------------------------------------


def _brute_force_unambiguous(expr: Regex) -> bool:
    """One-unambiguity by exploration of the trimmed Glushkov automaton.

    BKW define determinism over the *marked language*: after any marked
    prefix, the next symbol must determine the next position among the
    positions that can still complete to a marked word.  Explore the
    reachable subsets, drop non-co-accessible positions, and look for a
    subset with two live same-symbol successors.
    """
    nfa = glushkov(expr)
    num_states = len(nfa.transitions)
    reverse: List[Set[int]] = [set() for _ in range(num_states)]
    for src in range(num_states):
        for targets in nfa.transitions[src].values():
            for dst in targets:
                reverse[dst].add(src)
    alive: Set[int] = set(nfa.finals)
    queue = deque(alive)
    while queue:
        state = queue.popleft()
        for prev in reverse[state]:
            if prev not in alive:
                alive.add(prev)
                queue.append(prev)
    start = frozenset(nfa.initial)
    seen = {start}
    frontier = deque([start])
    while frontier:
        subset = frontier.popleft()
        merged: Dict[str, Set[int]] = {}
        for state in subset:
            for label, targets in nfa.transitions[state].items():
                merged.setdefault(label, set()).update(
                    t for t in targets if t in alive
                )
        for targets in merged.values():
            if len(targets) > 1:
                return False
            if not targets:
                continue
            nxt = frozenset(targets)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return True


def _regex_candidates(expr: Regex) -> Iterable[Regex]:
    """Strictly smaller variants of an expression (hoist a child, drop a
    part of an n-ary node, shrink a child in place)."""
    if isinstance(expr, (Union, Concat)):
        for part in expr.parts:
            yield part
        if len(expr.parts) > 2:
            for i in range(len(expr.parts)):
                yield type(expr)(expr.parts[:i] + expr.parts[i + 1 :])
        for i, part in enumerate(expr.parts):
            for candidate in _regex_candidates(part):
                yield type(expr)(
                    expr.parts[:i] + (candidate,) + expr.parts[i + 1 :]
                )
    elif isinstance(expr, (Star, Plus, OptRegex)):
        yield expr.child
        for candidate in _regex_candidates(expr.child):
            yield type(expr)(candidate)


class RegexDeterminismOracle(Oracle):
    name = "regex-determinism"
    description = "is_deterministic vs brute-force Glushkov ambiguity search"

    _ALPHABET = ("a", "b", "c")

    def generate(self, rng: random.Random) -> Regex:
        return random_regex_ast(
            rng, self._ALPHABET, rng.randrange(1, 5), allow_empty=True
        )

    def check(self, case: Regex) -> Opt[str]:
        syntactic = is_deterministic(case)
        brute = _brute_force_unambiguous(case)
        if syntactic != brute:
            return (
                f"determinism divergence on {case}: syntactic={syntactic} "
                f"brute-force={brute}"
            )
        return None

    def shrink_candidates(self, case: Regex) -> Iterable[Regex]:
        return _regex_candidates(case)

    def encode(self, case: Regex) -> Any:
        return {"expr": regex_to_json(case)}

    def decode(self, obj: Any) -> Regex:
        return regex_from_json(obj["expr"])


# ---------------------------------------------------------------------------
# Log pipeline: fused run_study (workers + cache) vs sequential battery
# ---------------------------------------------------------------------------


def _report_divergence(
    reference: LogReport, candidate: LogReport
) -> Opt[str]:
    """First counter (or header) where two reports differ, or ``None``."""
    header = ("total", "valid", "unique")
    for name in header:
        left, right = getattr(reference, name), getattr(candidate, name)
        if left != right:
            return f"header {name}: sequential={left} pipeline={right}"
    for name in COUNTER_FIELDS:
        left = getattr(reference, name).items()
        right = getattr(candidate, name).items()
        if left != right:
            return (
                f"counter {name}: sequential={left!r} pipeline={right!r}"
            )
    return None


class LogPipelineOracle(Oracle):
    name = "log-pipeline"
    description = (
        "run_study (dedup-first pipeline, fused workers, analysis "
        "cache) vs sequential analyze_corpus"
    )

    _PROFILES = tuple(profile.name for profile in ALL_PROFILES)

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        return {
            "profile": rng.choice(self._PROFILES),
            "total": rng.randint(3, 24),
            "seed": rng.randrange(1 << 20),
            # the pool path is heavyweight, so it is sampled, not the
            # default; a dedicated pytest test covers it deterministically
            "workers": 2 if rng.random() < 0.1 else 0,
            "chunk_size": rng.choice((1, 3, 8, 64)),
            "cache": rng.random() < 0.5,
        }

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        profile = {p.name: p for p in ALL_PROFILES}[case["profile"]]
        texts = generate_source_log(
            profile, case["total"], seed=case["seed"]
        )
        reference = analyze_corpus(
            QueryLogCorpus.from_texts(profile.name, texts)
        )
        runs: List[Tuple[str, LogReport]] = []
        if case["cache"]:
            with tempfile.TemporaryDirectory() as tmp:
                for label in ("cold-cache", "warm-cache"):
                    runs.append(
                        (
                            label,
                            run_study(
                                profile.name,
                                texts,
                                workers=case["workers"],
                                cache=tmp,
                                chunk_size=case["chunk_size"],
                            ),
                        )
                    )
        else:
            runs.append(
                (
                    "uncached",
                    run_study(
                        profile.name,
                        texts,
                        workers=case["workers"],
                        chunk_size=case["chunk_size"],
                    ),
                )
            )
        for label, report in runs:
            message = _report_divergence(reference, report)
            if message is not None:
                return f"{label} run: {message}"
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        if case["total"] > 1:
            yield {**case, "total": case["total"] // 2}
            yield {**case, "total": case["total"] - 1}
        if case["workers"]:
            yield {**case, "workers": 0}
        if case["cache"]:
            yield {**case, "cache": False}
        if case["chunk_size"] > 1:
            yield {**case, "chunk_size": 1}


# ---------------------------------------------------------------------------
# SPARQL: parse -> serialize -> parse round trip
# ---------------------------------------------------------------------------


class SPARQLRoundTripOracle(Oracle):
    name = "sparql-roundtrip"
    description = "parse→serialize→parse preserves the AST (modulo text)"

    def generate(self, rng: random.Random) -> str:
        return random_sparql_text(rng)

    def check(self, case: str) -> Opt[str]:
        try:
            first = parse_query(case)
        except SPARQLParseError:
            return None  # unparseable input is outside the oracle
        except RecursionError:
            return None
        except Exception as exc:
            return f"parser crashed: {type(exc).__name__}: {exc}"
        try:
            rendered = serialize_query(first)
        except Exception as exc:
            return f"serializer failed: {type(exc).__name__}: {exc}"
        try:
            second = parse_query(rendered)
        except Exception as exc:
            return (
                f"serialized form does not reparse: {rendered!r} "
                f"({type(exc).__name__}: {exc})"
            )
        if dataclasses.replace(first, text=None) != dataclasses.replace(
            second, text=None
        ):
            return f"round-trip AST mismatch via {rendered!r}"
        return None

    def shrink_candidates(self, case: str) -> Iterable[str]:
        return text_candidates(case)


# ---------------------------------------------------------------------------
# Service: embedded serving layer vs direct library calls
# ---------------------------------------------------------------------------


class ServiceOracle(Oracle):
    name = "service"
    description = (
        "EmbeddedService responses (engine and cached) vs direct "
        "library calls"
    )

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        roll = rng.random()
        if roll < 0.5:
            case = random_rpq_case(rng)
            # the service takes expression *text*; reuse the RPQ case
            # generator and render its AST (both sides re-parse the text,
            # so rendering ambiguity cannot cause a false divergence)
            return {
                "kind": "rpq",
                "triples": case["triples"],
                "expr": str(regex_from_json(case["expr"])),
                "source": case["source"],
                "target": case["target"],
                "semantics": case["semantics"],
            }
        kind = "sparql" if roll < 0.75 else "log"
        return {"kind": kind, "query": random_sparql_text(rng)}

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        import asyncio

        return asyncio.run(self._check(case))

    async def _check(self, case: Dict[str, Any]) -> Opt[str]:
        from ..errors import BadRequest, RegexParseError
        from ..regex.parser import parse as parse_regex
        from ..service import EmbeddedService
        from ..sparql.features import (
            count_triple_patterns,
            operator_set,
            query_features,
        )
        from ..logs.analyzer import analyze_query, encode_analysis

        kind = case["kind"]
        store = TripleStore()
        if kind == "rpq":
            for s, p, o in case["triples"]:
                store.add(s, p, o)
        async with EmbeddedService({"g": store}) as service:
            # ask twice: the first answer comes from the engine, the
            # second from the result cache; both must equal direct calls
            responses = []
            for _ in range(2):
                if kind == "rpq":
                    params = {
                        "store": "g",
                        "expr": case["expr"],
                        "semantics": case["semantics"],
                    }
                    if case["semantics"] != "walk":
                        params["source"] = case["source"]
                        params["target"] = case["target"]
                    responses.append(await service.request("rpq", params))
                else:
                    responses.append(
                        await service.request(kind, {"query": case["query"]})
                    )
        expected_error = None
        if kind == "rpq":
            try:
                expr = parse_regex(case["expr"], multi_char=True)
            except RegexParseError:
                expr = None
                expected_error = BadRequest.code
            if expr is None:
                expected = None
            elif case["semantics"] == "walk":
                expected = {
                    "semantics": "walk",
                    "pairs": sorted(
                        list(pair) for pair in evaluate_rpq(store, expr)
                    ),
                    "count": len(evaluate_rpq(store, expr)),
                }
            else:
                decide = (
                    exists_simple_path
                    if case["semantics"] == "simple"
                    else exists_trail
                )
                expected = {
                    "semantics": case["semantics"],
                    "exists": decide(
                        store, expr, case["source"], case["target"]
                    ),
                }
        else:
            try:
                query = parse_query(case["query"])
            except (SPARQLParseError, RecursionError):
                query = None
            if kind == "sparql":
                if query is None:
                    expected = {"valid": False}
                else:
                    expected = {
                        "valid": True,
                        "canonical": serialize_query(query),
                        "query_type": query.query_type,
                        "triples": count_triple_patterns(query),
                        "features": sorted(query_features(query)),
                        "operators": sorted(operator_set(query)),
                    }
            else:
                if query is None:
                    expected = {"valid": False, "record": None}
                else:
                    expected = {
                        "valid": True,
                        "record": encode_analysis(analyze_query(query)),
                    }
        for which, response in zip(("engine", "cached"), responses):
            message = self._compare(which, response, expected, expected_error)
            if message is not None:
                return message
        served = [r.get("served_from") for r in responses]
        if expected_error is None and served != ["engine", "cache"]:
            return f"served_from sequence {served}, wanted engine then cache"
        return None

    @staticmethod
    def _compare(
        which: str,
        response: Dict[str, Any],
        expected: Opt[Dict[str, Any]],
        expected_error: Opt[str],
    ) -> Opt[str]:
        if expected_error is not None:
            if response.get("ok"):
                return (
                    f"{which}: service accepted what the library rejects "
                    f"(wanted error {expected_error})"
                )
            code = (response.get("error") or {}).get("code")
            if code != expected_error:
                return f"{which}: error code {code}, wanted {expected_error}"
            return None
        if not response.get("ok"):
            return f"{which}: service failed: {response.get('error')}"
        result = response["result"]
        for field, wanted in (expected or {}).items():
            if result.get(field) != wanted:
                return (
                    f"{which}: field {field!r} diverges: "
                    f"service={result.get(field)!r} direct={wanted!r}"
                )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        if case["kind"] == "rpq":
            for index in range(len(case["triples"])):
                smaller = list(case["triples"])
                del smaller[index]
                yield {**case, "triples": smaller}
            for text in text_candidates(case["expr"]):
                yield {**case, "expr": text}
        else:
            for text in text_candidates(case["query"]):
                yield {**case, "query": text}


# ---------------------------------------------------------------------------
# SPARQL: table-driven scanner vs the reference regex lexer
# ---------------------------------------------------------------------------


#: junk injected into otherwise-wellformed queries so the oracle also
#: exercises the *error* paths: both lexers must reject at the same
#: position with the same message
_LEXER_JUNK = "\\`§\x00\x7f@~"


class LexerOracle(Oracle):
    name = "lexer"
    description = (
        "table-driven scanner vs the reference regex lexer: same "
        "token stream, same error positions"
    )

    def generate(self, rng: random.Random) -> str:
        text = random_sparql_text(rng)
        if rng.random() < 0.3:
            # corrupt the text so error-position parity is fuzzed too
            at = rng.randrange(len(text) + 1)
            junk = rng.choice(_LEXER_JUNK)
            text = text[:at] + junk + text[at:]
        return text

    def check(self, case: str) -> Opt[str]:
        from ..sparql.parser import tokenize, tokenize_reference

        try:
            expected = tokenize_reference(case)
            expected_error = None
        except SPARQLParseError as exc:
            expected, expected_error = None, (str(exc), exc.position)
        try:
            actual = tokenize(case)
            actual_error = None
        except SPARQLParseError as exc:
            actual, actual_error = None, (str(exc), exc.position)
        if expected_error != actual_error:
            return (
                f"error divergence: reference={expected_error!r} "
                f"scanner={actual_error!r}"
            )
        if expected_error is not None:
            return None
        if len(expected) != len(actual):
            return (
                f"token count: reference={len(expected)} "
                f"scanner={len(actual)}"
            )
        for ref_token, new_token in zip(expected, actual):
            if (ref_token.kind, ref_token.text, ref_token.pos) != (
                new_token.kind,
                new_token.text,
                new_token.pos,
            ):
                return (
                    f"token divergence at {ref_token.pos}: "
                    f"reference={ref_token!r} scanner={new_token!r}"
                )
        return None

    def shrink_candidates(self, case: str) -> Iterable[str]:
        return text_candidates(case)


# ---------------------------------------------------------------------------
# Logs: fused single-traversal battery vs the reference battery
# ---------------------------------------------------------------------------


class FusedBatteryOracle(Oracle):
    name = "fused-battery"
    description = (
        "analyze_query_fused vs the reference analyze_query: "
        "byte-identical encoded analysis records"
    )

    def generate(self, rng: random.Random) -> str:
        return random_sparql_text(rng)

    def check(self, case: str) -> Opt[str]:
        try:
            query = parse_query(case)
        except SPARQLParseError:
            return None  # unparseable input is outside the oracle
        except RecursionError:
            return None
        except Exception as exc:
            return f"parser crashed: {type(exc).__name__}: {exc}"
        try:
            reference = encode_analysis(analyze_query(query))
        except Exception as exc:
            return f"reference battery crashed: {type(exc).__name__}: {exc}"
        try:
            fused = encode_analysis(analyze_query_fused(query))
        except Exception as exc:
            return f"fused battery crashed: {type(exc).__name__}: {exc}"
        if reference != fused:
            return (
                f"analysis records diverge: reference={reference!r} "
                f"fused={fused!r}"
            )
        return None

    def shrink_candidates(self, case: str) -> Iterable[str]:
        return text_candidates(case)


# ---------------------------------------------------------------------------
# Mapped store: the mmap image vs the in-memory store it was frozen from
# ---------------------------------------------------------------------------


class MmapStoreOracle(Oracle):
    name = "mmap-store"
    description = (
        "MappedTripleStore (frozen mmap image) vs the in-memory "
        "TripleStore across every query family"
    )

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        return random_rpq_case(rng)

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        import os

        from ..store.mmapstore import MappedTripleStore

        store = TripleStore()
        for s, p, o in case["triples"]:
            store.add(s, p, o)
        expr = regex_from_json(case["expr"])
        source, target = case["source"], case["target"]
        with tempfile.TemporaryDirectory() as tmp:
            fingerprint = store.save(os.path.join(tmp, "case.img"))
            with MappedTripleStore.load(os.path.join(tmp, "case.img")) as mapped:
                if fingerprint != store.fingerprint():
                    return (
                        f"save() returned {fingerprint}, live store says "
                        f"{store.fingerprint()}"
                    )
                if mapped.fingerprint() != store.fingerprint():
                    return (
                        f"fingerprint divergence: mapped="
                        f"{mapped.fingerprint()} live={store.fingerprint()}"
                    )
                if set(mapped.triples()) != set(store.triples()):
                    return "triple-set divergence after save/load"
                if mapped.nodes() != store.nodes() or (
                    mapped.predicates() != store.predicates()
                ):
                    return "node/predicate-set divergence after save/load"
                fast = evaluate_rpq(store, expr)
                frozen = evaluate_rpq(mapped, expr)
                if fast != frozen:
                    return (
                        f"walk all-pairs divergence: live-only="
                        f"{sorted(fast - frozen)} mapped-only="
                        f"{sorted(frozen - fast)}"
                    )
                fast = evaluate_rpq(
                    store, expr, sources=[source], targets=[target]
                )
                frozen = evaluate_rpq(
                    mapped, expr, sources=[source], targets=[target]
                )
                if fast != frozen:
                    return (
                        f"walk filtered divergence at ({source}, {target}): "
                        f"live={sorted(fast)} mapped={sorted(frozen)}"
                    )
                for semantics, decide in (
                    ("simple", exists_simple_path),
                    ("trail", exists_trail),
                ):
                    live = decide(store, expr, source, target)
                    image = decide(mapped, expr, source, target)
                    if live != image:
                        return (
                            f"{semantics}-path divergence at "
                            f"({source}, {target}): live={live} mapped={image}"
                        )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        for triples in sequence_candidates(case["triples"]):
            yield {**case, "triples": triples}
        expr = regex_from_json(case["expr"])
        for candidate in _regex_candidates(expr):
            yield {**case, "expr": regex_to_json(candidate)}


# ---------------------------------------------------------------------------
# Sharded service tier vs the single-process engine
# ---------------------------------------------------------------------------


#: bracketed vocabulary for full-evaluation (op ``query``) cases — the
#: evaluator matches predicates by the IRI's lexical form, so the store
#: must use the same ``<...>`` spelling the query text does
_QUERY_PREDICATES = ("<p>", "<q>", "<r>", "<hot>")
_QUERY_NODES = tuple(f"<n{i}>" for i in range(8))
#: safe evaluation templates: no ORDER BY / LIMIT (tie order is
#: implementation-defined; the service ships rows canonically sorted)
_QUERY_TEMPLATES = (
    "SELECT ?x ?y WHERE { ?x %P0 ?y }",
    "SELECT ?x ?z WHERE { ?x %P0 ?y . ?y %P1 ?z }",
    "SELECT ?x ?p ?y WHERE { ?x ?p ?y }",
    "ASK { ?x %P0 ?y }",
    "SELECT ?x WHERE { { ?x %P0 ?y } UNION { ?x %P1 ?y } }",
    "SELECT ?x ?y WHERE { ?x %P0 ?y OPTIONAL { ?y %P1 ?z } }",
    "SELECT ?x ?y WHERE { ?x %P0+ ?y }",
    "SELECT ?x ?y WHERE { ?x (%P0|%P1)* ?y }",
    "SELECT DISTINCT ?x WHERE { ?x %P0 ?y . ?x %P1 ?z }",
)
#: exchange-stressing RPQ expressions for the label-skewed / cyclic
#: stores: hot-sandwiched paths, cycles over every predicate, and an
#: absent predicate ("s") whose rounds have empty label intersections
_SKEW_EXPRS = (
    "hot* (p|q) hot*",
    "(hot|p)*",
    "hot hot*",
    "(p|q|r)*",
    "q hot* ^p",
    "s s*",
    "(p|s)* hot",
)


class ShardedServiceOracle(Oracle):
    name = "sharded-service"
    description = (
        "EmbeddedService over a sharded deployment (scatter-gather "
        "worker processes) vs the same service over the in-memory "
        "store: engine and cached answers for rpq, battery and full "
        "SPARQL evaluation (owners()-routed query op)"
    )

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        shards = rng.choice([2, 3, 4])
        roll = rng.random()
        if roll < 0.45:
            case = random_rpq_case(rng)
            return {
                "kind": "rpq",
                "triples": case["triples"],
                "expr": str(regex_from_json(case["expr"])),
                "source": case["source"],
                "target": case["target"],
                "semantics": case["semantics"],
                "shards": shards,
            }
        if roll < 0.7:
            # label-skewed cyclic store: a cold multi-predicate ring
            # (cyclic frontiers that revisit nodes with new masks) plus
            # a hot predicate carrying most triples — the exchange's
            # pruning and pipelining stress case
            nodes = [f"n{i}" for i in range(rng.randrange(4, 8))]
            triples = set()
            for index, node in enumerate(nodes):
                triples.add(
                    (
                        node,
                        rng.choice(("p", "q", "r")),
                        nodes[(index + 1) % len(nodes)],
                    )
                )
            for _ in range(rng.randrange(4, 20)):
                triples.add(
                    (rng.choice(nodes), "hot", rng.choice(nodes))
                )
            endpoints = nodes + ["ghost"]
            return {
                "kind": "rpq",
                "triples": [list(t) for t in sorted(triples)],
                "expr": rng.choice(_SKEW_EXPRS),
                "source": rng.choice(endpoints),
                "target": rng.choice(endpoints),
                "semantics": rng.choice(("walk", "walk", "simple", "trail")),
                "shards": shards,
            }
        if roll < 0.9:
            node_pool = _QUERY_NODES[: rng.randrange(3, len(_QUERY_NODES) + 1)]
            triples = sorted(
                {
                    (
                        rng.choice(node_pool),
                        rng.choice(_QUERY_PREDICATES),
                        rng.choice(node_pool),
                    )
                    for _ in range(rng.randrange(0, 16))
                }
            )
            template = rng.choice(_QUERY_TEMPLATES)
            query = template.replace(
                "%P0", rng.choice(_QUERY_PREDICATES)
            ).replace("%P1", rng.choice(_QUERY_PREDICATES))
            return {
                "kind": "query",
                "triples": [list(t) for t in triples],
                "query": query,
                "shards": shards,
            }
        case = random_rpq_case(rng)
        return {
            "kind": "battery",
            "triples": case["triples"],
            "queries": [
                random_sparql_text(rng)
                for _ in range(rng.randrange(1, 4))
            ],
            "shards": shards,
        }

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        import asyncio

        return asyncio.run(self._check(case))

    async def _check(self, case: Dict[str, Any]) -> Opt[str]:
        import os

        from ..service import EmbeddedService
        from ..service.shard import shard_store

        store = TripleStore()
        for s, p, o in case["triples"]:
            store.add(s, p, o)
        with tempfile.TemporaryDirectory() as tmp:
            shard_store(
                store, os.path.join(tmp, "g"), shards=case["shards"]
            )
            async with EmbeddedService(
                {"g": os.path.join(tmp, "g")}
            ) as sharded, EmbeddedService({"g": store}) as single:
                if case["kind"] == "rpq":
                    params: Dict[str, Any] = {
                        "store": "g",
                        "expr": case["expr"],
                        "semantics": case["semantics"],
                    }
                    if case["semantics"] != "walk":
                        params["source"] = case["source"]
                        params["target"] = case["target"]
                    op = "rpq"
                elif case["kind"] == "query":
                    params = {"store": "g", "query": case["query"]}
                    op = "query"
                else:
                    params = {
                        "store": "g",
                        "queries": case["queries"],
                        "source": "oracle",
                    }
                    op = "battery"
                # ask each deployment twice: first answer from the
                # engine, second from the cache — all four must agree
                # (the cache keys are fingerprint-addressed and the
                # shard manifest preserves the source fingerprint, so
                # both deployments derive identical keys)
                for which in ("engine", "cached"):
                    a = await sharded.request(op, params)
                    b = await single.request(op, params)
                    message = self._compare(which, a, b)
                    if message is not None:
                        return message
        return None

    @staticmethod
    def _compare(
        which: str, sharded: Dict[str, Any], single: Dict[str, Any]
    ) -> Opt[str]:
        if sharded.get("ok") != single.get("ok"):
            return (
                f"{which}: outcome divergence: sharded ok="
                f"{sharded.get('ok')} single ok={single.get('ok')}"
            )
        if not sharded.get("ok"):
            a = (sharded.get("error") or {}).get("code")
            b = (single.get("error") or {}).get("code")
            if a != b:
                return f"{which}: error code sharded={a} single={b}"
            return None
        if sharded["result"] != single["result"]:
            return (
                f"{which}: result divergence: "
                f"sharded={sharded['result']!r} single={single['result']!r}"
            )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        for triples in sequence_candidates(case["triples"]):
            yield {**case, "triples": triples}
        if case["shards"] > 2:
            yield {**case, "shards": 2}
        if case["kind"] == "rpq":
            for text in text_candidates(case["expr"]):
                yield {**case, "expr": text}
        elif case["kind"] == "query":
            pass  # query texts shrink poorly; the triples already do
        else:
            for index in range(len(case["queries"])):
                smaller = list(case["queries"])
                del smaller[index]
                if smaller:
                    yield {**case, "queries": smaller}


# ---------------------------------------------------------------------------
# Tree automata: streaming NFTA run vs EDTD.validate; antichain inclusion
# vs determinize-and-product and bounded tree enumeration
# ---------------------------------------------------------------------------


def _small_trees(labels: Tuple[str, ...], budget: int) -> List[Tree]:
    """A deterministic, breadth-ordered enumeration of small unranked
    trees over ``labels`` (depth ≤ 2, each node ≤ 2 children), capped at
    ``budget`` trees — the brute-force membership probe behind the
    inclusion oracle."""

    def layer(depth: int) -> List[TreeNode]:
        if depth <= 0:
            return [TreeNode(label) for label in labels]
        below = layer(depth - 1)
        nodes: List[TreeNode] = []
        child_seqs: List[List[TreeNode]] = [[]]
        child_seqs += [[c] for c in below]
        if depth == 1:
            child_seqs += [[c1, c2] for c1 in below for c2 in below]
        for label in labels:
            for seq in child_seqs:
                node = TreeNode(label)
                for child in seq:
                    node.add_child(_copy_node(child))
                nodes.append(node)
        return nodes

    trees = [Tree(node) for node in layer(2)]
    return trees[:budget]


def _copy_node(node: TreeNode) -> TreeNode:
    fresh = TreeNode(node.label)
    for child in node.children:
        fresh.add_child(_copy_node(child))
    return fresh


def _edtd_of(spec: Dict[str, Any]) -> Opt[EDTD]:
    try:
        return EDTD.from_rules(
            spec["rules"], start=list(spec["start"]), mu=dict(spec["mu"])
        )
    except (DTDParseError, RegexParseError, SchemaError, ValueError):
        return None  # malformed rule text is outside the oracle


class TreeAutomataOracle(Oracle):
    name = "tree-automata"
    description = (
        "streaming NFTA run vs EDTD.validate; antichain inclusion vs "
        "determinize-and-product and small-tree enumeration"
    )

    def generate(self, rng: random.Random) -> Dict[str, Any]:
        if rng.random() < 0.6:
            rules, start, mu = random_edtd_rules(rng)
            return {
                "kind": "stream",
                "rules": rules,
                "start": start,
                "mu": mu,
                "events": [list(e) for e in random_event_stream(rng)],
            }
        rules_a, start_a, mu_a = random_edtd_rules(rng)
        if rng.random() < 0.3:
            # bias toward inclusion actually holding: B is A plus slack
            rules_b = dict(rules_a)
            for t in list(rules_b):
                if rng.random() < 0.5:
                    rules_b[t] = f"(({rules_b[t]})|({t}*))" if rules_b[t] else f"({t}*)"
            side_b = {"rules": rules_b, "start": start_a, "mu": mu_a}
        else:
            rules_b, start_b, mu_b = random_edtd_rules(rng)
            side_b = {"rules": rules_b, "start": start_b, "mu": mu_b}
        return {
            "kind": "inclusion",
            "a": {"rules": rules_a, "start": start_a, "mu": mu_a},
            "b": side_b,
        }

    def check(self, case: Dict[str, Any]) -> Opt[str]:
        if case["kind"] == "stream":
            return self._check_stream(case)
        return self._check_inclusion(case)

    def _check_stream(self, case: Dict[str, Any]) -> Opt[str]:
        edtd = _edtd_of(case)
        if edtd is None:
            return None
        events = [tuple(e) for e in case["events"]]
        automaton = TreeAutomaton.from_edtd(edtd)
        streaming = validate_events(automaton, events)
        tree = _tree_of_events(events)
        reference = tree is not None and edtd.validate(tree)
        if streaming != reference:
            return (
                f"stream/in-memory divergence: streaming={streaming} "
                f"EDTD.validate={reference}"
            )
        reduced = validate_events(automaton.reduce(), events)
        if reduced != streaming:
            return (
                f"reduction changed the verdict: full={streaming} "
                f"reduced={reduced}"
            )
        return None

    def _check_inclusion(self, case: Dict[str, Any]) -> Opt[str]:
        edtd_a = _edtd_of(case["a"])
        edtd_b = _edtd_of(case["b"])
        if edtd_a is None or edtd_b is None:
            return None
        aut_a = TreeAutomaton.from_edtd(edtd_a)
        aut_b = TreeAutomaton.from_edtd(edtd_b)
        antichain = aut_a.included_in(aut_b)
        reference = contains_determinize(aut_a, aut_b)
        if antichain != reference:
            return (
                f"inclusion divergence: antichain={antichain} "
                f"determinize-product={reference}"
            )
        labels = tuple(
            sorted(set(aut_a.alphabet) | set(aut_b.alphabet))
        ) or ("a",)
        for tree in _small_trees(labels, budget=150):
            in_a = aut_a.validate(tree)
            if in_a != edtd_a.validate(tree):
                return "membership divergence: TreeAutomaton vs EDTD (A)"
            if antichain and in_a and not aut_b.validate(tree):
                return (
                    "enumeration counterexample: inclusion reported True "
                    "but a small tree is in A and not in B"
                )
        return None

    def shrink_candidates(
        self, case: Dict[str, Any]
    ) -> Iterable[Dict[str, Any]]:
        if case["kind"] == "stream":
            for events in sequence_candidates(case["events"]):
                yield {**case, "events": events}
            for t, body in case["rules"].items():
                if body:
                    yield {**case, "rules": {**case["rules"], t: ""}}
        else:
            for side in ("a", "b"):
                spec = case[side]
                for t in list(spec["rules"]):
                    if t in spec["start"]:
                        continue
                    smaller = dict(spec["rules"])
                    del smaller[t]
                    yield {**case, side: {**spec, "rules": smaller}}
                for t, body in spec["rules"].items():
                    if body:
                        yield {
                            **case,
                            side: {
                                **spec,
                                "rules": {**spec["rules"], t: ""},
                            },
                        }


ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        JSONOracle(),
        DTDStreamOracle(),
        RPQOracle(),
        RegexDeterminismOracle(),
        SPARQLRoundTripOracle(),
        LogPipelineOracle(),
        ServiceOracle(),
        LexerOracle(),
        FusedBatteryOracle(),
        MmapStoreOracle(),
        ShardedServiceOracle(),
        TreeAutomataOracle(),
    )
}
