"""Differential fuzzing and property testing for the repro codebase.

PR 1 split several subsystems into a fast path and a reference path
(compiled RPQ plans vs the seed evaluators, streaming vs in-memory DTD
validation, a hand-written JSON scanner vs what stdlib would do).  This
package guards those pairs with machine-generated inputs:

* :mod:`repro.testing.generators` — seedable, grammar-aware input
  generators (JSON documents, labeled trees + DTDs, regexes over small
  alphabets, RPQ cases, SPARQL queries);
* :mod:`repro.testing.oracles` — pluggable differential oracles; each
  generates cases, checks one case for a divergence, shrinks failures
  and round-trips cases through JSON for the regression corpus;
* :mod:`repro.testing.shrink` — the greedy shrinking loop;
* :mod:`repro.testing.runner` — the timed/counted fuzz loop and corpus
  replay;
* :mod:`repro.testing.corpus` — the checked-in regression corpus
  (JSONL, replayed by ``tests/testing/test_regressions.py``);
* CLI: ``python -m repro.testing fuzz --target json --seconds 30
  --seed N``.

To add an oracle, subclass :class:`repro.testing.oracles.Oracle`,
implement ``generate``/``check``/``shrink_candidates`` plus the
``encode``/``decode`` pair, and register an instance in
:data:`repro.testing.oracles.ORACLES`; the runner, CLI, corpus replay
and CI smoke job pick it up by name.
"""

from .oracles import ORACLES, Oracle
from .runner import Divergence, FuzzReport, fuzz, replay
from .shrink import shrink

__all__ = [
    "ORACLES",
    "Oracle",
    "Divergence",
    "FuzzReport",
    "fuzz",
    "replay",
    "shrink",
]
