"""The checked-in regression corpus.

One JSONL file per target under ``tests/testing/corpus/``; each line is
``{"note": <why this case is here>, "case": <oracle-encoded case>}``.
Every bug the harness has found gets its shrunk trigger recorded here,
and ``tests/testing/test_regressions.py`` replays every file on every
test run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

#: repo-relative default location (the CLI resolves it from the cwd)
DEFAULT_CORPUS_DIR = Path("tests") / "testing" / "corpus"


def corpus_path(corpus_dir: Path, target: str) -> Path:
    return Path(corpus_dir) / f"{target}.jsonl"


def load_corpus(path: Path) -> List[Dict[str, Any]]:
    """The entries of one corpus file ([] when the file is absent)."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    with path.open(encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: corrupt corpus line: {exc}"
                ) from exc
            if "case" not in entry:
                raise ValueError(
                    f"{path}:{line_number}: corpus entry without a case"
                )
            entries.append(entry)
    return entries


def append_entry(path: Path, note: str, encoded_case: Any) -> None:
    """Record one case (used by the CLI when a fuzz run finds a bug)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"note": note, "case": encoded_case}, ensure_ascii=False
            )
            + "\n"
        )
