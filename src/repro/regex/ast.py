"""Abstract syntax trees for regular expressions over an infinite label set.

The paper (Section 2) defines regular expressions over a countably infinite
set ``Lab`` of labels; every concrete expression only mentions a finite
alphabet.  This module provides immutable AST nodes mirroring that
definition::

    e ::= EMPTY | EPSILON | a | e1 . e2 | e1 + e2 | e* | e? | e+

Nodes are hashable and comparable structurally, so they can be used as
dictionary keys (the schema-inference and log-analysis code relies on this).

Two layers of constructors exist:

* The raw dataclass constructors (``Concat((e1, e2))``) preserve syntax
  exactly.  The parser uses these, because fragment classification
  (chain REs, k-OREs, determinism) is *syntactic* and must see the
  expression as written.
* The smart constructors :func:`concat`, :func:`union`, :func:`star`,
  :func:`plus`, :func:`optional` fold the trivial identities involving
  ``EMPTY``/``EPSILON`` and flatten nested n-ary operators.  Algorithmic
  code that synthesizes expressions (inference, the Appendix-A reduction)
  uses these.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Tuple


class Regex:
    """Base class for regular-expression AST nodes.

    Subclasses are frozen dataclasses; instances are immutable and hashable.
    """

    __slots__ = ()

    # -- structural statistics ------------------------------------------------

    def alphabet(self) -> frozenset:
        """The finite set of labels occurring in this expression."""
        out = set()
        for node in self.walk():
            if isinstance(node, Symbol):
                out.add(node.label)
        return frozenset(out)

    def size(self) -> int:
        """Number of AST nodes (a standard measure of expression size)."""
        return sum(1 for _node in self.walk())

    def parse_depth(self) -> int:
        """Height of the syntax tree.

        Choi's study (Section 4.2.1) reports parse depths of 1 to 9 for
        real-world DTD expressions; this is the statistic he measured.
        """
        children = list(self.children())
        if not children:
            return 1
        return 1 + max(child.parse_depth() for child in children)

    def star_height(self) -> int:
        """Maximal nesting depth of ``*``/``+`` operators."""
        inner = max((c.star_height() for c in self.children()), default=0)
        if isinstance(self, (Star, Plus)):
            return inner + 1
        return inner

    def occurrence_counts(self) -> dict:
        """Map each label to the number of times it occurs syntactically.

        An expression is a *k-occurrence regular expression* (k-ORE) when no
        label occurs more than ``k`` times (Section 4.2.3).
        """
        counts: dict = {}
        for node in self.walk():
            if isinstance(node, Symbol):
                counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    # -- traversal -------------------------------------------------------------

    def children(self) -> Tuple["Regex", ...]:
        """Immediate sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Regex"]:
        """Pre-order traversal of the syntax tree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    # -- semantics helpers -----------------------------------------------------

    @property
    def nullable(self) -> bool:
        """Whether the empty word belongs to the language."""
        raise NotImplementedError

    def matches_nothing(self) -> bool:
        """Whether the language is empty (contains no word at all)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()

    def to_string(self) -> str:
        raise NotImplementedError

    def _atom_string(self) -> str:
        """Render with parentheses if this node binds looser than an atom."""
        return f"({self.to_string()})"


@dataclass(frozen=True, slots=True)
class Empty(Regex):
    """The expression with the empty language (written ``[]``)."""

    @property
    def nullable(self) -> bool:
        return False

    def matches_nothing(self) -> bool:
        return True

    def to_string(self) -> str:
        return "[]"

    def _atom_string(self) -> str:
        return "[]"


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The expression whose language is exactly the empty word."""

    @property
    def nullable(self) -> bool:
        return True

    def matches_nothing(self) -> bool:
        return False

    def to_string(self) -> str:
        return "()"

    def _atom_string(self) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class Symbol(Regex):
    """A single label from ``Lab``.

    Labels are arbitrary strings; graph-database labels such as
    ``wdt:P31`` or reverse atoms like ``^a`` are simply symbols at this
    level (the SPARQL path layer adds its own inverse operator).
    """

    label: str

    @property
    def nullable(self) -> bool:
        return False

    def matches_nothing(self) -> bool:
        return False

    def to_string(self) -> str:
        return self.label

    def _atom_string(self) -> str:
        if len(self.label) == 1:
            return self.label
        return self.label


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """Concatenation ``e1 . e2 . ... . en`` (n-ary, n >= 2)."""

    parts: Tuple[Regex, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Concat requires at least two parts")

    def children(self) -> Tuple[Regex, ...]:
        return self.parts

    @property
    def nullable(self) -> bool:
        return all(part.nullable for part in self.parts)

    def matches_nothing(self) -> bool:
        return any(part.matches_nothing() for part in self.parts)

    def to_string(self) -> str:
        rendered = []
        for part in self.parts:
            if isinstance(part, (Union, Concat)):
                rendered.append(f"({part.to_string()})")
            else:
                rendered.append(part.to_string())
        return " ".join(rendered)


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """Disjunction ``e1 + e2 + ... + en`` (n-ary, n >= 2)."""

    parts: Tuple[Regex, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise ValueError("Union requires at least two parts")

    def children(self) -> Tuple[Regex, ...]:
        return self.parts

    @property
    def nullable(self) -> bool:
        return any(part.nullable for part in self.parts)

    def matches_nothing(self) -> bool:
        return all(part.matches_nothing() for part in self.parts)

    def to_string(self) -> str:
        rendered = []
        for part in self.parts:
            if isinstance(part, Union):
                rendered.append(f"({part.to_string()})")
            else:
                rendered.append(part.to_string())
        return " + ".join(rendered)


class _Unary(Regex):
    """Shared behaviour of the postfix operators ``*``, ``+``, ``?``."""

    __slots__ = ()

    _operator = "?"

    def children(self) -> Tuple[Regex, ...]:
        return (self.child,)  # type: ignore[attr-defined]

    def matches_nothing(self) -> bool:
        return False if self.nullable else self.child.matches_nothing()  # type: ignore[attr-defined]

    def to_string(self) -> str:
        child = self.child  # type: ignore[attr-defined]
        if isinstance(child, (Symbol, Empty, Epsilon)):
            inner = child._atom_string()
            if isinstance(child, Symbol) and len(child.label) > 1:
                inner = f"({inner})"
        else:
            inner = f"({child.to_string()})"
        return inner + self._operator


@dataclass(frozen=True, slots=True)
class Star(_Unary):
    """Kleene closure ``e*``."""

    child: Regex
    _operator = "*"

    @property
    def nullable(self) -> bool:
        return True

    def matches_nothing(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Plus(_Unary):
    """One-or-more repetition ``e+``."""

    child: Regex
    _operator = "+"

    @property
    def nullable(self) -> bool:
        return self.child.nullable

    def to_string(self) -> str:  # '+' would clash with union rendering
        child = self.child
        if isinstance(child, (Symbol, Empty, Epsilon)):
            inner = child._atom_string()
            if isinstance(child, Symbol) and len(child.label) > 1:
                inner = f"({inner})"
        else:
            inner = f"({child.to_string()})"
        return inner + "+"


@dataclass(frozen=True, slots=True)
class Optional(_Unary):
    """Zero-or-one occurrence ``e?``."""

    child: Regex
    _operator = "?"

    @property
    def nullable(self) -> bool:
        return True

    def matches_nothing(self) -> bool:
        return False


EMPTY = Empty()
EPSILON = Epsilon()


def symbol(label: str) -> Symbol:
    """Create a :class:`Symbol` for ``label``."""
    return Symbol(label)


def symbols(labels: Iterable[str]) -> list:
    """Create a list of symbols, handy for building factor disjunctions."""
    return [Symbol(label) for label in labels]


def concat(*parts: Regex) -> Regex:
    """Smart concatenation: folds EPSILON, propagates EMPTY, flattens."""
    flat = []
    for part in parts:
        if isinstance(part, Empty):
            return EMPTY
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Regex) -> Regex:
    """Smart disjunction: drops EMPTY branches, flattens, dedups."""
    flat = []
    seen = set()
    for part in parts:
        if isinstance(part, Empty):
            continue
        subparts = part.parts if isinstance(part, Union) else (part,)
        for sub in subparts:
            if sub not in seen:
                seen.add(sub)
                flat.append(sub)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(child: Regex) -> Regex:
    """Smart Kleene star: ``[]* = ()* = ()``, ``(e*)* = e*``."""
    if isinstance(child, (Empty, Epsilon)):
        return EPSILON
    if isinstance(child, Star):
        return child
    if isinstance(child, (Plus, Optional)):
        return Star(child.child)
    return Star(child)


def plus(child: Regex) -> Regex:
    """Smart one-or-more: ``[]+ = []``, ``()+ = ()``, ``(e*)+ = e*``."""
    if isinstance(child, Empty):
        return EMPTY
    if isinstance(child, Epsilon):
        return EPSILON
    if isinstance(child, Star):
        return child
    if isinstance(child, Plus):
        return child
    if isinstance(child, Optional):
        return Star(child.child)
    return Plus(child)


def optional(child: Regex) -> Regex:
    """Smart zero-or-one: ``[]? = ()``, folds already-nullable children."""
    if isinstance(child, Empty):
        return EPSILON
    if child.nullable:
        return child
    return Optional(child)


def word(labels: Iterable[str]) -> Regex:
    """The expression denoting exactly one word (concatenation of symbols)."""
    return concat(*[Symbol(label) for label in labels])


def literal(text: str) -> Regex:
    """Expression for a word given as a string of single-character labels."""
    return word(list(text))


@lru_cache(maxsize=4096)
def _shortest_word_length(expr: Regex):
    """Length of a shortest word in L(expr), or None for the empty language."""
    if isinstance(expr, Empty):
        return None
    if isinstance(expr, Epsilon):
        return 0
    if isinstance(expr, Symbol):
        return 1
    if isinstance(expr, Concat):
        total = 0
        for part in expr.parts:
            sub = _shortest_word_length(part)
            if sub is None:
                return None
            total += sub
        return total
    if isinstance(expr, Union):
        lengths = [_shortest_word_length(p) for p in expr.parts]
        lengths = [length for length in lengths if length is not None]
        return min(lengths) if lengths else None
    if isinstance(expr, (Star, Optional)):
        return 0
    if isinstance(expr, Plus):
        return _shortest_word_length(expr.child)
    raise TypeError(f"unknown node {expr!r}")


def shortest_word_length(expr: Regex):
    """Public wrapper around the cached shortest-word computation."""
    return _shortest_word_length(expr)
