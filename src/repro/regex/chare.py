"""Fragment-specific decision procedures for chain regular expressions.

Theorems 4.4 and 4.5 of the paper pin down the complexity of containment
and intersection for the RE(…) fragments.  This module implements the
*polynomial* cases with direct algorithms (the point being that the usual
worst-case automata constructions are unnecessary there), plus the
polynomial *equivalence* tests for RE(a, a*) and RE(a, a?) — which is
remarkable because containment for those same fragments is coNP-complete.

Summary of what is implemented and why it is correct:

* ``RE(a, a+)``: after merging adjacent factors with the same letter, the
  language is a sequence of *blocks* ``(letter, m, unbounded?)`` meaning
  "exactly m" or "at least m" repetitions.  Containment and intersection
  are block-wise comparisons (Theorem 4.4(a), 4.5(a)).
* ``RE(a, (+a))``: every word has the same length; the language is a
  product ``S1 × … × Sn`` of letter sets; containment is position-wise
  inclusion and intersection is position-wise non-disjointness
  (Theorem 4.4(b), 4.5(b)).
* ``RE(a, a*)`` and ``RE(a, a?)``: equivalence is decided by comparing
  *canonical block forms* (letter, min, max/unbounded after merging) —
  polynomial, in contrast with coNP-complete containment
  (Theorem 4.4(c, d) and the remark following it).
* Downward-closed chains (all factors optional or starred): containment of
  an arbitrary expression in such a chain is polynomial via a greedy
  left-to-right matching (Abdulla et al.), because the chain admits a
  linear-size DFA whose states are "next factor to try".

Calling a specialized function on an expression outside its fragment
raises :class:`~repro.errors.FragmentError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional as Opt, Sequence, Tuple

from ..errors import FragmentError
from .ast import Regex
from .automata import DFA, glushkov
from .classes import SimpleFactor, chare_factors, in_fragment


# ---------------------------------------------------------------------------
# Block normal forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Block:
    """A maximal run of same-letter factors in a chain expression.

    ``minimum`` is the least number of repetitions, ``maximum`` the largest
    (``None`` means unbounded).
    """

    letter: str
    minimum: int
    maximum: Opt[int]

    @property
    def unbounded(self) -> bool:
        return self.maximum is None


def _factor_bounds(factor: SimpleFactor) -> Tuple[int, Opt[int]]:
    """(min, max) contribution of one single-letter factor."""
    if factor.modifier == "":
        return 1, 1
    if factor.modifier == "?":
        return 0, 1
    if factor.modifier == "*":
        return 0, None
    if factor.modifier == "+":
        return 1, None
    raise AssertionError(factor.modifier)


def block_form(expr: Regex) -> List[Block]:
    """Canonical block decomposition of a single-letter-factor chain.

    Requires every factor to be over one letter (fragments RE(a, a?),
    RE(a, a*), RE(a, a+) or mixtures).  Adjacent same-letter factors are
    merged; blocks with ``minimum = 0`` and ``maximum = 0`` cannot occur.
    Blocks that may be entirely absent (min 0) are kept — they matter for
    the language.
    """
    factors = chare_factors(expr)
    if factors is None:
        raise FragmentError(f"not a chain regular expression: {expr}")
    blocks: List[Block] = []
    for factor in factors:
        if len(factor.labels) != 1:
            raise FragmentError(
                f"factor {factor} uses a disjunction; block form needs "
                "single-letter factors"
            )
        low, high = _factor_bounds(factor)
        letter = factor.labels[0]
        if blocks and blocks[-1].letter == letter:
            prev = blocks[-1]
            new_max = (
                None
                if prev.maximum is None or high is None
                else prev.maximum + high
            )
            blocks[-1] = Block(letter, prev.minimum + low, new_max)
        else:
            blocks.append(Block(letter, low, high))
    return blocks


def canonical_block_form(expr: Regex) -> Tuple[Block, ...]:
    """Block form with empty-capable zero blocks normalized.

    A block ``(x, 0, 0)`` never arises; a block ``(x, 0, max)`` is kept.
    Adjacent same-letter blocks cannot remain after :func:`block_form`,
    so the tuple is canonical: two expressions of RE(a, a?) (or of
    RE(a, a*)) are equivalent iff their canonical block forms are equal,
    which is the polynomial equivalence test of Martens, Neven &
    Schwentick mentioned after Theorem 4.4.
    """
    return tuple(block_form(expr))


# ---------------------------------------------------------------------------
# RE(a, a+): containment and intersection in PTIME
# ---------------------------------------------------------------------------


def _require_fragment(expr: Regex, types: Sequence[str], name: str) -> None:
    if not in_fragment(expr, types):
        raise FragmentError(f"{expr} is not in {name}")


def containment_a_aplus(e1: Regex, e2: Regex) -> bool:
    """``L(e1) ⊆ L(e2)`` for e1, e2 ∈ RE(a, a+) — Theorem 4.4(a), PTIME.

    Blocks must match letter-for-letter;  "exactly m" fits in
    "exactly m'" iff m = m', in "at least m'" iff m ≥ m';  "at least m"
    only fits in "at least m'" with m ≥ m'.
    """
    _require_fragment(e1, ("a", "a+"), "RE(a, a+)")
    _require_fragment(e2, ("a", "a+"), "RE(a, a+)")
    blocks1 = block_form(e1)
    blocks2 = block_form(e2)
    if len(blocks1) != len(blocks2):
        return False
    for b1, b2 in zip(blocks1, blocks2):
        if b1.letter != b2.letter:
            return False
        if b2.unbounded:
            if b1.minimum < b2.minimum:
                return False
        else:
            if b1.unbounded or b1.minimum != b2.minimum:
                return False
            # both exact: in RE(a, a+) maximum == minimum when bounded
    return True


def intersection_a_aplus(expressions: Sequence[Regex]) -> bool:
    """Non-emptiness of the intersection for RE(a, a+) — Theorem 4.5(a).

    All expressions must share the same block letter sequence; per block
    the constraints ``= m`` / ``≥ m`` must admit a common count.
    """
    if not expressions:
        raise ValueError("need at least one expression")
    forms = []
    for expr in expressions:
        _require_fragment(expr, ("a", "a+"), "RE(a, a+)")
        forms.append(block_form(expr))
    first = forms[0]
    for form in forms[1:]:
        if len(form) != len(first):
            return False
        if any(b.letter != c.letter for b, c in zip(form, first)):
            return False
    for position in range(len(first)):
        exact = None
        lower = 0
        for form in forms:
            block = form[position]
            if block.unbounded:
                lower = max(lower, block.minimum)
            else:
                if exact is not None and exact != block.minimum:
                    return False
                exact = block.minimum
        if exact is not None and exact < lower:
            return False
    return True


# ---------------------------------------------------------------------------
# RE(a, (+a)): fixed-length languages
# ---------------------------------------------------------------------------


def _letter_sets(expr: Regex) -> List[frozenset]:
    factors = chare_factors(expr)
    assert factors is not None
    return [frozenset(factor.labels) for factor in factors]


def containment_a_disj(e1: Regex, e2: Regex) -> bool:
    """``L(e1) ⊆ L(e2)`` for RE(a, (+a)) — Theorem 4.4(b), PTIME.

    Both languages are products of letter sets; containment is pointwise
    inclusion (lengths must agree).
    """
    _require_fragment(e1, ("a", "(+a)"), "RE(a, (+a))")
    _require_fragment(e2, ("a", "(+a)"), "RE(a, (+a))")
    sets1, sets2 = _letter_sets(e1), _letter_sets(e2)
    if len(sets1) != len(sets2):
        return False
    return all(s1 <= s2 for s1, s2 in zip(sets1, sets2))


def intersection_a_disj(expressions: Sequence[Regex]) -> bool:
    """Intersection non-emptiness for RE(a, (+a)) — Theorem 4.5(b)."""
    if not expressions:
        raise ValueError("need at least one expression")
    sets = []
    for expr in expressions:
        _require_fragment(expr, ("a", "(+a)"), "RE(a, (+a))")
        sets.append(_letter_sets(expr))
    length = len(sets[0])
    if any(len(s) != length for s in sets):
        return False
    for position in range(length):
        common = frozenset.intersection(*[s[position] for s in sets])
        if not common:
            return False
    return True


# ---------------------------------------------------------------------------
# RE(a, a*) and RE(a, a?): polynomial equivalence
# ---------------------------------------------------------------------------


def equivalent_blocks(e1: Regex, e2: Regex) -> bool:
    """Equivalence for RE(a, a*) or RE(a, a?) (also mixtures with a+).

    Equivalence of chain expressions with single-letter factors reduces to
    equality of canonical block forms.  This is the PTIME equivalence
    result highlighted after Theorem 4.4 — notable because *containment*
    for the same fragments is coNP-complete.
    """
    return canonical_block_form(e1) == canonical_block_form(e2)


# ---------------------------------------------------------------------------
# Downward-closed chains: greedy containment (Abdulla et al.)
# ---------------------------------------------------------------------------


def is_downward_closed_chain(expr: Regex) -> bool:
    """Whether ``expr`` is a chain whose factors are all optional/starred
    (hence its language is closed under subsequences)."""
    factors = chare_factors(expr)
    if factors is None:
        return False
    return all(f.modifier in ("?", "*") for f in factors)


def greedy_chain_dfa(expr: Regex) -> DFA:
    """Linear-size DFA for a downward-closed chain.

    States are "next factor index to try" (0..n), plus a sink.  On letter
    ``x`` from state ``i``, move to the first factor ``j ≥ i`` whose label
    set contains ``x``; stay at ``j`` when it is starred, advance to
    ``j + 1`` otherwise.  Greedy matching is optimal for downward-closed
    chains: matching ``x`` as early as possible only leaves more factors
    available for the remaining suffix.
    Every state is accepting (the language is subsequence-closed and
    contains ε); the sink is the only rejecting state.
    """
    factors = chare_factors(expr)
    if factors is None or not is_downward_closed_chain(expr):
        raise FragmentError(f"{expr} is not a downward-closed chain")
    alphabet = set()
    for factor in factors:
        alphabet.update(factor.labels)
    n = len(factors)
    sink = n + 1
    transitions: List[dict] = [{} for _ in range(n + 2)]
    for state in range(n + 1):
        for letter in alphabet:
            target = sink
            for j in range(state, n):
                if letter in factors[j].labels:
                    target = j if factors[j].modifier == "*" else j + 1
                    break
            transitions[state][letter] = target
    for letter in alphabet:
        transitions[sink][letter] = sink
    finals = set(range(n + 1))
    return DFA(n + 2, 0, finals, transitions, alphabet)


def containment_in_downward_closed(e1: Regex, e2: Regex) -> bool:
    """``L(e1) ⊆ L(e2)`` where ``e2`` is a downward-closed chain — PTIME.

    The left side may be an arbitrary regular expression.  Implements the
    greedy strategy of Abdulla et al. cited after Theorem 4.4: product of
    the Glushkov automaton of ``e1`` with the linear greedy DFA of ``e2``.
    """
    dfa = greedy_chain_dfa(e2)
    nfa = glushkov(e1)
    extra = nfa.alphabet - dfa.alphabet
    # letters unknown to e2 go straight to the sink
    sink = dfa.num_states - 1
    start = (frozenset(nfa.epsilon_closure(nfa.initial)), dfa.initial)
    if (start[0] & nfa.finals) and dfa.initial not in dfa.finals:
        return False
    seen = {start}
    stack = [start]
    while stack:
        lstates, dstate = stack.pop()
        labels = set()
        for state in lstates:
            labels.update(lbl for lbl in nfa.transitions[state] if lbl)
        for label in labels:
            lnext = nfa.step(lstates, label)
            if not lnext:
                continue
            if label in extra:
                dnext = sink
            else:
                dnext = dfa.transitions[dstate][label]
            pair = (lnext, dnext)
            if pair in seen:
                continue
            if (lnext & nfa.finals) and dnext not in dfa.finals:
                return False
            seen.add(pair)
            stack.append(pair)
    return True


# ---------------------------------------------------------------------------
# Dispatch helpers used by the benchmarks
# ---------------------------------------------------------------------------


def best_containment(e1: Regex, e2: Regex) -> bool:
    """Containment using the cheapest applicable specialized algorithm,
    falling back to the general automata construction."""
    from .ops import is_contained

    if in_fragment(e1, ("a", "a+")) and in_fragment(e2, ("a", "a+")):
        return containment_a_aplus(e1, e2)
    if in_fragment(e1, ("a", "(+a)")) and in_fragment(e2, ("a", "(+a)")):
        return containment_a_disj(e1, e2)
    if is_downward_closed_chain(e2):
        return containment_in_downward_closed(e1, e2)
    return is_contained(e1, e2)


def best_intersection(expressions: Sequence[Regex]) -> bool:
    """Intersection non-emptiness via the cheapest applicable algorithm."""
    from .ops import intersection_nonempty

    if all(in_fragment(e, ("a", "a+")) for e in expressions):
        return intersection_a_aplus(expressions)
    if all(in_fragment(e, ("a", "(+a)")) for e in expressions):
        return intersection_a_disj(expressions)
    return intersection_nonempty(list(expressions))
