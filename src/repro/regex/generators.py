"""Random regular-expression generators, calibrated to the fragment mix
observed in practical schema studies.

Bex et al. found that over 92% of content-model expressions in real DTDs
are chain regular expressions and over 99% are single-occurrence
expressions (Sections 4.2.2–4.2.3).  The generators here produce
expressions with a configurable mix so the classification, containment
and inference machinery can be exercised on realistic corpora — this is
the substitution for the (unavailable) crawled schema corpora, see
DESIGN.md §2.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import List, Optional as Opt, Sequence

from .ast import (
    Concat,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

_MODIFIER_NAMES = ("", "?", "*", "+")


def _apply_modifier(expr: Regex, modifier: str) -> Regex:
    if modifier == "?":
        return Optional(expr)
    if modifier == "*":
        return Star(expr)
    if modifier == "+":
        return Plus(expr)
    return expr


@dataclass
class ChareProfile:
    """Distribution parameters for random chain regular expressions.

    Defaults approximate the factor statistics reported for real DTD
    content models: short chains, mostly plain single-symbol factors, a
    sprinkle of ``?``/``*``/``+`` and small disjunctions.
    """

    min_factors: int = 1
    max_factors: int = 6
    disjunction_probability: float = 0.15
    max_disjuncts: int = 4
    modifier_weights: Sequence[float] = (0.55, 0.2, 0.15, 0.1)  # '', ?, *, +
    single_occurrence: bool = True


def random_chare(
    alphabet: Sequence[str],
    rng: Opt[random.Random] = None,
    profile: Opt[ChareProfile] = None,
) -> Regex:
    """A random chain regular expression over ``alphabet``.

    With ``profile.single_occurrence`` (default) the result is a SORE:
    labels are drawn without replacement, mirroring the 99%-SORE finding.
    """
    rng = rng or random.Random()
    profile = profile or ChareProfile()
    num_factors = rng.randint(profile.min_factors, profile.max_factors)
    pool = list(alphabet)
    if profile.single_occurrence:
        rng.shuffle(pool)
    factors: List[Regex] = []
    for _ in range(num_factors):
        if not pool:
            break
        if rng.random() < profile.disjunction_probability and (
            len(pool) >= 2 or not profile.single_occurrence
        ):
            size = rng.randint(2, min(profile.max_disjuncts, max(2, len(pool))))
            if profile.single_occurrence:
                labels = [pool.pop() for _ in range(min(size, len(pool)))]
                if len(labels) < 2 and pool:
                    labels.append(pool.pop())
            else:
                labels = rng.sample(list(alphabet), size)
            if len(labels) < 2:
                base: Regex = Symbol(labels[0])
            else:
                base = Union(tuple(Symbol(label) for label in labels))
        else:
            if profile.single_occurrence:
                label = pool.pop()
            else:
                label = rng.choice(list(alphabet))
            base = Symbol(label)
        modifier = rng.choices(
            _MODIFIER_NAMES, weights=profile.modifier_weights
        )[0]
        factors.append(_apply_modifier(base, modifier))
    if not factors:
        factors = [Symbol(rng.choice(list(alphabet)))]
    if len(factors) == 1:
        return factors[0]
    return Concat(tuple(factors))


def random_regex(
    alphabet: Sequence[str],
    depth: int = 3,
    rng: Opt[random.Random] = None,
) -> Regex:
    """A random *unrestricted* regular expression (for adversarial tests).

    Uniformly mixes concatenation, union and the unary operators up to
    the given nesting ``depth``; leaves are random symbols.
    """
    rng = rng or random.Random()
    if depth <= 0:
        return Symbol(rng.choice(list(alphabet)))
    kind = rng.random()
    if kind < 0.3:
        return Symbol(rng.choice(list(alphabet)))
    if kind < 0.55:
        width = rng.randint(2, 3)
        return Concat(
            tuple(random_regex(alphabet, depth - 1, rng) for _ in range(width))
        )
    if kind < 0.75:
        width = rng.randint(2, 3)
        return Union(
            tuple(random_regex(alphabet, depth - 1, rng) for _ in range(width))
        )
    inner = random_regex(alphabet, depth - 1, rng)
    op = rng.random()
    if op < 0.4:
        return Star(inner)
    if op < 0.7:
        return Optional(inner)
    return Plus(inner)


def default_alphabet(size: int) -> List[str]:
    """``['a', 'b', …]`` (wrapping to ``a1, a2, …`` beyond 26 letters)."""
    letters = list(string.ascii_lowercase)
    if size <= len(letters):
        return letters[:size]
    return letters + [f"a{i}" for i in range(size - len(letters))]
