"""Decision problems on regular expressions: containment, equivalence,
intersection non-emptiness.

These are the general, worst-case-PSPACE automata-theoretic algorithms that
the paper's Theorems 4.4–4.6 compare against.  The fragment-specific
polynomial algorithms live in :mod:`repro.regex.chare`; the benchmark
``bench_regex_decisions`` contrasts the two.

Containment L(e1) ⊆ L(e2) is decided by an on-the-fly product of the
Glushkov NFA of ``e1`` with the lazily-determinized Glushkov NFA of ``e2``:
we search for a word that ``e1`` accepts while the subset-state of ``e2``
is non-accepting.  Only the reachable part of the (worst-case exponential)
subset automaton is built, which is what makes the general algorithm
usable on real-world schema expressions.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional as Opt, Sequence, Tuple

from .ast import Regex
from .automata import NFA, glushkov, product_intersection


def contains(e1: Regex, e2: Regex, witness: bool = False):
    """Decide the R-Containment problem of Section 4.2.2: ``L(e1) ⊆ L(e2)``.

    With ``witness=True`` returns a pair ``(result, counterexample)`` where
    the counterexample is a word in ``L(e1) \\ L(e2)`` (or ``None`` when
    the containment holds).
    """
    left = glushkov(e1)
    right = glushkov(e2)
    result, cex = _containment_search(left, right)
    if witness:
        return result, cex
    return result


def is_contained(e1: Regex, e2: Regex) -> bool:
    """``L(e1) ⊆ L(e2)`` (alias with unambiguous argument order)."""
    left = glushkov(e1)
    right = glushkov(e2)
    result, _cex = _containment_search(left, right)
    return result


def containment_counterexample(e1: Regex, e2: Regex):
    """A word in ``L(e1) \\ L(e2)``, or ``None`` when ``L(e1) ⊆ L(e2)``."""
    left = glushkov(e1)
    right = glushkov(e2)
    _result, cex = _containment_search(left, right)
    return cex


def _containment_search(left: NFA, right: NFA):
    """BFS over (subset-of-left, subset-of-right) pairs looking for a word
    accepted by ``left`` but not by ``right``.

    Returns ``(contained, counterexample)``.
    """
    left_start = left.epsilon_closure(left.initial)
    right_start = right.epsilon_closure(right.initial)
    start = (left_start, right_start)
    if (left_start & left.finals) and not (right_start & right.finals):
        return False, ()
    seen = {start}
    queue = deque([(start, ())])
    while queue:
        (lstates, rstates), prefix = queue.popleft()
        labels = set()
        for state in lstates:
            labels.update(lbl for lbl in left.transitions[state] if lbl)
        for label in sorted(labels):
            lnext = left.step(lstates, label)
            if not lnext:
                continue
            rnext = right.step(rstates, label)
            pair = (lnext, rnext)
            if pair in seen:
                continue
            word = prefix + (label,)
            if (lnext & left.finals) and not (rnext & right.finals):
                return False, word
            seen.add(pair)
            queue.append((pair, word))
    return True, None


def equivalent(e1: Regex, e2: Regex) -> bool:
    """Whether ``L(e1) = L(e2)`` (containment in both directions)."""
    return is_contained(e1, e2) and is_contained(e2, e1)


def intersection_nonempty(
    expressions: Sequence[Regex], witness: bool = False
):
    """The R-Intersection problem: is ``L(e1) ∩ … ∩ L(en)`` non-empty?

    With ``witness=True`` returns ``(result, word)`` where ``word`` is a
    shortest word in the intersection (or ``None``).  Uses the on-the-fly
    product of Glushkov automata; PSPACE-complete in general (Theorem 4.5
    preamble), polynomial for a *fixed* number of expressions.
    """
    if not expressions:
        raise ValueError("need at least one expression")
    automata = [glushkov(e) for e in expressions]
    product = product_intersection(automata)
    word = product.shortest_accepted_word()
    result = word is not None
    if witness:
        return result, word
    return result


def intersection_witness(expressions: Sequence[Regex]):
    """A shortest word in the intersection, or ``None`` when empty."""
    _result, word = intersection_nonempty(expressions, witness=True)
    return word


def accepts(expr: Regex, word: Iterable[str]) -> bool:
    """Membership ``word ∈ L(expr)`` via Glushkov simulation."""
    return glushkov(expr).accepts(word)


def language_is_empty(expr: Regex) -> bool:
    """Whether ``L(expr) = ∅``."""
    return glushkov(expr).is_empty()


def language_is_universal(expr: Regex, alphabet: Opt[set] = None) -> bool:
    """Whether ``L(expr) = Σ*`` for ``alphabet`` Σ (default: the
    expression's own alphabet)."""
    sigma = set(alphabet) if alphabet is not None else set(expr.alphabet())
    dfa = glushkov(expr).determinize(sigma)
    return dfa.complement().is_empty()


def enumerate_words(
    expr: Regex, max_words: int = 100, max_length: Opt[int] = None
) -> List[Tuple[str, ...]]:
    """Enumerate words of ``L(expr)`` in length-lexicographic order.

    Stops after ``max_words`` words or once all words of length
    ``max_length`` have been produced.  Useful in tests and for building
    characteristic samples for the inference algorithms (Definition 4.7).
    """
    nfa = glushkov(expr)
    out: List[Tuple[str, ...]] = []
    start = nfa.epsilon_closure(nfa.initial)
    frontier = [((), start)]
    length = 0
    if start & nfa.finals:
        out.append(())
    while frontier and len(out) < max_words:
        if max_length is not None and length >= max_length:
            break
        length += 1
        nxt_frontier = []
        for prefix, states in frontier:
            labels = set()
            for state in states:
                labels.update(lbl for lbl in nfa.transitions[state] if lbl)
            for label in sorted(labels):
                nxt = nfa.step(states, label)
                if not nxt:
                    continue
                word = prefix + (label,)
                nxt_frontier.append((word, nxt))
                if nxt & nfa.finals:
                    out.append(word)
                    if len(out) >= max_words:
                        return out
        frontier = nxt_frontier
    return out
