"""Determinism (one-unambiguity) of regular expressions.

Two distinct questions from Section 4.2.1 are implemented:

1. *Is this expression deterministic?* — a syntactic property of the
   expression as written, required of DTD content models by the XML
   standard ("deterministic content models") and of XML Schema by the
   Unique Particle Attribution constraint.  Decided in polynomial time via
   the Glushkov automaton: an expression is deterministic iff its Glushkov
   automaton is deterministic (Brüggemann-Klein & Wood 1998).

2. *Does this regular language have SOME deterministic expression?* — a
   semantic property.  Brüggemann-Klein & Wood characterized the definable
   languages via the *orbit property* of the minimal DFA; deciding it for
   a language given by an arbitrary expression is PSPACE-complete
   (Czerwinski et al.; Lu, Bremer & Chen), which our implementation
   reflects by first building the minimal DFA.  The recursive BKW test is
   implemented in :func:`is_deterministic_definable`.

The paper's running examples hold here::

    >>> from repro.regex.parser import parse
    >>> is_deterministic(parse("(a+b)*a"))
    False
    >>> is_deterministic(parse("b*a(b*a)*"))
    True
    >>> is_deterministic_definable(parse("(a+b)*a"))       # equivalent DRE exists
    True
    >>> is_deterministic_definable(parse("(a+b)*a(a+b)"))  # famously not
    False
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from .ast import Regex
from .automata import DFA, glushkov, minimal_dfa


def is_deterministic(expr: Regex) -> bool:
    """Whether ``expr`` is a deterministic (one-unambiguous) expression.

    Equivalent formulation: while reading a word left to right, the symbol
    occurrence of the expression that matches the next input symbol is
    always uniquely determined without lookahead.
    """
    return determinism_violation(expr) is None


def determinism_violation(expr: Regex):
    """Return ``None`` for deterministic expressions, else a diagnostic
    triple ``(state, label, positions)``: from Glushkov state ``state``,
    reading ``label`` may continue to any of the (≥ 2) listed positions.

    One-unambiguity is defined over the *marked language* (BKW), so only
    positions that actually occur in some marked word matter: the Glushkov
    automaton is trimmed to accessible states first, and a choice point
    counts only when at least two of its targets are co-accessible.
    Positions killed by an ``[]`` subexpression, for example, are never a
    violation — no marked word reaches them.
    """
    nfa = glushkov(expr)
    num_states = len(nfa.transitions)

    accessible: Set[int] = set(nfa.initial)
    queue = deque(accessible)
    while queue:
        state = queue.popleft()
        for targets in nfa.transitions[state].values():
            for dst in targets:
                if dst not in accessible:
                    accessible.add(dst)
                    queue.append(dst)

    reverse: List[Set[int]] = [set() for _ in range(num_states)]
    for src in range(num_states):
        for targets in nfa.transitions[src].values():
            for dst in targets:
                reverse[dst].add(src)
    coaccessible: Set[int] = set(nfa.finals)
    queue = deque(coaccessible)
    while queue:
        state = queue.popleft()
        for prev in reverse[state]:
            if prev not in coaccessible:
                coaccessible.add(prev)
                queue.append(prev)

    for state in sorted(accessible):
        for label, targets in nfa.transitions[state].items():
            useful = targets & coaccessible
            if len(useful) > 1:
                return (state, label, tuple(sorted(useful)))
    return None


# ---------------------------------------------------------------------------
# BKW test: is the *language* definable by a deterministic expression?
# ---------------------------------------------------------------------------


def _trim(dfa: DFA) -> DFA:
    """Drop the sink (non-coaccessible states): BKW works on partial DFAs.

    Returns a partial DFA: transitions into states from which no final
    state is reachable are removed entirely.
    """
    # states from which a final state is reachable
    reverse: List[Set[int]] = [set() for _ in range(dfa.num_states)]
    for src in range(dfa.num_states):
        for dst in dfa.transitions[src].values():
            reverse[dst].add(src)
    alive = set(dfa.finals)
    queue = deque(alive)
    while queue:
        state = queue.popleft()
        for prev in reverse[state]:
            if prev not in alive:
                alive.add(prev)
                queue.append(prev)
    keep = sorted(alive | {dfa.initial})
    remap = {old: new for new, old in enumerate(keep)}
    trans = []
    for old in keep:
        row = {
            label: remap[dst]
            for label, dst in dfa.transitions[old].items()
            if dst in alive
        }
        trans.append(row)
    return DFA(
        len(keep),
        remap[dfa.initial],
        {remap[f] for f in dfa.finals if f in remap},
        trans,
        set(dfa.alphabet),
    )


def _orbits(trans: List[Dict[str, int]], states: Set[int]):
    """Strongly connected components (Tarjan, iterative) of the transition
    graph restricted to ``states``.  Returns a map state -> orbit id and
    the list of orbits (as sets)."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    orbits: List[Set[int]] = []
    orbit_of: Dict[int, int] = {}
    counter = [0]

    for root in states:
        if root in index_of:
            continue
        work: List[Tuple[int, iter]] = [
            (root, iter(sorted(set(trans[root].values()) & states)))
        ]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append(
                        (nxt, iter(sorted(set(trans[nxt].values()) & states)))
                    )
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                orbit: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    orbit.add(member)
                    if member == node:
                        break
                orbit_id = len(orbits)
                orbits.append(orbit)
                for member in orbit:
                    orbit_of[member] = orbit_id
    return orbit_of, orbits


def _gates(
    trans: List[Dict[str, int]], finals: Set[int], orbit: Set[int]
) -> Set[int]:
    """Gates of an orbit: members that are final or have an out-of-orbit
    transition."""
    gates = set()
    for state in orbit:
        if state in finals:
            gates.add(state)
            continue
        for dst in trans[state].values():
            if dst not in orbit:
                gates.add(state)
                break
    return gates


def _has_orbit_property(
    trans: List[Dict[str, int]], finals: Set[int], orbits: List[Set[int]]
) -> bool:
    """All gates of each orbit agree on finality and out-of-orbit moves."""
    for orbit in orbits:
        gates = sorted(_gates(trans, finals, orbit))
        if len(gates) <= 1:
            continue
        reference = gates[0]
        ref_final = reference in finals
        ref_out = {
            label: dst
            for label, dst in trans[reference].items()
            if dst not in orbit
        }
        for gate in gates[1:]:
            if (gate in finals) != ref_final:
                return False
            out = {
                label: dst
                for label, dst in trans[gate].items()
                if dst not in orbit
            }
            if out != ref_out:
                return False
    return True


def _consistent_symbols(
    trans: List[Dict[str, int]], finals: Set[int], alphabet: Set[str]
) -> Dict[str, int]:
    """Symbols ``a`` that are M-consistent: every final state has an
    ``a``-transition and all these transitions share one target ``f(a)``."""
    consistent: Dict[str, int] = {}
    if not finals:
        return consistent
    for label in alphabet:
        targets = set()
        ok = True
        for state in finals:
            dst = trans[state].get(label)
            if dst is None:
                ok = False
                break
            targets.add(dst)
        if ok and len(targets) == 1:
            consistent[label] = next(iter(targets))
    return consistent


def _minimize_partial(
    trans: List[Dict[str, int]], finals: Set[int], alphabet: Set[str]
):
    """Behaviour-merge a partial DFA (ignoring the initial state, which is
    irrelevant inside a strongly connected orbit): complete with a sink,
    run Hopcroft, and strip the sink again.

    Returns ``(trans, finals)`` of the merged partial automaton.
    """
    n = len(trans)
    sink = n
    complete = []
    for row in trans:
        complete.append(
            {label: row.get(label, sink) for label in alphabet}
        )
    complete.append({label: sink for label in alphabet})
    # Moore partition refinement (initial state is irrelevant here: inside
    # an orbit every state is reachable from every other).
    partition_id = {q: (1 if q in finals else 0) for q in range(n + 1)}
    while True:
        signature = {}
        for q in range(n + 1):
            signature[q] = (
                partition_id[q],
                tuple(
                    partition_id[complete[q][label]]
                    for label in sorted(alphabet)
                ),
            )
        fresh: Dict[tuple, int] = {}
        new_id = {}
        for q in range(n + 1):
            sig = signature[q]
            if sig not in fresh:
                fresh[sig] = len(fresh)
            new_id[q] = fresh[sig]
        if new_id == partition_id:
            break
        partition_id = new_id
    # rebuild partial automaton over blocks, dropping the sink's block
    # (a block is "sink-like" iff no final is reachable from it)
    block_states: Dict[int, List[int]] = {}
    for q in range(n + 1):
        block_states.setdefault(partition_id[q], []).append(q)
    sink_block = partition_id[sink]
    blocks = sorted(b for b in block_states if b != sink_block)
    remap = {b: i for i, b in enumerate(blocks)}
    new_trans: List[Dict[str, int]] = []
    new_finals: Set[int] = set()
    for b in blocks:
        representative = block_states[b][0]
        row = {}
        for label in alphabet:
            dst_block = partition_id[complete[representative][label]]
            if dst_block != sink_block:
                row[label] = remap[dst_block]
        new_trans.append(row)
        if representative in finals:
            new_finals.add(remap[b])
    return new_trans, new_finals


def _count_transitions(trans: List[Dict[str, int]]) -> int:
    return sum(len(row) for row in trans)


def _bkw(
    trans: List[Dict[str, int]],
    finals: Set[int],
    alphabet: Set[str],
    depth: int,
) -> bool:
    """The recursive BKW decision procedure on a (behaviour-minimal,
    partial) DFA.

    Follows Brüggemann-Klein & Wood, "One-Unambiguous Regular Languages":
    cut the maximal set of M-consistent symbols (maximality is optimal by
    their consistency lemma), check the orbit property of the cut, and
    recurse into the (re-minimized) orbit automata with gates as final
    states.  Progress is guaranteed because each cut strictly removes
    transitions and each orbit restriction strictly shrinks a multi-orbit
    automaton; when neither step makes progress on a non-trivial automaton
    the language is not one-unambiguous.
    """
    if depth > 500:  # structural recursion always terminates; safety net
        raise RecursionError("BKW recursion too deep")
    if not any(row for row in trans):
        return True  # finite/trivial: any acyclic minimal DFA is definable
        # here only the no-transitions base case arrives.

    consistent = _consistent_symbols(trans, finals, alphabet)
    cut = [
        {
            label: dst
            for label, dst in row.items()
            if not (src in finals and label in consistent)
        }
        for src, row in enumerate(trans)
    ]
    made_cut = _count_transitions(cut) < _count_transitions(trans)

    states = set(range(len(cut)))
    _orbit_of, orbits = _orbits(cut, states)

    nontrivial = [
        orbit
        for orbit in orbits
        if len(orbit) > 1
        or any(
            dst in orbit for dst in cut[next(iter(orbit))].values()
        )
    ]

    if not made_cut and len(nontrivial) == 1 and len(
        nontrivial[0]
    ) == len(states):
        # single nontrivial orbit covering everything, nothing cuttable:
        # the recursion cannot make progress; by BKW this language is not
        # one-unambiguous.
        return False

    if not _has_orbit_property(cut, finals, orbits):
        return False

    for orbit in nontrivial:
        members = sorted(orbit)
        remap = {old: new for new, old in enumerate(members)}
        sub_trans = [
            {
                label: remap[dst]
                for label, dst in cut[old].items()
                if dst in orbit
            }
            for old in members
        ]
        sub_finals = {remap[g] for g in _gates(cut, finals, orbit)}
        sub_alphabet = {label for row in sub_trans for label in row}
        if not sub_finals:
            # an orbit with no gate can never occur in a trim automaton
            continue
        sub_trans, sub_finals = _minimize_partial(
            sub_trans, sub_finals, sub_alphabet
        )
        if not _bkw(sub_trans, sub_finals, sub_alphabet, depth + 1):
            return False
    return True


def is_deterministic_definable(expr: Regex) -> bool:
    """Whether ``L(expr)`` is definable by SOME deterministic expression.

    Implements the Brüggemann-Klein–Wood decision procedure on the minimal
    DFA.  The overall problem is PSPACE-complete in the size of ``expr``
    (the blow-up is in the determinization step); the BKW test itself is
    polynomial in the minimal DFA.
    """
    dfa = _trim(minimal_dfa(expr))
    if not dfa.finals:
        return True  # the empty language is defined by the DRE '[]'
    return _bkw(dfa.transitions, set(dfa.finals), set(dfa.alphabet), 0)
