"""Finite automata: Glushkov construction, subset construction, products,
minimization, and the basic language algorithms.

Everything downstream (containment, determinism, the BKW test, RPQ
evaluation) sits on this module.  Two constructions are provided:

* :func:`glushkov` builds the *position automaton* of an expression.  It is
  epsilon-free, has exactly ``#positions + 1`` states, and is the canonical
  tool for deciding *determinism* of expressions: an expression is
  deterministic (one-unambiguous) iff its Glushkov automaton is
  deterministic (Brüggemann-Klein & Wood).
* :func:`thompson` builds the classical epsilon-NFA; it is linear-size and
  used where construction speed matters more than structure (sampling,
  membership on huge expressions).

States are plain integers.  Alphabets are sets of label strings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional as Opt, Set, Tuple

from .ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

EPS = ""  # epsilon transition label inside NFAs (labels are never empty)


@dataclass
class NFA:
    """A nondeterministic finite automaton.

    Attributes
    ----------
    num_states:
        States are ``0 .. num_states - 1``.
    initial:
        Set of initial states.
    finals:
        Set of accepting states.
    transitions:
        ``transitions[q]`` maps a label (or :data:`EPS`) to a set of
        successor states.
    alphabet:
        The labels this automaton may read (epsilon excluded).
    """

    num_states: int
    initial: Set[int]
    finals: Set[int]
    transitions: List[Dict[str, Set[int]]]
    alphabet: Set[str] = field(default_factory=set)

    def __post_init__(self):
        if not self.alphabet:
            for trans in self.transitions:
                for label in trans:
                    if label != EPS:
                        self.alphabet.add(label)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def empty_language(cls) -> "NFA":
        return cls(1, {0}, set(), [{}])

    @classmethod
    def epsilon_language(cls) -> "NFA":
        return cls(1, {0}, {0}, [{}])

    def add_state(self) -> int:
        self.transitions.append({})
        self.num_states += 1
        return self.num_states - 1

    def add_transition(self, src: int, label: str, dst: int) -> None:
        self.transitions[src].setdefault(label, set()).add(dst)
        if label != EPS:
            self.alphabet.add(label)

    # -- core algorithms --------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon transitions."""
        seen = set(states)
        stack = list(seen)
        while stack:
            state = stack.pop()
            for nxt in self.transitions[state].get(EPS, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def step(self, states: Iterable[int], label: str) -> FrozenSet[int]:
        """One label step followed by epsilon closure."""
        direct = set()
        for state in states:
            direct.update(self.transitions[state].get(label, ()))
        return self.epsilon_closure(direct)

    def accepts(self, word: Iterable[str]) -> bool:
        """Membership test by on-the-fly subset simulation."""
        current = self.epsilon_closure(self.initial)
        for label in word:
            current = self.step(current, label)
            if not current:
                return False
        return bool(current & self.finals)

    def is_empty(self) -> bool:
        """Whether the accepted language is empty (no final state reachable)."""
        seen = set(self.initial)
        queue = deque(seen)
        while queue:
            state = queue.popleft()
            if state in self.finals:
                return False
            for targets in self.transitions[state].values():
                for nxt in targets:
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
        return True

    def shortest_accepted_word(self) -> Opt[Tuple[str, ...]]:
        """A shortest accepted word, or None if the language is empty.

        BFS over subset states, tracking one witness label per step.
        """
        start = self.epsilon_closure(self.initial)
        if start & self.finals:
            return ()
        seen = {start}
        queue: deque = deque([(start, ())])
        while queue:
            states, prefix = queue.popleft()
            labels = set()
            for state in states:
                labels.update(
                    lbl for lbl in self.transitions[state] if lbl != EPS
                )
            for label in sorted(labels):
                nxt = self.step(states, label)
                if not nxt or nxt in seen:
                    continue
                word = prefix + (label,)
                if nxt & self.finals:
                    return word
                seen.add(nxt)
                queue.append((nxt, word))
        return None

    def reverse(self) -> "NFA":
        """The automaton for the reversed language."""
        rev = NFA(
            self.num_states,
            set(self.finals),
            set(self.initial),
            [{} for _ in range(self.num_states)],
            set(self.alphabet),
        )
        for src, trans in enumerate(self.transitions):
            for label, targets in trans.items():
                for dst in targets:
                    rev.transitions[dst].setdefault(label, set()).add(src)
        return rev

    def determinize(self, alphabet: Opt[Set[str]] = None) -> "DFA":
        """Subset construction producing a *complete* DFA.

        The DFA is complete over ``alphabet`` (defaults to the NFA's own);
        completeness is what makes complementation a final-set flip.
        """
        sigma = sorted(alphabet if alphabet is not None else self.alphabet)
        start = self.epsilon_closure(self.initial)
        index: Dict[FrozenSet[int], int] = {start: 0}
        table: List[Dict[str, int]] = [{}]
        finals: Set[int] = set()
        if start & self.finals:
            finals.add(0)
        queue = deque([start])
        while queue:
            states = queue.popleft()
            src = index[states]
            for label in sigma:
                nxt = self.step(states, label)
                if nxt not in index:
                    index[nxt] = len(table)
                    table.append({})
                    if nxt & self.finals:
                        finals.add(index[nxt])
                    queue.append(nxt)
                table[src][label] = index[nxt]
        return DFA(len(table), 0, finals, table, set(sigma))


@dataclass
class DFA:
    """A complete deterministic finite automaton.

    ``transitions[q][label]`` is the unique successor; every state has a
    transition for every letter of :attr:`alphabet` (a sink state plays the
    role of "undefined").
    """

    num_states: int
    initial: int
    finals: Set[int]
    transitions: List[Dict[str, int]]
    alphabet: Set[str]

    def accepts(self, word: Iterable[str]) -> bool:
        state = self.initial
        for label in word:
            nxt = self.transitions[state].get(label)
            if nxt is None:
                return False
            state = nxt
        return state in self.finals

    def complement(self) -> "DFA":
        """The DFA for the complement language (same alphabet)."""
        return DFA(
            self.num_states,
            self.initial,
            set(range(self.num_states)) - self.finals,
            [dict(trans) for trans in self.transitions],
            set(self.alphabet),
        )

    def reachable_states(self) -> Set[int]:
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            for nxt in self.transitions[state].values():
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def is_empty(self) -> bool:
        return not (self.reachable_states() & self.finals)

    def minimize(self) -> "DFA":
        """Hopcroft's partition-refinement minimization.

        The result is complete, trimmed to reachable states, and canonical
        up to state numbering (states are renumbered in BFS order from the
        initial state, so two equivalent DFAs minimize to *identical*
        structures — used by the equivalence and BKW tests).
        """
        reachable = sorted(self.reachable_states())
        remap = {old: new for new, old in enumerate(reachable)}
        n = len(reachable)
        finals = {remap[q] for q in self.finals if q in remap}
        trans = [
            {lbl: remap[dst] for lbl, dst in self.transitions[old].items()}
            for old in reachable
        ]
        sigma = sorted(self.alphabet)

        # inverse transition table for Hopcroft
        inverse: Dict[str, List[Set[int]]] = {
            label: [set() for _ in range(n)] for label in sigma
        }
        for src in range(n):
            for label, dst in trans[src].items():
                inverse[label][dst].add(src)

        non_finals = set(range(n)) - finals
        partition: List[Set[int]] = [s for s in (finals, non_finals) if s]
        worklist: List[Set[int]] = [min(partition, key=len)] if len(
            partition
        ) == 2 else list(partition)

        while worklist:
            splitter = worklist.pop()
            for label in sigma:
                predecessors = set()
                for state in splitter:
                    predecessors |= inverse[label][state]
                if not predecessors:
                    continue
                new_partition: List[Set[int]] = []
                for block in partition:
                    inter = block & predecessors
                    diff = block - predecessors
                    if inter and diff:
                        new_partition.append(inter)
                        new_partition.append(diff)
                        if block in worklist:
                            worklist.remove(block)
                            worklist.append(inter)
                            worklist.append(diff)
                        else:
                            worklist.append(min(inter, diff, key=len))
                    else:
                        new_partition.append(block)
                partition = new_partition

        block_of = {}
        for idx, block in enumerate(partition):
            for state in block:
                block_of[state] = idx

        # renumber blocks in BFS order from the initial block for canonicity
        start_block = block_of[remap[self.initial]]
        order = {start_block: 0}
        queue = deque([start_block])
        block_trans: Dict[int, Dict[str, int]] = {}
        while queue:
            blk = queue.popleft()
            representative = next(iter(partition[blk]))
            row = {}
            for label in sigma:
                dst_block = block_of[trans[representative][label]]
                row[label] = dst_block
                if dst_block not in order:
                    order[dst_block] = len(order)
                    queue.append(dst_block)
            block_trans[blk] = row

        m = len(order)
        new_trans: List[Dict[str, int]] = [{} for _ in range(m)]
        new_finals: Set[int] = set()
        for blk, new_id in order.items():
            new_trans[new_id] = {
                label: order[dst] for label, dst in block_trans[blk].items()
            }
            representative = next(iter(partition[blk]))
            if representative in finals:
                new_finals.add(new_id)
        return DFA(m, 0, new_finals, new_trans, set(sigma))

    def to_nfa(self) -> NFA:
        nfa = NFA(
            self.num_states,
            {self.initial},
            set(self.finals),
            [
                {label: {dst} for label, dst in trans.items()}
                for trans in self.transitions
            ],
            set(self.alphabet),
        )
        return nfa

    def isomorphic_to(self, other: "DFA") -> bool:
        """Structural equality for canonically-minimized DFAs."""
        if (
            self.num_states != other.num_states
            or self.alphabet != other.alphabet
            or self.finals != other.finals
            or self.initial != other.initial
        ):
            return False
        return self.transitions == other.transitions


# ---------------------------------------------------------------------------
# Glushkov (position) automaton
# ---------------------------------------------------------------------------


@dataclass
class _PositionSets:
    nullable: bool
    first: Set[int]
    last: Set[int]
    follow: Dict[int, Set[int]]


def _positions(expr: Regex, counter: List[int], labels: Dict[int, str]):
    """Linearize: assign a unique position to every Symbol occurrence and
    compute (nullable, first, last, follow) bottom-up."""
    if isinstance(expr, Empty):
        return _PositionSets(False, set(), set(), {})
    if isinstance(expr, Epsilon):
        return _PositionSets(True, set(), set(), {})
    if isinstance(expr, Symbol):
        pos = counter[0]
        counter[0] += 1
        labels[pos] = expr.label
        return _PositionSets(False, {pos}, {pos}, {pos: set()})
    if isinstance(expr, Concat):
        parts = [_positions(p, counter, labels) for p in expr.parts]
        follow: Dict[int, Set[int]] = {}
        for part in parts:
            for pos, targets in part.follow.items():
                follow.setdefault(pos, set()).update(targets)
        # chain pending last positions -> first(next part); nullable parts
        # are "transparent", so pending positions accumulate across them
        pending: Set[int] = set(parts[0].last)
        for right in parts[1:]:
            for pos in pending:
                follow.setdefault(pos, set()).update(right.first)
            if right.nullable:
                pending |= right.last
            else:
                pending = set(right.last)
        nullable = all(p.nullable for p in parts)
        first: Set[int] = set()
        for part in parts:
            first |= part.first
            if not part.nullable:
                break
        last: Set[int] = set()
        for part in reversed(parts):
            last |= part.last
            if not part.nullable:
                break
        return _PositionSets(nullable, first, last, follow)
    if isinstance(expr, Union):
        parts = [_positions(p, counter, labels) for p in expr.parts]
        follow = {}
        first = set()
        last = set()
        for part in parts:
            for pos, targets in part.follow.items():
                follow.setdefault(pos, set()).update(targets)
            first |= part.first
            last |= part.last
        nullable = any(p.nullable for p in parts)
        return _PositionSets(nullable, first, last, follow)
    if isinstance(expr, (Star, Plus)):
        inner = _positions(expr.child, counter, labels)
        follow = {pos: set(t) for pos, t in inner.follow.items()}
        for pos in inner.last:
            follow.setdefault(pos, set()).update(inner.first)
        nullable = True if isinstance(expr, Star) else inner.nullable
        return _PositionSets(nullable, set(inner.first), set(inner.last), follow)
    if isinstance(expr, Optional):
        inner = _positions(expr.child, counter, labels)
        return _PositionSets(True, inner.first, inner.last, inner.follow)
    raise TypeError(f"unknown node {expr!r}")


def glushkov(expr: Regex) -> NFA:
    """The Glushkov position automaton of ``expr``.

    State 0 is the (only) initial state; state ``i + 1`` corresponds to
    position ``i`` of the linearized expression.  The automaton has no
    epsilon transitions, and every transition into state ``i + 1`` carries
    the label of position ``i`` — the property underlying the determinism
    test in :mod:`repro.regex.determinism`.
    """
    counter = [0]
    labels: Dict[int, str] = {}
    sets = _positions(expr, counter, labels)
    num_positions = counter[0]
    nfa = NFA(
        num_positions + 1,
        {0},
        set(),
        [{} for _ in range(num_positions + 1)],
        set(labels.values()),
    )
    for pos in sets.first:
        nfa.add_transition(0, labels[pos], pos + 1)
    for pos, targets in sets.follow.items():
        for target in targets:
            nfa.add_transition(pos + 1, labels[target], target + 1)
    nfa.finals = {pos + 1 for pos in sets.last}
    if sets.nullable:
        nfa.finals.add(0)
    return nfa


def glushkov_position_labels(expr: Regex) -> Dict[int, str]:
    """Map Glushkov state ``pos + 1`` back to its symbol label (for the
    determinism diagnostics)."""
    counter = [0]
    labels: Dict[int, str] = {}
    _positions(expr, counter, labels)
    return {pos + 1: label for pos, label in labels.items()}


# ---------------------------------------------------------------------------
# Thompson construction
# ---------------------------------------------------------------------------


def thompson(expr: Regex) -> NFA:
    """The classical Thompson epsilon-NFA (one initial, one final state)."""
    nfa = NFA(0, set(), set(), [], set())

    def build(node: Regex) -> Tuple[int, int]:
        if isinstance(node, Empty):
            start, end = nfa.add_state(), nfa.add_state()
            return start, end
        if isinstance(node, Epsilon):
            start, end = nfa.add_state(), nfa.add_state()
            nfa.add_transition(start, EPS, end)
            return start, end
        if isinstance(node, Symbol):
            start, end = nfa.add_state(), nfa.add_state()
            nfa.add_transition(start, node.label, end)
            return start, end
        if isinstance(node, Concat):
            first_start, prev_end = build(node.parts[0])
            for part in node.parts[1:]:
                nxt_start, nxt_end = build(part)
                nfa.add_transition(prev_end, EPS, nxt_start)
                prev_end = nxt_end
            return first_start, prev_end
        if isinstance(node, Union):
            start, end = nfa.add_state(), nfa.add_state()
            for part in node.parts:
                sub_start, sub_end = build(part)
                nfa.add_transition(start, EPS, sub_start)
                nfa.add_transition(sub_end, EPS, end)
            return start, end
        if isinstance(node, Star):
            start, end = nfa.add_state(), nfa.add_state()
            sub_start, sub_end = build(node.child)
            nfa.add_transition(start, EPS, sub_start)
            nfa.add_transition(start, EPS, end)
            nfa.add_transition(sub_end, EPS, sub_start)
            nfa.add_transition(sub_end, EPS, end)
            return start, end
        if isinstance(node, Plus):
            start, end = nfa.add_state(), nfa.add_state()
            sub_start, sub_end = build(node.child)
            nfa.add_transition(start, EPS, sub_start)
            nfa.add_transition(sub_end, EPS, sub_start)
            nfa.add_transition(sub_end, EPS, end)
            return start, end
        if isinstance(node, Optional):
            start, end = nfa.add_state(), nfa.add_state()
            sub_start, sub_end = build(node.child)
            nfa.add_transition(start, EPS, sub_start)
            nfa.add_transition(start, EPS, end)
            nfa.add_transition(sub_end, EPS, end)
            return start, end
        raise TypeError(f"unknown node {node!r}")

    start, end = build(expr)
    nfa.initial = {start}
    nfa.finals = {end}
    return nfa


# ---------------------------------------------------------------------------
# Products
# ---------------------------------------------------------------------------


def product_intersection(automata: List[NFA]) -> NFA:
    """On-the-fly product automaton for the intersection of several NFAs.

    Only the reachable part of the product is materialized, which keeps the
    common case (early-empty intersections) cheap; the worst case is the
    usual exponential product.
    """
    if not automata:
        raise ValueError("need at least one automaton")
    alphabet = set.intersection(*[a.alphabet for a in automata]) if len(
        automata
    ) > 1 else set(automata[0].alphabet)

    closures = [a.epsilon_closure(a.initial) for a in automata]
    start = tuple(closures)
    index: Dict[Tuple[FrozenSet[int], ...], int] = {start: 0}
    result = NFA(1, {0}, set(), [{}], set(alphabet))
    if all(c & a.finals for c, a in zip(start, automata)):
        result.finals.add(0)
    queue = deque([start])
    while queue:
        states = queue.popleft()
        src = index[states]
        for label in alphabet:
            nxt = tuple(
                a.step(component, label)
                for a, component in zip(automata, states)
            )
            if any(not component for component in nxt):
                continue
            if nxt not in index:
                index[nxt] = len(result.transitions)
                result.transitions.append({})
                result.num_states += 1
                if all(
                    component & a.finals
                    for component, a in zip(nxt, automata)
                ):
                    result.finals.add(index[nxt])
                queue.append(nxt)
            result.add_transition(src, label, index[nxt])
    return result


def minimal_dfa(expr: Regex) -> DFA:
    """The canonical minimal complete DFA of an expression's language."""
    return glushkov(expr).determinize().minimize()
