"""Parser for the paper's regular-expression syntax.

Supports the academic notation used throughout the paper::

    (a+b)*a(a+b)?      union written '+', concatenation by juxtaposition
    b* a (b* a)*       whitespace-separated concatenation
    ab*c*              single-character symbols

as well as a multi-character mode for DTD content models::

    name birthplace?          (multi_char=True)
    person*, name, city       commas are concatenation separators

Union can always be written ``|`` unambiguously.  The token ``+`` is
*context-disambiguated*: it denotes union when followed by something that
can start an expression (the paper's convention, as in ``(a + b)``), and
one-or-more otherwise (as in ``a+``).  In the rare case you need
"one-or-more followed by concatenation" in academic mode, parenthesize:
``(a+)b``.

Epsilon can be written ``()`` or ``eps``; the empty language ``[]``.
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..errors import RegexParseError
from .ast import (
    EMPTY,
    EPSILON,
    Concat,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

_PUNCT_SYMBOLS = "#$%&@;:<>=~"


class _Token(NamedTuple):
    kind: str  # SYM LPAREN RPAREN STAR PLUS QMARK PIPE EPS EMPTYLANG
    text: str
    pos: int


def _tokenize(text: str, multi_char: bool) -> List[_Token]:
    tokens: List[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace() or ch in ".,·":  # whitespace / explicit concat
            i += 1
            continue
        if ch == "(":
            # '()' is epsilon
            j = i + 1
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == ")":
                tokens.append(_Token("EPS", "()", i))
                i = j + 1
                continue
            tokens.append(_Token("LPAREN", "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(_Token("RPAREN", ")", i))
            i += 1
            continue
        if ch == "[":
            j = i + 1
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == "]":
                tokens.append(_Token("EMPTYLANG", "[]", i))
                i = j + 1
                continue
            raise RegexParseError("expected ']' after '['", position=i)
        if ch == "*":
            tokens.append(_Token("STAR", "*", i))
            i += 1
            continue
        if ch == "+":
            tokens.append(_Token("PLUS", "+", i))
            i += 1
            continue
        if ch == "?":
            tokens.append(_Token("QMARK", "?", i))
            i += 1
            continue
        if ch == "|":
            tokens.append(_Token("PIPE", "|", i))
            i += 1
            continue
        if ch in ("ε",):  # 'ε'
            tokens.append(_Token("EPS", ch, i))
            i += 1
            continue
        if ch in ("∅",):  # '∅'
            tokens.append(_Token("EMPTYLANG", ch, i))
            i += 1
            continue
        if ch == "^":
            # inverse atom of 2RPQs: '^p' is ONE symbol traversing a
            # p-edge backwards (Section 9.6)
            j = i + 1
            if j < n and (text[j].isalnum() or text[j] == "_"):
                if multi_char:
                    k = j
                    while k < n and (text[k].isalnum() or text[k] in "_-:"):
                        k += 1
                else:
                    k = j + 1
                tokens.append(_Token("SYM", "^" + text[j:k], i))
                i = k
                continue
            raise RegexParseError(
                "'^' must be followed by a label", position=i
            )
        if ch.isalnum() or ch == "_" or ch in _PUNCT_SYMBOLS:
            if multi_char and (ch.isalnum() or ch == "_"):
                j = i
                while j < n and (text[j].isalnum() or text[j] in "_-"):
                    j += 1
                name = text[i:j]
                if name == "eps":
                    tokens.append(_Token("EPS", name, i))
                else:
                    tokens.append(_Token("SYM", name, i))
                i = j
                continue
            # academic mode: each character is its own symbol, but allow
            # the spelled-out 'eps' keyword.
            if text.startswith("eps", i) and (
                i + 3 >= n or not text[i + 3].isalnum()
            ):
                tokens.append(_Token("EPS", "eps", i))
                i += 3
                continue
            tokens.append(_Token("SYM", ch, i))
            i += 1
            continue
        raise RegexParseError(f"unexpected character {ch!r}", position=i)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[_Token], source: str, union_plus: bool = True):
        self.tokens = tokens
        self.source = source
        self.index = 0
        self.union_plus = union_plus

    def peek(self, ahead: int = 0):
        pos = self.index + ahead
        if pos < len(self.tokens):
            return self.tokens[pos]
        return None

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token is None or token.kind != kind:
            at = token.pos if token else len(self.source)
            raise RegexParseError(f"expected {kind}", position=at)
        return self.advance()

    # grammar: expr := term (('+'|'|') term)*
    #          term := factor+
    #          factor := atom ('*'|'?'|postfix '+')*
    #          atom := SYM | '(' expr ')' | EPS | EMPTYLANG

    def parse_expr(self) -> Regex:
        parts = [self.parse_term()]
        while True:
            token = self.peek()
            if token is None:
                break
            if token.kind == "PIPE":
                self.advance()
                parts.append(self.parse_term())
                continue
            if token.kind == "PLUS" and self._plus_is_union():
                self.advance()
                parts.append(self.parse_term())
                continue
            break
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    def _plus_is_union(self) -> bool:
        """A '+' token is union when followed by an expression start.

        With ``union_plus=False`` (DTD content models, where '|' is the
        only choice operator) '+' is always the postfix operator.
        """
        if not self.union_plus:
            return False
        nxt = self.peek(1)
        return nxt is not None and nxt.kind in (
            "SYM",
            "LPAREN",
            "EPS",
            "EMPTYLANG",
        )

    def parse_term(self) -> Regex:
        parts = [self.parse_factor()]
        while True:
            token = self.peek()
            if token is None or token.kind in ("PIPE", "RPAREN"):
                break
            if token.kind == "PLUS":
                break  # handled by parse_expr (union) -- postfix '+' was
                # already consumed inside parse_factor.
            if token.kind in ("STAR", "QMARK"):
                raise RegexParseError(
                    "dangling postfix operator", position=token.pos
                )
            parts.append(self.parse_factor())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_factor(self) -> Regex:
        node = self.parse_atom()
        while True:
            token = self.peek()
            if token is None:
                break
            if token.kind == "STAR":
                self.advance()
                node = Star(node)
                continue
            if token.kind == "QMARK":
                self.advance()
                node = Optional(node)
                continue
            if token.kind == "PLUS" and not self._plus_is_union():
                self.advance()
                node = Plus(node)
                continue
            break
        return node

    def parse_atom(self) -> Regex:
        token = self.peek()
        if token is None:
            raise RegexParseError(
                "unexpected end of expression", position=len(self.source)
            )
        if token.kind == "SYM":
            self.advance()
            return Symbol(token.text)
        if token.kind == "EPS":
            self.advance()
            return EPSILON
        if token.kind == "EMPTYLANG":
            self.advance()
            return EMPTY
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        raise RegexParseError(
            f"unexpected token {token.text!r}", position=token.pos
        )


def parse(
    text: str, multi_char: bool = False, union_plus: bool = True
) -> Regex:
    """Parse ``text`` into a :class:`~repro.regex.ast.Regex`.

    Parameters
    ----------
    text:
        The expression in academic notation (see module docstring).
    multi_char:
        When true, identifiers are tokenized maximally (``name`` is one
        symbol); when false (default), each alphanumeric character is its
        own symbol (``ab*`` is ``a . b*``).
    union_plus:
        When false, ``+`` is always the one-or-more postfix operator and
        union must be written ``|`` (the convention of DTD content
        models).

    Raises
    ------
    RegexParseError
        If the input is empty or malformed.
    """
    tokens = _tokenize(text, multi_char)
    if not tokens:
        raise RegexParseError("empty expression", position=0)
    parser = _Parser(tokens, text, union_plus=union_plus)
    expr = parser.parse_expr()
    if parser.index != len(tokens):
        leftover = parser.tokens[parser.index]
        raise RegexParseError(
            f"trailing input {leftover.text!r}", position=leftover.pos
        )
    return expr
