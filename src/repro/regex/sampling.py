"""Random sampling of words from regular expressions.

Used by the schema-inference experiments (to build positive samples from
a known target expression, Definition 4.7) and by the workload
generators.  Sampling is purely syntax-directed — no automaton is built —
so it is fast even for large expressions.
"""

from __future__ import annotations

import random
from typing import List, Optional as Opt, Tuple

from ..errors import ReproError
from .ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)


class EmptyLanguageError(ReproError):
    """Raised when asked to sample from an expression with empty language."""


def sample_word(
    expr: Regex,
    rng: Opt[random.Random] = None,
    star_continue: float = 0.5,
    max_repeat: int = 16,
) -> Tuple[str, ...]:
    """Draw one random word from ``L(expr)``.

    Repetition counts under ``*``/``+`` are geometric with continuation
    probability ``star_continue``, capped at ``max_repeat`` to keep
    samples bounded.  Union branches with empty languages are never
    chosen; sampling from an empty language raises
    :class:`EmptyLanguageError`.
    """
    rng = rng or random.Random()
    if expr.matches_nothing():
        raise EmptyLanguageError(f"cannot sample from {expr}")
    out: List[str] = []
    _emit(expr, rng, star_continue, max_repeat, out)
    return tuple(out)


def _emit(
    expr: Regex,
    rng: random.Random,
    star_continue: float,
    max_repeat: int,
    out: List[str],
) -> None:
    if isinstance(expr, Epsilon):
        return
    if isinstance(expr, Empty):
        raise EmptyLanguageError("empty language reached during sampling")
    if isinstance(expr, Symbol):
        out.append(expr.label)
        return
    if isinstance(expr, Concat):
        for part in expr.parts:
            _emit(part, rng, star_continue, max_repeat, out)
        return
    if isinstance(expr, Union):
        viable = [p for p in expr.parts if not p.matches_nothing()]
        _emit(rng.choice(viable), rng, star_continue, max_repeat, out)
        return
    if isinstance(expr, Star):
        count = 0
        while count < max_repeat and rng.random() < star_continue:
            count += 1
        for _ in range(count):
            _emit(expr.child, rng, star_continue, max_repeat, out)
        return
    if isinstance(expr, Plus):
        count = 1
        while count < max_repeat and rng.random() < star_continue:
            count += 1
        for _ in range(count):
            _emit(expr.child, rng, star_continue, max_repeat, out)
        return
    if isinstance(expr, Optional):
        if rng.random() < 0.5:
            _emit(expr.child, rng, star_continue, max_repeat, out)
        return
    raise TypeError(f"unknown node {expr!r}")


def sample_words(
    expr: Regex,
    count: int,
    rng: Opt[random.Random] = None,
    star_continue: float = 0.5,
    max_repeat: int = 16,
) -> List[Tuple[str, ...]]:
    """Draw ``count`` independent random words from ``L(expr)``."""
    rng = rng or random.Random()
    return [
        sample_word(expr, rng, star_continue, max_repeat)
        for _ in range(count)
    ]
