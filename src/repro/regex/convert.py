"""Conversion from automata back to regular expressions (state
elimination), plus language intersection as an expression.

Used by the BonXai translation (:mod:`repro.trees.bonxai`): when several
pattern rules select the same node set, the induced content model is the
*intersection* of their expressions, which we materialize as a single
regular expression via product construction + state elimination.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .ast import (
    EMPTY,
    EPSILON,
    Regex,
    Symbol,
    concat as smart_concat,
    optional as smart_optional,
    plus as smart_plus,
    star as smart_star,
    union as smart_union,
)
from .automata import NFA, glushkov, product_intersection


def nfa_to_regex(nfa: NFA) -> Regex:
    """A regular expression for ``L(nfa)`` via state elimination.

    Builds the generalized NFA with fresh initial/final states and
    eliminates states in increasing-degree order (a standard heuristic
    that keeps intermediate expressions small).
    """
    n = nfa.num_states
    init, final = n, n + 1
    # edge map: (src, dst) -> Regex
    edges: Dict[Tuple[int, int], Regex] = {}

    def add_edge(src: int, dst: int, expr: Regex) -> None:
        if expr == EMPTY:
            return
        if (src, dst) in edges:
            edges[(src, dst)] = smart_union(edges[(src, dst)], expr)
        else:
            edges[(src, dst)] = expr

    for src, trans in enumerate(nfa.transitions):
        for label, targets in trans.items():
            expr = EPSILON if label == "" else Symbol(label)
            for dst in targets:
                add_edge(src, dst, expr)
    for state in nfa.initial:
        add_edge(init, state, EPSILON)
    for state in nfa.finals:
        add_edge(state, final, EPSILON)

    remaining = list(range(n))

    def degree(state: int) -> int:
        return sum(1 for (s, d) in edges if s == state or d == state)

    while remaining:
        remaining.sort(key=degree)
        victim = remaining.pop(0)
        loop = edges.pop((victim, victim), None)
        loop_expr = smart_star(loop) if loop is not None else EPSILON
        incoming = [
            (s, e) for (s, d), e in list(edges.items()) if d == victim
        ]
        outgoing = [
            (d, e) for (s, d), e in list(edges.items()) if s == victim
        ]
        for (s, _e) in incoming:
            edges.pop((s, victim), None)
        for (d, _e) in outgoing:
            edges.pop((victim, d), None)
        for s, in_expr in incoming:
            for d, out_expr in outgoing:
                add_edge(s, d, smart_concat(in_expr, loop_expr, out_expr))

    return edges.get((init, final), EMPTY)


def intersection_regex(expressions: Sequence[Regex]) -> Regex:
    """A single regular expression for ``L(e1) ∩ … ∩ L(en)``.

    Regular languages are closed under intersection but expressions have
    no intersection operator; the classical route is the product
    automaton followed by state elimination.  The result can be
    exponentially larger — the price Theorem 4.5's hardness results put a
    name to.
    """
    if not expressions:
        raise ValueError("need at least one expression")
    if len(expressions) == 1:
        return expressions[0]
    product = product_intersection([glushkov(e) for e in expressions])
    return nfa_to_regex(product)
