"""Classification of regular expressions into the fragments studied in the
paper.

The central notions (Sections 4.2.2, 4.2.3, 9.6):

* **Simple factor** — ``(a1+…+ak)``, ``(a1+…+ak)?``, ``(a1+…+ak)*`` or
  ``(a1+…+ak)+`` (Definition 4.3).  A single symbol is the ``k = 1`` case.
* **Sequential / chain regular expression (CHARE)** — a concatenation
  ``f1 … fn`` of simple factors.  Over 92% of regular expressions found in
  real DTDs are of this shape (Bex et al.).
* **Factor types** — the grammar ``RE(f1,…,fk)`` of Theorem 4.4, where
  each ``fi ∈ {a, a?, a*, a+, (+a), (+a)?, (+a)*, (+a)+}``.
* **k-ORE / SORE** — at most ``k`` (resp. one) syntactic occurrences per
  label (Section 4.2.3); over 99% of practical schema expressions are
  SOREs.
* **Simple transitive expression (STE)** — a chain with at most one
  transitive (starred) factor, covering > 99% of property paths in the
  DBpedia-corpus logs (Martens & Trautner; Section 9.6).
* **Ctract / Ttract** — the tractability classes for simple-path and
  trail semantics of regular path queries (Bagan et al.; Martens,
  Niewerth & Trautner).  Membership is decided here for chain-shaped
  expressions via the "bounded prefix · downward-closed middle · bounded
  suffix" characterization; see the function docstrings for the precise
  rules implemented and their provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional as Opt, Sequence, Tuple

from .ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)

# The eight factor types of Theorem 4.4, in display order.
FACTOR_TYPES = ("a", "a?", "a*", "a+", "(+a)", "(+a)?", "(+a)*", "(+a)+")


@dataclass(frozen=True)
class SimpleFactor:
    """A parsed simple factor.

    Attributes
    ----------
    labels:
        The symbols of the disjunction, in syntactic order.
    modifier:
        One of ``""``, ``"?"``, ``"*"``, ``"+"``.
    """

    labels: Tuple[str, ...]
    modifier: str

    @property
    def factor_type(self) -> str:
        """The RE(…) factor type string, e.g. ``"(+a)*"`` or ``"a?"``."""
        base = "a" if len(self.labels) == 1 else "(+a)"
        return base + self.modifier

    @property
    def is_transitive(self) -> bool:
        """Whether the factor matches unboundedly long words (* or +)."""
        return self.modifier in ("*", "+")

    @property
    def is_optional(self) -> bool:
        """Whether the factor matches the empty word (? or *)."""
        return self.modifier in ("?", "*")

    def __str__(self) -> str:
        if len(self.labels) == 1:
            base = self.labels[0]
            if self.modifier and len(base) > 1:
                base = f"({base})"
        else:
            base = "(" + "+".join(self.labels) + ")"
        return base + self.modifier


def _disjunction_labels(expr: Regex) -> Opt[Tuple[str, ...]]:
    """Labels of ``a1 + … + ak`` when ``expr`` is a disjunction of symbols
    (possibly a single symbol); otherwise ``None``."""
    if isinstance(expr, Symbol):
        return (expr.label,)
    if isinstance(expr, Union):
        labels = []
        for part in expr.parts:
            if not isinstance(part, Symbol):
                return None
            labels.append(part.label)
        return tuple(labels)
    return None


def as_simple_factor(expr: Regex) -> Opt[SimpleFactor]:
    """Parse ``expr`` as a simple factor, or return ``None``."""
    modifier = ""
    inner = expr
    if isinstance(expr, Star):
        modifier, inner = "*", expr.child
    elif isinstance(expr, Plus):
        modifier, inner = "+", expr.child
    elif isinstance(expr, Optional):
        modifier, inner = "?", expr.child
    labels = _disjunction_labels(inner)
    if labels is None:
        return None
    return SimpleFactor(labels, modifier)


def chare_factors(expr: Regex) -> Opt[List[SimpleFactor]]:
    """Decompose a sequential (chain) regular expression into its factors.

    Returns ``None`` when ``expr`` is not a CHARE.  Epsilon counts as the
    empty chain (zero factors); the empty-language expression is not a
    CHARE.
    """
    if isinstance(expr, Epsilon):
        return []
    if isinstance(expr, Empty):
        return None
    parts = expr.parts if isinstance(expr, Concat) else (expr,)
    factors: List[SimpleFactor] = []
    for part in parts:
        factor = as_simple_factor(part)
        if factor is None:
            return None
        factors.append(factor)
    return factors


def is_chare(expr: Regex) -> bool:
    """Whether ``expr`` is a sequential (chain) regular expression."""
    return chare_factors(expr) is not None


def factor_type_signature(expr: Regex) -> Opt[Tuple[str, ...]]:
    """The sorted set of factor types used by a CHARE, or ``None``.

    ``factor_type_signature(parse("ab*a*ab"))`` is ``("a", "a*")``, i.e.
    the expression lies in the fragment RE(a, a*) of Theorem 4.4.
    """
    factors = chare_factors(expr)
    if factors is None:
        return None
    return tuple(sorted({factor.factor_type for factor in factors}))


def in_fragment(expr: Regex, allowed_types: Sequence[str]) -> bool:
    """Whether ``expr`` is in RE(f1,…,fk) for the given factor types.

    Factor types use the notation of Theorem 4.4; a bare symbol factor
    (type ``"a"``) is also accepted by any disjunction type ``"(+a)…"``
    with the same modifier, since ``a`` is the ``k = 1`` disjunction.
    """
    factors = chare_factors(expr)
    if factors is None:
        return False
    allowed = set(allowed_types)
    for factor in factors:
        ftype = factor.factor_type
        if ftype in allowed:
            continue
        if len(factor.labels) == 1:
            widened = "(+a)" + factor.modifier
            if widened in allowed:
                continue
        return False
    return True


# ---------------------------------------------------------------------------
# Occurrence-bounded expressions
# ---------------------------------------------------------------------------


def max_occurrences(expr: Regex) -> int:
    """The largest number of syntactic occurrences of any single label."""
    counts = expr.occurrence_counts()
    return max(counts.values(), default=0)


def is_k_ore(expr: Regex, k: int) -> bool:
    """Whether ``expr`` is a k-occurrence regular expression."""
    return max_occurrences(expr) <= k


def is_sore(expr: Regex) -> bool:
    """Whether ``expr`` is a single-occurrence regular expression (1-ORE)."""
    return is_k_ore(expr, 1)


# ---------------------------------------------------------------------------
# Simple transitive expressions and tractability classes
# ---------------------------------------------------------------------------


def is_simple_transitive(expr: Regex) -> bool:
    """Whether ``expr`` is a *simple transitive expression*.

    Following Martens & Trautner ("Dichotomies for Evaluating Simple
    Regular Path Queries"), an STE is a chain of atomic factors
    (``a``, ``A``, ``a?``, ``A?``) with at most one transitive factor
    (``A*`` or ``A+``).  This is the class that covered over 99% of the
    property paths in the DBpedia–BritM logs; the main reason practical
    paths fall outside it is a second starred subexpression, as in
    ``a*b*`` (Section 9.6).
    """
    factors = chare_factors(expr)
    if factors is None:
        return False
    transitive = sum(1 for f in factors if f.is_transitive)
    return transitive <= 1


@dataclass(frozen=True)
class _MergedBlock:
    """A maximal run of adjacent factors over the same label set, merged.

    Merging makes the tractability tests robust to syntactic noise such
    as ``a*aa*`` (semantically ``a+``, a single transitive block).
    """

    labels: frozenset
    transitive: bool  # contains a * or + factor
    mandatory: bool  # minimum repetition count >= 1


def _merged_blocks(factors: List[SimpleFactor]) -> List[_MergedBlock]:
    blocks: List[_MergedBlock] = []
    for factor in factors:
        labels = frozenset(factor.labels)
        transitive = factor.is_transitive
        mandatory = not factor.is_optional
        if blocks and blocks[-1].labels == labels:
            prev = blocks[-1]
            blocks[-1] = _MergedBlock(
                labels,
                prev.transitive or transitive,
                prev.mandatory or mandatory,
            )
        else:
            blocks.append(_MergedBlock(labels, transitive, mandatory))
    return blocks


def is_ctract(expr: Regex) -> Opt[bool]:
    """Membership in the tractable class for *simple-path* semantics.

    Bagan, Bonifati & Groz's trichotomy shows that evaluating a regular
    path query under simple-path semantics is tractable exactly for the
    class ``C_tract`` of languages expressible as finite unions of
    ``W1 · D · W2`` with ``W1, W2`` finite and ``D`` *downward closed*
    under the subword order.  Intuition: inside ``D``, cycles of a
    matching walk can always be cut out, so a matching walk yields a
    matching simple path once the bounded borders are fixed.

    For chain-shaped expressions we implement the syntactic certificate:
    after merging adjacent same-alphabet factors, a chain is certified in
    ``C_tract`` when **no mandatory non-transitive block occurs strictly
    between two transitive blocks** — then the maximal transitive/optional
    middle is downward closed and the borders are finite.  Examples:
    ``a*``, ``ab*c``, ``ab*c*``, ``a*b*``, ``a*aa*`` (≡ ``a+``) are in;
    ``a*ba*`` is out.

    Returns ``True`` for certified members, ``False`` for chains without
    a certificate, and ``None`` ("unknown") for non-chain expressions —
    deciding the general class requires the full BBG machinery, which no
    observed property-path type in the logs needs (Table 8).
    """
    factors = chare_factors(expr)
    if factors is None:
        if isinstance(expr, Union):
            verdicts = [is_ctract(p) for p in expr.parts]
            if all(v is True for v in verdicts):
                return True  # finite unions preserve membership
            return None  # a False/unknown branch leaves the union open
        return None
    blocks = _merged_blocks(factors)
    transitive_positions = [
        i for i, b in enumerate(blocks) if b.transitive
    ]
    if len(transitive_positions) <= 1:
        return True  # simple transitive expressions are always in C_tract
    first, last = transitive_positions[0], transitive_positions[-1]
    for i in range(first + 1, last):
        block = blocks[i]
        if block.mandatory and not block.transitive:
            return False
    return True


def is_ttract(expr: Regex) -> Opt[bool]:
    """Membership in the tractable class for *trail* semantics.

    Martens, Niewerth & Trautner's trichotomy gives a class ``T_tract``
    strictly containing ``C_tract``: trails may revisit *vertices*, so
    some languages whose simple-path problem is hard remain tractable for
    trails.  We implement the documented approximation
    ``C_tract ∪ {chains whose mandatory between-star blocks use labels
    disjoint from every transitive block's alphabet}`` — the
    "conflict-free separation" core of their characterization.  On every
    property-path type observed in the paper's logs (Table 8) this
    coincides with the published classification; EXPERIMENTS.md records
    the approximation.
    """
    ctract = is_ctract(expr)
    if ctract is True:
        return True
    if ctract is None:
        return None
    factors = chare_factors(expr)
    if factors is None:
        return None
    blocks = _merged_blocks(factors)
    transitive_positions = [
        i for i, b in enumerate(blocks) if b.transitive
    ]
    starred_labels: set = set()
    for i in transitive_positions:
        starred_labels.update(blocks[i].labels)
    first, last = transitive_positions[0], transitive_positions[-1]
    for i in range(first + 1, last):
        block = blocks[i]
        if not block.mandatory or block.transitive:
            continue
        if set(block.labels) & starred_labels:
            return False
    return True
