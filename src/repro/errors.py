"""Exception hierarchy for the :mod:`repro` toolkit.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from semantic/validation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolkit."""


class ParseError(ReproError):
    """Raised when a textual artifact (regex, XML, JSON, DTD, SPARQL query)
    cannot be parsed.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    position:
        Character offset in the input where the error was detected, or
        ``None`` when not applicable.
    category:
        Optional machine-readable error category (used by the XML
        well-formedness study, which classifies errors into a taxonomy).
    """

    def __init__(self, message, position=None, category=None):
        super().__init__(message)
        self.message = message
        self.position = position
        self.category = category

    def __str__(self):
        if self.position is None:
            return self.message
        return f"{self.message} (at position {self.position})"


class RegexParseError(ParseError):
    """Raised for malformed regular expressions."""


class XMLParseError(ParseError):
    """Raised for XML documents that are not well-formed."""


class JSONParseError(ParseError):
    """Raised for malformed JSON documents."""


class DTDParseError(ParseError):
    """Raised for malformed DTD rule sets."""


class SPARQLParseError(ParseError):
    """Raised for SPARQL queries outside the supported subset or malformed."""


class ValidationError(ReproError):
    """Raised when a document fails schema validation and the caller asked
    for an exception rather than a boolean result."""


class MalformedStreamError(ReproError):
    """Raised when a SAX-style event stream is structurally broken —
    unbalanced start/end events, a second root element, an unknown event
    kind — as opposed to a well-formed stream that merely violates the
    schema (which raises :class:`ValidationError`)."""


class SchemaError(ReproError):
    """Raised when a schema itself is ill-formed (e.g. an EDTD whose type map
    is inconsistent, or a DTD referencing undeclared labels in strict mode)."""


class FragmentError(ReproError):
    """Raised when an algorithm specialized to a fragment is applied to an
    expression outside that fragment (e.g. CHARE-only containment on a
    non-CHARE expression)."""


class UnsupportedFeatureError(ReproError):
    """Raised when a query or schema uses a feature the evaluator does not
    implement (analysis code never raises this; only evaluation does)."""


class StoreImageError(ReproError):
    """Raised when an on-disk triple-store image cannot be opened: bad
    magic, unsupported format version, foreign byte order, or a header
    that does not describe the file's actual contents."""


class ServiceError(ReproError):
    """Base class of the query-serving layer's typed failures.

    Every subclass carries a stable machine-readable ``code`` — the
    wire protocol transports the code, and the client reconstructs the
    matching exception type from it, so a caller of the remote service
    catches exactly the exceptions an in-process caller would.
    """

    code = "service_error"


class ServiceOverloaded(ServiceError):
    """Admission control shed this request: the scheduler's bounded
    queue was full when it arrived.  Load-shedding is deliberate —
    failing fast beats queueing into timeout collapse."""

    code = "overloaded"


class DeadlineExceeded(ServiceError):
    """The request's deadline expired before a result was produced.
    The response is structured and immediate; any already-running
    engine work completes in the background (and still populates the
    result cache) rather than poisoning a worker."""

    code = "deadline_exceeded"


class BadRequest(ServiceError):
    """The request was malformed: unknown operation, missing or
    ill-typed parameters, unknown store, or an unparseable RPQ
    expression."""

    code = "bad_request"


class ProtocolError(ServiceError):
    """A wire-level framing violation (oversized frame, truncated
    frame, or a frame that is not a JSON object)."""

    code = "protocol_error"


class StoreUnavailableError(ServiceError):
    """A registered store could not be opened: the image or shard
    manifest path is missing, unreadable, or corrupt.

    Raised instead of the bare ``FileNotFoundError`` /
    :class:`StoreImageError` the resolution would otherwise leak, so the
    wire protocol can transport a stable code and a remote client
    reconstructs the same typed exception an embedded caller sees."""

    code = "store_unavailable"


class ShardError(ServiceError):
    """A sharded deployment failed structurally: no live worker for a
    shard after failover and respawn, or a shard answered with a
    malformed partial.  Per-query engine errors are *not* shard errors —
    they propagate under their own types."""

    code = "shard_error"


class StoreFrozenError(ServiceError):
    """A mutation was attempted on a frozen (memory-mapped) store.

    Mapped images are immutable by construction — their pages are
    shared read-only across processes.  Subclassing
    :class:`ServiceError` gives the serving layer a stable wire code
    for free: a ``mutate`` against a frozen store comes back as a typed
    ``store_frozen`` error instead of an internal fault."""

    code = "store_frozen"
