"""Practical-study orchestration — the paper's "primary contribution" is
a methodology, and this module is its executable form.

A :class:`PracticalStudy` bundles the data sources (query logs, schema
corpora, XML corpora, graph data sets), runs every registered
experiment, and renders the paper's tables.  The experiment registry
maps the paper's table/figure ids to the code that regenerates them, so
``study.run("table7")`` is the per-experiment index of DESIGN.md made
callable.

Lessons-learned hooks (Section 11) are baked in:

* *Keep your unaggregated data around* — every :class:`LogReport`
  retains the full per-key counters, so new perspectives (like the
  threshold-query study the paper mentions) can re-aggregate without
  regenerating;
* *The right perspective* — :func:`perspective_note` computes the
  single-atom share so that "X% of queries are conjunctive" is always
  reported next to "Y% have at most one atom".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional as Opt, Tuple

from ..logs.analyzer import LogReport, analyze_corpus, combine_reports
from ..logs.corpus import QueryLogCorpus
from ..logs.report import (
    render_figure3,
    render_path_classes,
    render_table2,
    render_table3,
    render_table45,
    render_table6,
    render_table7,
    render_table8,
    render_well_designed,
)
from ..logs.workload import (
    DBPEDIA_FAMILY,
    QueryGenerator,
    SourceProfile,
    WIKIDATA_FAMILY,
)


@dataclass
class StudyScale:
    """How much data to generate per source (a laptop-scale stand-in for
    the paper's 546M queries)."""

    queries_per_source: int = 400
    seed: int = 2022


@dataclass
class PracticalStudy:
    """End-to-end SPARQL-log study: generate → parse → analyze → report."""

    scale: StudyScale = field(default_factory=StudyScale)
    corpora: Dict[str, QueryLogCorpus] = field(default_factory=dict)
    reports: Dict[str, LogReport] = field(default_factory=dict)

    def build_corpora(
        self, profiles: Opt[Tuple[SourceProfile, ...]] = None
    ) -> None:
        """Generate and parse the per-source logs."""
        profiles = profiles or (DBPEDIA_FAMILY + WIKIDATA_FAMILY)
        for index, profile in enumerate(profiles):
            generator = QueryGenerator(
                profile, random.Random(self.scale.seed + index)
            )
            log = generator.generate_log(self.scale.queries_per_source)
            self.corpora[profile.name] = QueryLogCorpus.from_texts(
                profile.name, log
            )

    def analyze(self) -> None:
        if not self.corpora:
            self.build_corpora()
        for name, corpus in self.corpora.items():
            self.reports[name] = analyze_corpus(corpus)

    # -- family aggregates ---------------------------------------------------------

    def family_report(self, family: str) -> LogReport:
        """'dbpedia' (DBpedia–BritM) or 'wikidata' aggregate report."""
        if not self.reports:
            self.analyze()
        names = {
            "dbpedia": [p.name for p in DBPEDIA_FAMILY],
            "wikidata": [p.name for p in WIKIDATA_FAMILY],
        }[family]
        members = [
            report
            for name, report in self.reports.items()
            if name in names
        ]
        return combine_reports(members, name=family)

    # -- experiment registry ----------------------------------------------------------

    def run(self, experiment: str) -> str:
        """Render one of the paper's tables/figures by id."""
        if not self.reports:
            self.analyze()
        registry: Dict[str, Callable[[], str]] = {
            "table2": lambda: render_table2(self.corpora.values()),
            "figure3": lambda: "\n\n".join(
                f"== {name} ==\n{render_figure3(report)}"
                for name, report in sorted(self.reports.items())
            ),
            "table3": lambda: (
                "== DBpedia-BritM ==\n"
                + render_table3(self.family_report("dbpedia"))
                + "\n\n== Wikidata ==\n"
                + render_table3(self.family_report("wikidata"))
            ),
            "table4": lambda: render_table45(
                self.family_report("dbpedia"), with_paths=False
            ),
            "table5": lambda: render_table45(
                self.family_report("wikidata"), with_paths=True
            ),
            "table6": lambda: render_table6(self.family_report("dbpedia")),
            "table7": lambda: (
                "== with constants ==\n"
                + render_table7(
                    self.family_report("dbpedia"), with_constants=True
                )
                + "\n\n== without constants ==\n"
                + render_table7(
                    self.family_report("dbpedia"), with_constants=False
                )
            ),
            "table8": lambda: render_table8(self.family_report("wikidata")),
            "path-classes": lambda: render_path_classes(
                self.family_report("wikidata")
            ),
            "well-designed": lambda: (
                "== DBpedia-BritM ==\n"
                + render_well_designed(self.family_report("dbpedia"))
                + "\n\n== Wikidata ==\n"
                + render_well_designed(self.family_report("wikidata"))
            ),
        }
        if experiment not in registry:
            raise KeyError(
                f"unknown experiment {experiment!r}; "
                f"known: {sorted(registry)}"
            )
        return registry[experiment]()

    def experiments(self) -> List[str]:
        return [
            "table2",
            "figure3",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "path-classes",
            "well-designed",
        ]

    def run_all(self) -> Dict[str, str]:
        return {
            experiment: self.run(experiment)
            for experiment in self.experiments()
        }


def perspective_note(report: LogReport) -> str:
    """Section 11's "right perspective" guard: report the single-atom
    share next to any conjunctivity claim."""
    valid_total, _unique_total = report.triple_histogram.totals()
    at_most_one = report.triple_histogram.valid.get(
        "0", 0
    ) + report.triple_histogram.valid.get("1", 0)
    cq_valid, _cq_unique = report.cq_subtotal()
    if valid_total == 0:
        return "empty corpus"
    return (
        f"{100.0 * cq_valid / valid_total:.1f}% of queries are conjunctive, "
        f"but note that {100.0 * at_most_one / valid_total:.1f}% have at "
        "most one triple pattern"
    )
