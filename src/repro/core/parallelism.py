"""Process-pool sizing shared by every parallel stage.

Three different layers fan work out over a
:class:`~concurrent.futures.ProcessPoolExecutor` — the log-study
pipeline (:mod:`repro.logs.pipeline`), the batch analyzer
(:mod:`repro.logs.analyzer`), and the parallel RPQ evaluator
(:mod:`repro.graphs.parallel`).  They must all make the same two
decisions the same way:

* **How wide is the pool really?**  ``workers`` may be unset while an
  externally managed pool is lent in, and CPU affinity can be narrower
  than ``os.cpu_count()``.
* **How many chunks should the work split into?**  A fixed chunk size
  quietly serializes moderate workloads (fewer than ``chunk_size *
  workers`` items produce fewer chunks than workers, idling part of the
  pool while paying its full cost) — the bug this module's
  :func:`fanout_chunk_size` exists to keep fixed everywhere at once.
"""

from __future__ import annotations

import os
from typing import List, Optional as Opt

#: pool-balancing factor: aim for this many chunks per worker so one
#: heavy shard (expensive queries cluster) cannot straggle a whole stage
FANOUT_PER_WORKER = 4


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def pool_width(workers: Opt[int], pool=None) -> int:
    """The effective number of workers a parallel stage will run on:
    an explicit ``workers`` wins, else the width of a lent pool, else
    the usable CPU count."""
    if workers and workers > 1:
        return workers
    if pool is not None:
        width = getattr(pool, "_max_workers", None)
        if isinstance(width, int) and width > 0:
            return width
    return usable_cpus()


def default_shard_count(requested: Opt[int] = None) -> int:
    """How many store shards a deployment should run: an explicit
    request wins, else one shard per usable CPU.  Sharding is
    process-level parallelism, so oversubscribing CPUs only adds
    scatter overhead — but a single-CPU host still gets one shard
    (the layout is about partitioning, not just speed)."""
    if requested is not None:
        if requested < 1:
            raise ValueError("a sharded deployment needs at least one shard")
        return requested
    return usable_cpus()


def fanout_chunk_size(total: int, workers: int, chunk_size: int) -> int:
    """The effective per-task chunk size for a pool of ``workers``.

    The chunk count is derived from the pool width first —
    ``max(workers * FANOUT_PER_WORKER, ceil(total / chunk_size))``,
    capped at ``total`` — so the configured ``chunk_size`` only bounds
    task payload size, never fan-out: every worker gets ~4 tasks for
    load balancing however small the workload is.
    """
    if total <= 0:
        return chunk_size
    workers = max(1, workers)
    chunks = min(
        total, max(workers * FANOUT_PER_WORKER, -(-total // chunk_size))
    )
    return -(-total // chunks)


def fanout_chunks(items: List, workers: int, chunk_size: int) -> List[List]:
    """Split ``items`` into pool tasks via :func:`fanout_chunk_size`."""
    if not items:
        return []
    size = fanout_chunk_size(len(items), workers, chunk_size)
    return [items[start : start + size] for start in range(0, len(items), size)]
