"""Orchestration: the practical-study methodology as a library, plus
cross-subsystem primitives (content-addressing in :mod:`.hashing`)."""

from .hashing import payload_fingerprint, text_key
from .study import PracticalStudy, StudyScale, perspective_note

__all__ = [
    "PracticalStudy",
    "StudyScale",
    "payload_fingerprint",
    "perspective_note",
    "text_key",
]
