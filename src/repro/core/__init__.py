"""Orchestration: the practical-study methodology as a library."""

from .study import PracticalStudy, StudyScale, perspective_note

__all__ = ["PracticalStudy", "StudyScale", "perspective_note"]
