"""Shared content-addressing helpers.

Two caches in the toolkit key their entries by content: the persistent
log-analysis cache (:mod:`repro.logs.cache`) and the serving layer's
result cache (:mod:`repro.service.resultcache`).  Both must use the
*same* discipline — SHA-256 over a canonical text, plus a truncated
digest of a JSON payload for versioned invalidation — or the two drift
and one of them silently serves stale or duplicated work.  This module
is the single home of that discipline; the log cache re-exports these
helpers unchanged, so existing on-disk caches keep their keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def text_key(normalized_text: str) -> str:
    """The content address of one canonical text: its full SHA-256 hex
    digest.  Callers normalize first (whitespace collapse for query
    texts, structural canonicalization for expressions); this function
    only hashes."""
    return hashlib.sha256(normalized_text.encode("utf-8")).hexdigest()


def payload_fingerprint(payload: Any, length: int = 16) -> str:
    """A short versioning digest of a JSON-able payload.

    The payload is serialized with sorted keys so dict ordering cannot
    change the digest.  The serialization deliberately matches what
    :func:`repro.logs.cache.battery_fingerprint` always used
    (``json.dumps(payload, sort_keys=True)`` with default separators):
    existing cache directories stay valid across the extraction of this
    helper.
    """
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:length]
