"""Shared content-addressing helpers.

Two caches in the toolkit key their entries by content: the persistent
log-analysis cache (:mod:`repro.logs.cache`) and the serving layer's
result cache (:mod:`repro.service.resultcache`).  Both must use the
*same* discipline — SHA-256 over a canonical text, plus a truncated
digest of a JSON payload for versioned invalidation — or the two drift
and one of them silently serves stale or duplicated work.  This module
is the single home of that discipline; the log cache re-exports these
helpers unchanged, so existing on-disk caches keep their keys.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def text_key(normalized_text: str) -> str:
    """The content address of one canonical text: its full SHA-256 hex
    digest.  Callers normalize first (whitespace collapse for query
    texts, structural canonicalization for expressions); this function
    only hashes."""
    return hashlib.sha256(normalized_text.encode("utf-8")).hexdigest()


def payload_fingerprint(payload: Any, length: int = 16) -> str:
    """A short versioning digest of a JSON-able payload.

    The payload is serialized with sorted keys so dict ordering cannot
    change the digest.  The serialization deliberately matches what
    :func:`repro.logs.cache.battery_fingerprint` always used
    (``json.dumps(payload, sort_keys=True)`` with default separators):
    existing cache directories stay valid across the extraction of this
    helper.
    """
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:length]


# -- incremental, order-independent content accumulation -----------------------
#
# The triple store's content fingerprint must satisfy three constraints
# at once: O(1) per insertion (``add`` is the hottest write path in the
# system), independence from insertion order (two processes that load
# the same data in different orders must agree), and portability across
# process boundaries (the fingerprint is written into the mmap image
# header and compared against live stores).  A sum of per-item SHA-256
# digests modulo 2**256 gives all three: commutative, incremental, and
# as collision-resistant as cache addressing needs.

#: width of the accumulator ring (sum of 256-bit digests mod 2**256)
_ACC_BITS = 256
_ACC_MASK = (1 << _ACC_BITS) - 1


def item_digest(payload: Any) -> int:
    """The 256-bit digest of one JSON-able item, as an integer.

    Serialization follows the :func:`payload_fingerprint` discipline
    (canonical JSON, sorted keys) so the two derivations cannot drift.
    """
    blob = json.dumps(
        payload, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest(), "big")


def accumulate(accumulator: int, digest: int) -> int:
    """Fold one :func:`item_digest` into an accumulator (commutative:
    the result does not depend on the order items were folded in)."""
    return (accumulator + digest) & _ACC_MASK


def accumulator_hex(accumulator: int, count: int, length: int = 16) -> str:
    """Render an accumulator plus an item count as a short hex digest —
    the same truncated-SHA-256 shape :func:`payload_fingerprint` emits,
    so consumers can treat both as opaque version strings."""
    digest = hashlib.sha256(
        accumulator.to_bytes(_ACC_BITS // 8, "big")
        + count.to_bytes(8, "big")
    ).hexdigest()
    return digest[:length]
