"""JSON Schema — the logic-based schema language of Section 4.5.

Whereas DTD/XML Schema are built on regular expressions, JSON Schema is
a logical combination of *assertions* on objects, arrays and base
values (Bourhis et al.).  This module implements the fragment the
practical studies analyze:

* assertions: ``type``, ``properties``, ``required``,
  ``additionalProperties``, ``items``, ``enum``, ``const``,
  ``minimum``/``maximum``, ``minLength``/``maxLength``,
  ``minItems``/``maxItems``;
* combinators: ``allOf``, ``anyOf``, ``oneOf``, ``not``;
* references: ``$ref`` into ``definitions`` / ``$defs`` (the source of
  recursion).

Analyses reproduce the two studies the paper cites:

* Maiwald, Riedle & Scherzinger: schema size, recursion (26/159
  schemas), maximum nesting depth of non-recursive schemas (3–43,
  average 11), and the *schema-full* vs *schema-mixed* distinction
  (additional properties allowed by default; only 8/159 schemas turn
  them off);
* Baazizi et al.: usage of negation (2.6% of 11.5k schemas), often as a
  workaround for a missing ``forbidden`` keyword or implication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional as Opt, Set

from ..errors import SchemaError

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


@dataclass
class JSONSchema:
    """A JSON Schema document (the schema itself is a parsed JSON value).

    ``document`` is the root schema object; boolean schemas (``True`` =
    accept everything, ``False`` = reject everything) are allowed
    anywhere a subschema is, per the standard.
    """

    document: Any

    def __post_init__(self):
        if not isinstance(self.document, (dict, bool)):
            raise SchemaError("a JSON Schema is an object or a boolean")

    # -- $ref resolution ------------------------------------------------------------

    def resolve_ref(self, ref: str) -> Any:
        """Resolve a local ``#/...`` JSON pointer reference."""
        if not ref.startswith("#"):
            raise SchemaError(f"only local references supported: {ref!r}")
        node: Any = self.document
        pointer = ref[1:].lstrip("/")
        if not pointer:
            return node
        for part in pointer.split("/"):
            part = part.replace("~1", "/").replace("~0", "~")
            if isinstance(node, dict) and part in node:
                node = node[part]
            else:
                raise SchemaError(f"dangling reference {ref!r}")
        return node

    # -- validation -------------------------------------------------------------------

    def validate(self, value: Any) -> bool:
        return self._valid(self.document, value, depth=0)

    def first_violation(self, value: Any) -> Opt[str]:
        try:
            return None if self.validate(value) else "value rejected"
        except SchemaError as exc:
            return str(exc)

    def _valid(self, schema: Any, value: Any, depth: int) -> bool:
        if depth > 200:
            raise SchemaError("validation recursion too deep")
        if schema is True or schema == {}:
            return True
        if schema is False:
            return False
        if not isinstance(schema, dict):
            raise SchemaError(f"not a schema: {schema!r}")
        if "$ref" in schema:
            return self._valid(
                self.resolve_ref(schema["$ref"]), value, depth + 1
            )
        # type
        declared = schema.get("type")
        if declared is not None:
            types = declared if isinstance(declared, list) else [declared]
            if not any(
                _TYPE_CHECKS.get(t, lambda _v: False)(value) for t in types
            ):
                return False
        # enum / const
        if "enum" in schema and value not in schema["enum"]:
            return False
        if "const" in schema and value != schema["const"]:
            return False
        # numbers
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if "minimum" in schema and value < schema["minimum"]:
                return False
            if "maximum" in schema and value > schema["maximum"]:
                return False
        # strings
        if isinstance(value, str):
            if "minLength" in schema and len(value) < schema["minLength"]:
                return False
            if "maxLength" in schema and len(value) > schema["maxLength"]:
                return False
        # objects
        if isinstance(value, dict):
            for name in schema.get("required", ()):
                if name not in value:
                    return False
            properties = schema.get("properties", {})
            for name, subvalue in value.items():
                if name in properties:
                    if not self._valid(
                        properties[name], subvalue, depth + 1
                    ):
                        return False
                else:
                    additional = schema.get("additionalProperties", True)
                    if additional is False:
                        return False
                    if isinstance(additional, dict):
                        if not self._valid(additional, subvalue, depth + 1):
                            return False
        # arrays
        if isinstance(value, list):
            if "minItems" in schema and len(value) < schema["minItems"]:
                return False
            if "maxItems" in schema and len(value) > schema["maxItems"]:
                return False
            items = schema.get("items")
            if isinstance(items, (dict, bool)):
                if not all(
                    self._valid(items, item, depth + 1) for item in value
                ):
                    return False
            elif isinstance(items, list):
                for item, subschema in zip(value, items):
                    if not self._valid(subschema, item, depth + 1):
                        return False
        # combinators
        for subschema in schema.get("allOf", ()):
            if not self._valid(subschema, value, depth + 1):
                return False
        if "anyOf" in schema:
            if not any(
                self._valid(s, value, depth + 1) for s in schema["anyOf"]
            ):
                return False
        if "oneOf" in schema:
            matches = sum(
                self._valid(s, value, depth + 1) for s in schema["oneOf"]
            )
            if matches != 1:
                return False
        if "not" in schema:
            if self._valid(schema["not"], value, depth + 1):
                return False
        return True

    # -- structural walks ---------------------------------------------------------------

    def _subschemas(self, schema: Any):
        """Immediate subschemas of a schema object (not following $ref)."""
        if not isinstance(schema, dict):
            return
        for name in ("items", "additionalProperties", "not"):
            sub = schema.get(name)
            if isinstance(sub, (dict, bool)):
                yield sub
            elif isinstance(sub, list):
                yield from sub
        for name in ("allOf", "anyOf", "oneOf"):
            for sub in schema.get(name, ()):
                yield sub
        for container in ("properties", "definitions", "$defs"):
            for sub in schema.get(container, {}).values():
                yield sub

    def walk(self):
        """All schema objects in the document (pre-order)."""
        stack = [self.document]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                sub for sub in self._subschemas(node) if sub is not True
                and sub is not False
            )

    # -- the Maiwald et al. metrics --------------------------------------------------------

    def size(self) -> int:
        """Number of schema objects (the study's size metric)."""
        return sum(1 for _node in self.walk())

    def types_used(self) -> Set[str]:
        out: Set[str] = set()
        for node in self.walk():
            declared = node.get("type") if isinstance(node, dict) else None
            if isinstance(declared, str):
                out.add(declared)
            elif isinstance(declared, list):
                out.update(declared)
        return out

    def _reference_edges(self) -> Dict[str, Set[str]]:
        """Edges between definition anchors via $ref (for recursion)."""

        def refs_in(schema: Any) -> Set[str]:
            out: Set[str] = set()
            stack = [schema]
            while stack:
                node = stack.pop()
                if isinstance(node, dict):
                    if "$ref" in node:
                        out.add(node["$ref"])
                    for sub in self._subschemas(node):
                        stack.append(sub)
            return out

        edges: Dict[str, Set[str]] = {"#": set()}
        anchors: Dict[str, Any] = {"#": self.document}
        if isinstance(self.document, dict):
            for container in ("definitions", "$defs"):
                for name, sub in self.document.get(container, {}).items():
                    anchors[f"#/{container}/{name}"] = sub
        for anchor, schema in anchors.items():
            if anchor == "#":
                # the root's direct refs, excluding definition bodies
                shallow = dict(self.document)
                shallow.pop("definitions", None)
                shallow.pop("$defs", None)
                edges[anchor] = refs_in(shallow)
            else:
                edges[anchor] = refs_in(schema)
        return edges

    def is_recursive(self) -> bool:
        """Whether the $ref graph has a cycle (26/159 in the study)."""
        edges = self._reference_edges()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {anchor: WHITE for anchor in edges}

        def visit(anchor: str) -> bool:
            color[anchor] = GRAY
            for target in edges.get(anchor, ()):
                if target not in color:
                    continue  # dangling ref: treated as leaf
                if color[target] == GRAY:
                    return True
                if color[target] == WHITE and visit(target):
                    return True
            color[anchor] = BLACK
            return False

        return any(
            visit(anchor)
            for anchor in edges
            if color[anchor] == WHITE
        )

    def max_nesting_depth(self, limit: int = 300) -> Opt[int]:
        """Maximum instance nesting depth the schema allows; ``None``
        when recursive (unbounded).  3–43 in the study, average 11."""
        if self.is_recursive():
            return None

        def depth_of(schema: Any, seen: int) -> int:
            if seen > limit:
                raise SchemaError("schema deeper than limit")
            if not isinstance(schema, dict):
                return 1
            if "$ref" in schema:
                return depth_of(self.resolve_ref(schema["$ref"]), seen + 1)
            best = 1
            nested = []
            for name in ("properties",):
                nested.extend(schema.get(name, {}).values())
            items = schema.get("items")
            if isinstance(items, (dict,)):
                nested.append(items)
            elif isinstance(items, list):
                nested.extend(items)
            additional = schema.get("additionalProperties")
            if isinstance(additional, dict):
                nested.append(additional)
            for sub in nested:
                best = max(best, 1 + depth_of(sub, seen + 1))
            for combinator in ("allOf", "anyOf", "oneOf"):
                for sub in schema.get(combinator, ()):
                    best = max(best, depth_of(sub, seen + 1))
            return best

        return depth_of(self.document, 0)

    def is_schema_full(self) -> bool:
        """Schema-full: the root (and every object schema) forbids
        additional properties.  JSON Schema is schema-mixed by default;
        the study found explicit schema-full mode in only 8/159 schemas.
        We report the root-level setting, as the study did."""
        if not isinstance(self.document, dict):
            return False
        return self.document.get("additionalProperties") is False

    def uses_negation(self) -> bool:
        """Whether ``not`` occurs anywhere (2.6% of schemas in the
        Baazizi et al. study)."""
        return any(
            isinstance(node, dict) and "not" in node
            for node in self.walk()
        )

    def negation_patterns(self) -> List[str]:
        """Classify the ``not`` usages the way Baazizi et al. did:
        'forbidden' (not-required: a workaround for a missing keyword),
        'implication' (inside anyOf: ¬x ∨ y), or 'other'."""
        patterns: List[str] = []
        for node in self.walk():
            if not isinstance(node, dict):
                continue
            if "not" in node:
                negated = node["not"]
                if isinstance(negated, dict) and set(negated) <= {
                    "required"
                }:
                    patterns.append("forbidden")
                else:
                    patterns.append("other")
            for sub in node.get("anyOf", ()):
                if isinstance(sub, dict) and "not" in sub:
                    patterns.append("implication")
        return patterns


def schema_report(schema: JSONSchema) -> Dict[str, object]:
    """The per-schema record of the Maiwald et al. study."""
    recursive = schema.is_recursive()
    return {
        "size": schema.size(),
        "types": sorted(schema.types_used()),
        "recursive": recursive,
        "max_nesting_depth": (
            None if recursive else schema.max_nesting_depth()
        ),
        "schema_full": schema.is_schema_full(),
        "uses_negation": schema.uses_negation(),
        "negation_patterns": schema.negation_patterns(),
    }


# ---------------------------------------------------------------------------
# Corpus generation (the SchemaStore substitute, DESIGN.md §2)
# ---------------------------------------------------------------------------


def random_json_schema(
    rng,
    recursive_rate: float = 0.16,
    schema_full_rate: float = 0.05,
    negation_rate: float = 0.026,
    max_depth: int = 6,
) -> JSONSchema:
    """A random JSON Schema with the study's headline rates as targets
    (26/159 ≈ 16% recursive, 8/159 ≈ 5% schema-full, 2.6% negation)."""

    def leaf() -> dict:
        kind = rng.choice(["string", "integer", "number", "boolean"])
        schema: dict = {"type": kind}
        if kind == "string" and rng.random() < 0.3:
            schema["maxLength"] = rng.randint(5, 100)
        if kind in ("integer", "number") and rng.random() < 0.3:
            schema["minimum"] = 0
        return schema

    def build(depth: int) -> dict:
        if depth >= max_depth or rng.random() < 0.35:
            return leaf()
        if rng.random() < 0.25:
            return {"type": "array", "items": build(depth + 1)}
        properties = {
            f"field{i}": build(depth + 1)
            for i in range(rng.randint(1, 4))
        }
        schema: dict = {"type": "object", "properties": properties}
        names = list(properties)
        if names and rng.random() < 0.6:
            schema["required"] = rng.sample(
                names, rng.randint(1, len(names))
            )
        return schema

    document = build(0)
    if rng.random() < negation_rate:
        document.setdefault("properties", {})["flag"] = {
            "not": {"required": ["legacy"]}
        }
    if rng.random() < recursive_rate:
        document["definitions"] = {
            "node": {
                "type": "object",
                "properties": {
                    "children": {
                        "type": "array",
                        "items": {"$ref": "#/definitions/node"},
                    }
                },
            }
        }
        document.setdefault("properties", {})["tree"] = {
            "$ref": "#/definitions/node"
        }
    if rng.random() < schema_full_rate:
        document["additionalProperties"] = False
    return JSONSchema(document)


def corpus_study_json_schemas(schemas: List[JSONSchema]) -> Dict[str, object]:
    """The aggregate Maiwald/Baazizi study over a schema corpus."""
    reports = [schema_report(schema) for schema in schemas]
    recursive = sum(1 for report in reports if report["recursive"])
    depths = [
        report["max_nesting_depth"]
        for report in reports
        if report["max_nesting_depth"] is not None
    ]
    return {
        "schemas": len(reports),
        "recursive": recursive,
        "max_depth_range": (
            (min(depths), max(depths)) if depths else (0, 0)
        ),
        "average_depth": sum(depths) / len(depths) if depths else 0.0,
        "schema_full": sum(1 for r in reports if r["schema_full"]),
        "negation_fraction": (
            sum(1 for r in reports if r["uses_negation"]) / len(reports)
            if reports
            else 0.0
        ),
    }
