"""Node-labeled ordered trees — the paper's abstraction of XML and JSON
data (Section 3).

A tree ``T = (V, E, lab)`` has a finite node set, a child relation and a
labeling function.  Our representation keeps children in order (XML trees
are always ordered; for JSON the order of object keys is preserved as
read), supports the statistics reported in practical studies (depth,
branching, label distributions), and is the input type of the validators
in :mod:`repro.trees.dtd` and :mod:`repro.trees.edtd`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional as Opt, Tuple


@dataclass
class TreeNode:
    """One node of a labeled ordered tree.

    Attributes
    ----------
    label:
        The node label (an XML element name, a JSON key, …).
    children:
        Ordered child list.
    value:
        Optional data value attached to the node (text content of an XML
        element, a JSON scalar).  The theoretical abstraction ignores
        values (Example 3.1 discusses the modelling choice); they are kept
        for round-tripping.
    attributes:
        Optional XML attributes; like values, ignored by validators.
    """

    label: str
    children: List["TreeNode"] = field(default_factory=list)
    value: Opt[object] = None
    attributes: Dict[str, str] = field(default_factory=dict)

    def add_child(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return child

    def child_word(self) -> Tuple[str, ...]:
        """The label word ``lab(v1) … lab(vn)`` of the ordered children —
        what a DTD rule's regular expression must match."""
        return tuple(child.label for child in self.children)

    def is_leaf(self) -> bool:
        return not self.children

    # -- traversal -------------------------------------------------------------

    def walk(self) -> Iterator["TreeNode"]:
        """Pre-order (document-order) traversal."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_with_depth(self) -> Iterator[Tuple["TreeNode", int]]:
        stack = [(self, 1)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            stack.extend((child, depth + 1) for child in reversed(node.children))

    def __repr__(self) -> str:
        return f"TreeNode({self.label!r}, {len(self.children)} children)"


@dataclass
class Tree:
    """A node-labeled ordered tree with a designated root."""

    root: TreeNode

    @classmethod
    def build(cls, label: str, *children) -> "Tree":
        """Convenience constructor from nested tuples/strings::

            Tree.build("persons",
                       ("person", "name", ("birthplace", "city", "state")))
        """

        def make(spec) -> TreeNode:
            if isinstance(spec, str):
                return TreeNode(spec)
            head, *rest = spec
            node = TreeNode(head)
            for sub in rest:
                node.add_child(make(sub))
            return node

        root = TreeNode(label)
        for child in children:
            root.add_child(make(child))
        return cls(root)

    # -- statistics (the metrics practical studies report, Section 3.1) -------

    def node_count(self) -> int:
        return sum(1 for _ in self.root.walk())

    def depth(self) -> int:
        """Height of the tree: 1 for a single root node.

        The paper cites DBLP depth 7, Treebank depth 37, Swissprot 6.
        """
        return max(depth for _node, depth in self.root.walk_with_depth())

    def max_branching(self) -> int:
        return max(len(node.children) for node in self.root.walk())

    def average_branching(self) -> float:
        internal = [
            len(node.children)
            for node in self.root.walk()
            if node.children
        ]
        if not internal:
            return 0.0
        return sum(internal) / len(internal)

    def label_distribution(self) -> Counter:
        return Counter(node.label for node in self.root.walk())

    def labels(self) -> frozenset:
        return frozenset(node.label for node in self.root.walk())

    # -- structural operations --------------------------------------------------

    def relabel(self, mapping: Callable[[str], str]) -> "Tree":
        """A new tree with every label passed through ``mapping`` — used
        by EDTD validation (the ``µ`` homomorphism of Definition 4.10)."""

        def copy(node: TreeNode) -> TreeNode:
            out = TreeNode(
                mapping(node.label), value=node.value,
                attributes=dict(node.attributes),
            )
            out.children = [copy(child) for child in node.children]
            return out

        return Tree(copy(self.root))

    def equal_structure(self, other: "Tree") -> bool:
        """Label-and-shape equality (ignores values and attributes)."""

        def eq(a: TreeNode, b: TreeNode) -> bool:
            if a.label != b.label or len(a.children) != len(b.children):
                return False
            return all(eq(x, y) for x, y in zip(a.children, b.children))

        return eq(self.root, other.root)

    def nodes_breadth_first(self) -> Iterator[TreeNode]:
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    def __repr__(self) -> str:
        return f"Tree(root={self.root.label!r}, nodes={self.node_count()})"


def is_broad_and_shallow(
    tree: Tree, depth_limit: int = 40, min_ratio: float = 2.0
) -> bool:
    """The structural observation of Section 3.1: real XML data sets with
    millions of nodes have bounded depth ("broad and shallow").

    Returns true when depth ≤ ``depth_limit`` and the node/depth ratio is
    at least ``min_ratio``.
    """
    depth = tree.depth()
    return depth <= depth_limit and tree.node_count() >= min_ratio * depth
