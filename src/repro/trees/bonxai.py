"""Pattern-based schemas in the style of BonXai (Section 4.4).

A pattern-based schema is a set of rules ``φ → e`` where ``φ`` selects
nodes by their *ancestor path* and ``e`` is a regular expression over
element labels.  A tree satisfies the schema if

1. every node is selected by at least one left-hand side, and
2. for every rule ``φ → e`` selecting a node ``v``, the children of
   ``v`` match ``e``.

Patterns support the two XPath axes the paper's example uses::

    a            selects every node labeled a
    //b//h       selects h-nodes with a b-labeled ancestor
    /a/b         selects b-children of the a-labeled root

Internally a pattern is compiled to a regular expression over ancestor
label words (``//b//h`` becomes ``Σ* b Σ* h``), which makes both
matching and the conversion to a single-type EDTD (:func:`to_edtd`)
uniform: the EDTD's types are the reachable states of the product DFA of
all pattern automata — exactly the "nearest distinguishing ancestor"
intuition behind Figure 2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional as Opt, Sequence, Set, Tuple

from ..errors import ParseError, SchemaError
from ..regex.ast import Regex
from ..regex.automata import NFA
from ..regex.convert import intersection_regex
from ..regex.parser import parse as parse_regex
from .edtd import EDTD
from .tree import Tree, TreeNode


@dataclass(frozen=True)
class PathPattern:
    """An ancestor-path pattern: steps of (axis, label).

    ``axis`` is ``"child"`` (``/``) or ``"descendant"`` (``//``).  The
    first step is anchored at the root for ``/`` and floats for ``//``;
    a bare label ``a`` is shorthand for ``//a``.
    """

    steps: Tuple[Tuple[str, str], ...]

    @classmethod
    def parse(cls, text: str) -> "PathPattern":
        text = text.strip()
        if not text:
            raise ParseError("empty pattern")
        if not text.startswith("/"):
            text = "//" + text
        steps: List[Tuple[str, str]] = []
        i = 0
        n = len(text)
        while i < n:
            if text.startswith("//", i):
                axis, i = "descendant", i + 2
            elif text.startswith("/", i):
                axis, i = "child", i + 1
            else:
                raise ParseError(f"expected axis at position {i} in {text!r}")
            start = i
            while i < n and text[i] != "/":
                i += 1
            label = text[start:i]
            if not label:
                raise ParseError(f"missing label at position {start}")
            steps.append((axis, label))
        return cls(tuple(steps))

    def matches(self, ancestor_path: Sequence[str]) -> bool:
        """Whether the pattern selects a node whose root-to-node label
        path is ``ancestor_path`` (root first, node's own label last)."""
        return self._match_from(0, 0, tuple(ancestor_path))

    def _match_from(
        self, step_index: int, path_index: int, path: Tuple[str, ...]
    ) -> bool:
        if step_index == len(self.steps):
            return path_index == len(path)
        axis, label = self.steps[step_index]
        if axis == "child":
            if path_index < len(path) and path[path_index] == label:
                return self._match_from(step_index + 1, path_index + 1, path)
            return False
        # descendant: skip zero or more labels before matching
        for skip in range(path_index, len(path)):
            if path[skip] == label:
                if self._match_from(step_index + 1, skip + 1, path):
                    return True
        return False

    def to_word_nfa(self, alphabet: Sequence[str]) -> NFA:
        """An NFA over ancestor words: ``//b//h`` becomes ``Σ* b Σ* h``."""
        sigma = list(alphabet)
        nfa = NFA(1, {0}, set(), [{}], set(sigma))
        current = 0
        for axis, label in self.steps:
            if axis == "descendant":
                for letter in sigma:
                    nfa.add_transition(current, letter, current)
            nxt = nfa.add_state()
            nfa.add_transition(current, label, nxt)
            current = nxt
        nfa.finals = {current}
        return nfa

    def __str__(self) -> str:
        return "".join(
            ("//" if axis == "descendant" else "/") + label
            for axis, label in self.steps
        )


@dataclass
class PatternRule:
    """One rule ``φ → e`` of a pattern-based schema."""

    pattern: PathPattern
    content: Regex

    @classmethod
    def parse(cls, pattern_text: str, content_text: str) -> "PatternRule":
        from ..regex.ast import EPSILON

        content = (
            EPSILON
            if not content_text.strip()
            else parse_regex(content_text, multi_char=True)
        )
        return cls(PathPattern.parse(pattern_text), content)


@dataclass
class PatternSchema:
    """A pattern-based (BonXai-style) schema: an ordered list of rules.

    Semantics follow the paper exactly: *all* rules whose pattern selects
    a node constrain that node's children (conjunctively), and every
    node must be selected by at least one rule.
    """

    rules: List[PatternRule]

    @classmethod
    def from_rules(cls, rules: Dict[str, str]) -> "PatternSchema":
        """Build from ``{pattern: content-model}`` as in Figure 2b::

            PatternSchema.from_rules({
                "a": "b + c",
                "b": "edf",
                "c": "edf",
                "d": "ghi",
                "//b//h": "j",
                "//c//h": "k",
            })
        """
        return cls(
            [PatternRule.parse(pat, body) for pat, body in rules.items()]
        )

    def alphabet(self) -> FrozenSet[str]:
        labels: Set[str] = set()
        for rule in self.rules:
            labels |= rule.content.alphabet()
            labels |= {label for _axis, label in rule.pattern.steps}
        return frozenset(labels)

    # -- validation -----------------------------------------------------------------

    def first_violation(self, tree: Tree) -> Opt[str]:
        from ..regex.automata import glushkov as _glushkov

        automata = [_glushkov(rule.content) for rule in self.rules]

        def visit(node: TreeNode, path: Tuple[str, ...]) -> Opt[str]:
            full_path = path + (node.label,)
            matched = [
                i
                for i, rule in enumerate(self.rules)
                if rule.pattern.matches(full_path)
            ]
            if not matched:
                return (
                    f"node at /{'/'.join(full_path)} is selected by no rule"
                )
            word = node.child_word()
            for i in matched:
                if not automata[i].accepts(word):
                    return (
                        f"children of /{'/'.join(full_path)} "
                        f"({' '.join(word) or 'ε'}) violate rule "
                        f"{self.rules[i].pattern} -> {self.rules[i].content}"
                    )
            for child in node.children:
                violation = visit(child, full_path)
                if violation:
                    return violation
            return None

        return visit(tree.root, ())

    def validate(self, tree: Tree) -> bool:
        return self.first_violation(tree) is None

    # -- conversion to a single-type EDTD ---------------------------------------------

    def to_edtd(self, max_types: int = 5000) -> EDTD:
        """Compile to a single-type EDTD.

        Types are the reachable states of the product of the per-pattern
        ancestor-word automata, refined by label: a type ``(label, q)``
        says "this node has this label and its ancestor word drives the
        pattern automata into joint state q".  The content model of a
        type is the conjunction (intersection) of the right-hand sides of
        all rules matched at that state; nodes matched by no rule get the
        empty language, making such contexts unsatisfiable — mirroring
        condition (1) of the semantics.
        """
        sigma = sorted(self.alphabet())
        nfas = [rule.pattern.to_word_nfa(sigma) for rule in self.rules]
        start_config = tuple(
            nfa.epsilon_closure(nfa.initial) for nfa in nfas
        )

        # type = (label, config-after-reading-label)
        TypeKey = Tuple[str, Tuple[frozenset, ...]]
        type_names: Dict[TypeKey, str] = {}
        rules: Dict[str, Regex] = {}
        mu: Dict[str, str] = {}
        queue: deque = deque()

        def intern(label: str, config) -> str:
            key = (label, config)
            if key not in type_names:
                if len(type_names) >= max_types:
                    raise SchemaError(
                        "pattern schema compiles to too many types"
                    )
                name = f"{label}#{len(type_names)}"
                type_names[key] = name
                mu[name] = label
                queue.append(key)
            return type_names[key]

        def step(config, label: str):
            return tuple(
                nfa.step(component, label)
                for nfa, component in zip(nfas, config)
            )

        start_types = set()
        for label in sigma:
            config = step(start_config, label)
            start_types.add(intern(label, config))

        from ..regex.ast import (
            Concat,
            EMPTY,
            Optional as Opt_,
            Plus,
            Star,
            Symbol,
            Union,
        )

        while queue:
            label, config = queue.popleft()
            name = type_names[(label, config)]
            matched = [
                i
                for i, nfa in enumerate(nfas)
                if config[i] & nfa.finals
            ]
            if not matched:
                rules[name] = EMPTY
                continue
            content = intersection_regex(
                [self.rules[i].content for i in matched]
            )
            # retype the content model: child label -> child type name
            child_types = {
                child_label: intern(child_label, step(config, child_label))
                for child_label in content.alphabet()
            }

            def retype(expr: Regex) -> Regex:
                if isinstance(expr, Symbol):
                    return Symbol(child_types[expr.label])
                if isinstance(expr, Concat):
                    return Concat(tuple(retype(p) for p in expr.parts))
                if isinstance(expr, Union):
                    return Union(tuple(retype(p) for p in expr.parts))
                if isinstance(expr, Star):
                    return Star(retype(expr.child))
                if isinstance(expr, Plus):
                    return Plus(retype(expr.child))
                if isinstance(expr, Opt_):
                    return Opt_(retype(expr.child))
                return expr

            rules[name] = retype(content)

        return EDTD(rules, frozenset(start_types), mu)
