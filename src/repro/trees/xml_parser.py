"""A from-scratch XML parser with the well-formedness error taxonomy of
the Grijzenhout & Marx study (Section 3.1).

The study found that 85% of 180k crawled XML files are well-formed and
that 9 error categories account for 99% of the violations, the top three
(79.9%) being *tag mismatch*, *premature end of data* and *improper
encoding*.  This module provides:

* :func:`parse_xml` — parse a document into a :class:`~repro.trees.tree.Tree`,
  raising :class:`~repro.errors.XMLParseError` with a machine-readable
  ``category`` on the first violation;
* :func:`check_well_formedness` — collect *all* detected violations,
  mirroring how the study classified its corpus;
* :func:`attempt_repair` — the simple recovery strategies the study
  suggests are feasible for the dominant categories (auto-closing and
  re-pairing mismatched tags).

The parser covers the XML subset relevant for structural studies:
elements, attributes, text, comments, processing instructions, CDATA and
an optional XML declaration.  DOCTYPE internal subsets are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional as Opt, Tuple

from ..errors import XMLParseError
from .tree import Tree, TreeNode

# Error categories, named after the study's taxonomy.
TAG_MISMATCH = "tag-mismatch"  # opening and ending tag mismatch
PREMATURE_END = "premature-end"  # premature end of data in tag
BAD_ENCODING = "bad-encoding"  # improper UTF-8 encoding
UNCLOSED_ELEMENT = "unclosed-element"  # EOF with open elements
JUNK_AFTER_ROOT = "junk-after-root"  # content after the root element
MULTIPLE_ROOTS = "multiple-roots"
EMPTY_DOCUMENT = "empty-document"
BAD_ATTRIBUTE = "bad-attribute"  # malformed attribute syntax
UNESCAPED_CHAR = "unescaped-char"  # raw '<' or '&' in text content
STRAY_END_TAG = "stray-end-tag"  # end tag with no open element

ERROR_CATEGORIES = (
    TAG_MISMATCH,
    PREMATURE_END,
    BAD_ENCODING,
    UNCLOSED_ELEMENT,
    JUNK_AFTER_ROOT,
    MULTIPLE_ROOTS,
    EMPTY_DOCUMENT,
    BAD_ATTRIBUTE,
    UNESCAPED_CHAR,
    STRAY_END_TAG,
)

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


@dataclass
class XMLError:
    """One classified well-formedness violation."""

    category: str
    message: str
    position: int


@dataclass
class WellFormednessReport:
    """Outcome of :func:`check_well_formedness`.

    ``tree`` is always the best-effort recovered tree (when a root could
    be identified); it is only guaranteed faithful when ``well_formed``.
    """

    well_formed: bool
    errors: List[XMLError]
    tree: Opt[Tree] = None

    @property
    def primary_category(self) -> Opt[str]:
        return self.errors[0].category if self.errors else None


class _Scanner:
    """Character scanner with the error-collection plumbing."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def eof(self) -> bool:
        return self.pos >= self.n

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def skip_whitespace(self) -> None:
        while self.pos < self.n and self.text[self.pos].isspace():
            self.pos += 1

    def read_name(self) -> Opt[str]:
        if self.eof() or self.peek() not in _NAME_START:
            return None
        start = self.pos
        self.pos += 1
        while self.pos < self.n and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def find(self, token: str) -> int:
        return self.text.find(token, self.pos)


def _decode_entities(text: str, scanner_pos: int, errors: List[XMLError]) -> str:
    out: List[str] = []
    i = 0
    n = len(text)
    known = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
    while i < n:
        ch = text[i]
        if ch == "&":
            end = text.find(";", i + 1)
            if end == -1 or end - i > 12:
                errors.append(
                    XMLError(
                        UNESCAPED_CHAR,
                        "unescaped '&' in content",
                        scanner_pos + i,
                    )
                )
                out.append("&")
                i += 1
                continue
            entity = text[i + 1 : end]
            if entity.startswith("#"):
                try:
                    code = (
                        int(entity[2:], 16)
                        if entity[1:2] in ("x", "X")
                        else int(entity[1:])
                    )
                    out.append(chr(code))
                except ValueError:
                    errors.append(
                        XMLError(
                            UNESCAPED_CHAR,
                            f"bad character reference &{entity};",
                            scanner_pos + i,
                        )
                    )
            elif entity in known:
                out.append(known[entity])
            else:
                errors.append(
                    XMLError(
                        UNESCAPED_CHAR,
                        f"unknown entity &{entity};",
                        scanner_pos + i,
                    )
                )
            i = end + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_attributes(
    scanner: _Scanner, errors: List[XMLError]
) -> Tuple[dict, bool]:
    """Parse attributes up to '>' or '/>'.  Returns (attrs, self_closing).

    Raises XMLParseError(PREMATURE_END) when the tag never closes.
    """
    attributes: dict = {}
    while True:
        scanner.skip_whitespace()
        if scanner.eof():
            raise XMLParseError(
                "premature end of data inside tag",
                position=scanner.pos,
                category=PREMATURE_END,
            )
        if scanner.startswith("/>"):
            scanner.pos += 2
            return attributes, True
        if scanner.peek() == ">":
            scanner.advance()
            return attributes, False
        name = scanner.read_name()
        if name is None:
            errors.append(
                XMLError(
                    BAD_ATTRIBUTE,
                    f"malformed attribute near {scanner.peek()!r}",
                    scanner.pos,
                )
            )
            # resynchronize: always consume at least one character (a
            # lone '/' not followed by '>' would otherwise loop), then
            # skip to the next delimiter
            if not scanner.eof() and scanner.peek() != ">":
                scanner.advance()
            while not scanner.eof() and scanner.peek() not in ">/":
                scanner.advance()
            continue
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            errors.append(
                XMLError(
                    BAD_ATTRIBUTE,
                    f"attribute {name!r} without value",
                    scanner.pos,
                )
            )
            attributes[name] = ""
            continue
        scanner.advance()  # '='
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            errors.append(
                XMLError(
                    BAD_ATTRIBUTE,
                    f"unquoted value for attribute {name!r}",
                    scanner.pos,
                )
            )
            start = scanner.pos
            while not scanner.eof() and not scanner.peek().isspace() and (
                scanner.peek() not in ">/"
            ):
                scanner.advance()
            attributes[name] = scanner.text[start : scanner.pos]
            continue
        scanner.advance()
        end = scanner.find(quote)
        if end == -1:
            raise XMLParseError(
                f"unterminated value for attribute {name!r}",
                position=scanner.pos,
                category=PREMATURE_END,
            )
        attributes[name] = _decode_entities(
            scanner.text[scanner.pos : end], scanner.pos, errors
        )
        scanner.pos = end + 1


def _skip_markup(scanner: _Scanner) -> bool:
    """Skip comments, PIs, CDATA (handled by caller), DOCTYPE.

    Returns True when something was skipped.  Raises on unterminated
    constructs (premature end).
    """
    if scanner.startswith("<!--"):
        end = scanner.text.find("-->", scanner.pos + 4)
        if end == -1:
            raise XMLParseError(
                "unterminated comment",
                position=scanner.pos,
                category=PREMATURE_END,
            )
        scanner.pos = end + 3
        return True
    if scanner.startswith("<?"):
        end = scanner.text.find("?>", scanner.pos + 2)
        if end == -1:
            raise XMLParseError(
                "unterminated processing instruction",
                position=scanner.pos,
                category=PREMATURE_END,
            )
        scanner.pos = end + 2
        return True
    if scanner.startswith("<!DOCTYPE") or scanner.startswith("<!doctype"):
        depth = 0
        while not scanner.eof():
            ch = scanner.advance()
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                return True
        raise XMLParseError(
            "unterminated DOCTYPE",
            position=scanner.pos,
            category=PREMATURE_END,
        )
    return False


def parse_xml(text: str) -> Tree:
    """Parse ``text`` into a :class:`Tree`, raising on the first error."""
    report = check_well_formedness(text)
    if not report.well_formed:
        first = report.errors[0]
        raise XMLParseError(
            first.message, position=first.position, category=first.category
        )
    assert report.tree is not None
    return report.tree


def check_well_formedness(data) -> WellFormednessReport:
    """Classify ``data`` (str or bytes) like the Grijzenhout–Marx study.

    Byte input is decoded as UTF-8 first; decoding failures are the
    study's third-most-common category (:data:`BAD_ENCODING`).
    Collection is best-effort: after a fatal error (premature end) the
    scan stops, while recoverable errors (bad attributes, mismatched
    tags) are recorded and the scan continues.
    """
    errors: List[XMLError] = []
    if isinstance(data, bytes):
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            return WellFormednessReport(
                False,
                [XMLError(BAD_ENCODING, str(exc), exc.start)],
            )
    else:
        text = data

    scanner = _Scanner(text)
    root: Opt[TreeNode] = None
    stack: List[TreeNode] = []
    text_start = 0

    def flush_text(upto: int) -> None:
        if not stack:
            return
        chunk = text[text_start:upto]
        if chunk.strip():
            decoded = _decode_entities(chunk, text_start, errors)
            node = stack[-1]
            node.value = (node.value or "") + decoded.strip()

    try:
        while not scanner.eof():
            if scanner.peek() != "<":
                if not stack:
                    # text outside any element
                    start = scanner.pos
                    while not scanner.eof() and scanner.peek() != "<":
                        scanner.advance()
                    chunk = text[start : scanner.pos]
                    if chunk.strip():
                        category = (
                            JUNK_AFTER_ROOT if root is not None else EMPTY_DOCUMENT
                        )
                        errors.append(
                            XMLError(
                                category,
                                "character data outside the root element",
                                start,
                            )
                        )
                    continue
                text_start = scanner.pos
                while not scanner.eof() and scanner.peek() != "<":
                    if scanner.peek() == "&":
                        pass  # validated by _decode_entities at flush
                    scanner.advance()
                flush_text(scanner.pos)
                continue

            # markup
            if scanner.startswith("<![CDATA["):
                end = scanner.text.find("]]>", scanner.pos + 9)
                if end == -1:
                    raise XMLParseError(
                        "unterminated CDATA section",
                        position=scanner.pos,
                        category=PREMATURE_END,
                    )
                if stack:
                    node = stack[-1]
                    chunk = text[scanner.pos + 9 : end]
                    node.value = (node.value or "") + chunk
                scanner.pos = end + 3
                continue
            if _skip_markup(scanner):
                continue
            if scanner.startswith("</"):
                tag_pos = scanner.pos
                scanner.pos += 2
                name = scanner.read_name()
                scanner.skip_whitespace()
                if name is None or scanner.peek() != ">":
                    raise XMLParseError(
                        "malformed end tag",
                        position=tag_pos,
                        category=PREMATURE_END
                        if scanner.eof()
                        else TAG_MISMATCH,
                    )
                scanner.advance()
                if not stack:
                    errors.append(
                        XMLError(
                            STRAY_END_TAG,
                            f"end tag </{name}> with no open element",
                            tag_pos,
                        )
                    )
                    continue
                open_node = stack[-1]
                if open_node.label != name:
                    errors.append(
                        XMLError(
                            TAG_MISMATCH,
                            f"end tag </{name}> does not match open "
                            f"<{open_node.label}>",
                            tag_pos,
                        )
                    )
                    # recovery: close the innermost matching ancestor if
                    # one exists, else drop the end tag
                    labels = [node.label for node in stack]
                    if name in labels:
                        while stack and stack[-1].label != name:
                            stack.pop()
                        if stack:
                            stack.pop()
                    continue
                stack.pop()
                continue

            # start tag
            tag_pos = scanner.pos
            scanner.advance()  # '<'
            name = scanner.read_name()
            if name is None:
                errors.append(
                    XMLError(
                        UNESCAPED_CHAR,
                        "unescaped '<' in content",
                        tag_pos,
                    )
                )
                continue
            attributes, self_closing = _parse_attributes(scanner, errors)
            node = TreeNode(name, attributes=attributes)
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                root = node
            else:
                errors.append(
                    XMLError(
                        MULTIPLE_ROOTS,
                        f"second root element <{name}>",
                        tag_pos,
                    )
                )
            if not self_closing:
                stack.append(node)
    except XMLParseError as exc:
        errors.append(
            XMLError(exc.category or PREMATURE_END, exc.message, exc.position or 0)
        )
        return WellFormednessReport(False, errors)

    if stack:
        open_labels = ", ".join(node.label for node in stack)
        errors.append(
            XMLError(
                UNCLOSED_ELEMENT,
                f"end of document with open elements: {open_labels}",
                scanner.pos,
            )
        )
    if root is None:
        errors.append(
            XMLError(EMPTY_DOCUMENT, "no root element found", 0)
        )
    tree = Tree(root) if root is not None else None
    return WellFormednessReport(not errors, errors, tree)


def attempt_repair(text: str) -> Opt[Tree]:
    """Best-effort repair for the dominant error categories.

    The study observed that 9 categories cover 99% of violations and
    that the top ones are mechanically repairable.  We auto-close open
    elements at EOF, re-pair mismatched end tags with the innermost
    matching ancestor, and drop stray end tags / junk after the root.
    Returns the repaired tree, or ``None`` when no root can be recovered.
    """
    report = check_well_formedness(text)
    if report.well_formed:
        return report.tree
    positions = [
        err.position
        for err in report.errors
        if err.category == PREMATURE_END
    ]
    if positions:
        # premature-end repairs: truncate at the error and close elements
        truncated = text[: min(positions)]
        cut = truncated.rfind("<")
        if cut > 0:
            truncated = truncated[:cut]
        repaired = _close_all_open(truncated)
        return check_well_formedness(repaired).tree
    # the collecting parser already applied tag re-pairing and junk
    # dropping while building; its recovered tree is the repair
    if report.tree is not None:
        return report.tree
    return check_well_formedness(_close_all_open(text)).tree


def _close_all_open(text: str) -> str:
    """Append missing end tags, in reverse open order."""
    scanner = _Scanner(text)
    stack: List[str] = []
    while not scanner.eof():
        if scanner.peek() != "<":
            scanner.advance()
            continue
        if scanner.startswith("<!--") or scanner.startswith("<?") or (
            scanner.startswith("<![CDATA[") or scanner.startswith("<!DOCTYPE")
        ):
            try:
                if scanner.startswith("<![CDATA["):
                    end = scanner.text.find("]]>", scanner.pos)
                    scanner.pos = len(text) if end == -1 else end + 3
                else:
                    _skip_markup(scanner)
            except XMLParseError:
                break
            continue
        if scanner.startswith("</"):
            scanner.pos += 2
            name = scanner.read_name()
            if name and stack and name in stack:
                while stack and stack[-1] != name:
                    stack.pop()
                if stack:
                    stack.pop()
            gt = scanner.find(">")
            scanner.pos = len(text) if gt == -1 else gt + 1
            continue
        scanner.advance()
        name = scanner.read_name()
        if name is None:
            continue
        gt = scanner.find(">")
        if gt == -1:
            scanner.pos = len(text)
            continue
        self_closing = text[gt - 1] == "/"
        scanner.pos = gt + 1
        if not self_closing:
            stack.append(name)
    return text + "".join(f"</{name}>" for name in reversed(stack))


# ----------------------------------------------------------------------
# Incremental event streaming (chunked, no Tree construction)
# ----------------------------------------------------------------------


def _xml_decode_error(message: str, position: int) -> XMLParseError:
    return XMLParseError(message, position=position, category=BAD_ENCODING)


def iter_xml_events(source, chunk_size: int = 65536):
    """Yield ``("start", name)`` / ``("end", name)`` / ``("text", data)``
    events incrementally from ``source`` — a ``str``, ``bytes``, or a
    file-like object read in ``chunk_size`` pieces.

    No :class:`~repro.trees.tree.Tree` is ever built: memory is bounded
    by the largest single token (tag, comment, CDATA section) plus one
    chunk, so multi-GB documents stream in constant memory.  The
    tokenizer is deliberately structure-agnostic — tag balance and
    root-count checks are the *consumer's* job (the streaming validators
    detect them as malformed streams) — but lexically broken input
    (premature end of markup, bad names, undecodable bytes) raises
    :class:`~repro.errors.XMLParseError` with the study's category.

    Self-closing elements yield a ``start`` immediately followed by the
    matching ``end``.  Comments, processing instructions, DOCTYPE and
    the XML declaration are skipped; CDATA yields its content as text.
    Entity references in text are *not* decoded (validation only looks
    at structure).  Text may be split across several ``text`` events at
    chunk boundaries.
    """
    from .chunked import ChunkFeeder

    feeder = ChunkFeeder(source, chunk_size, error_factory=_xml_decode_error)
    yield from _iter_xml_events(feeder)


def _read_stream_name(feeder) -> str:
    first = feeder.peek()
    if first is None or first not in _NAME_START:
        raise XMLParseError(
            f"expected a name, found {first!r}",
            position=feeder.position,
            category=UNESCAPED_CHAR,
        )
    chars = [first]
    feeder.advance()
    while True:
        ch = feeder.peek()
        if ch is None or ch not in _NAME_CHARS:
            return "".join(chars)
        chars.append(ch)
        feeder.advance()


def _skip_stream_doctype(feeder) -> None:
    depth = 0
    while True:
        ch = feeder.peek()
        if ch is None:
            raise XMLParseError(
                "unterminated markup declaration",
                position=feeder.position,
                category=PREMATURE_END,
            )
        feeder.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return


def _iter_xml_events(feeder):
    while True:
        ch = feeder.peek()
        if ch is None:
            return
        if ch != "<":
            # Text run: emit what the buffer holds and loop; splitting
            # long runs keeps memory at one chunk.
            idx = feeder.buf.find("<", feeder.pos)
            end = len(feeder.buf) if idx == -1 else idx
            if end > feeder.pos:
                yield ("text", feeder.buf[feeder.pos : end])
                feeder.pos = end
            continue
        # Markup.  Classify by prefix (longest is 9 chars).
        feeder.ensure(9)
        if feeder.startswith("<!--"):
            feeder.advance(4)
            if feeder.take_until("-->") is None:
                raise XMLParseError(
                    "unterminated comment",
                    position=feeder.position,
                    category=PREMATURE_END,
                )
            continue
        if feeder.startswith("<![CDATA["):
            feeder.advance(9)
            content = feeder.take_until("]]>")
            if content is None:
                raise XMLParseError(
                    "unterminated CDATA section",
                    position=feeder.position,
                    category=PREMATURE_END,
                )
            if content:
                yield ("text", content)
            continue
        if feeder.startswith("<?"):
            feeder.advance(2)
            if feeder.take_until("?>") is None:
                raise XMLParseError(
                    "unterminated processing instruction",
                    position=feeder.position,
                    category=PREMATURE_END,
                )
            continue
        if feeder.startswith("<!"):
            feeder.advance(2)
            _skip_stream_doctype(feeder)
            continue
        if feeder.startswith("</"):
            feeder.advance(2)
            name = _read_stream_name(feeder)
            while True:
                ch = feeder.peek()
                if ch is None:
                    raise XMLParseError(
                        "premature end of data in end tag",
                        position=feeder.position,
                        category=PREMATURE_END,
                    )
                feeder.advance()
                if ch == ">":
                    break
                if not ch.isspace():
                    raise XMLParseError(
                        f"unexpected {ch!r} in end tag",
                        position=feeder.position,
                        category=BAD_ATTRIBUTE,
                    )
            yield ("end", name)
            continue
        # Start tag: strict attribute lexing (name, '=', quoted value),
        # matching the categories parse_xml raises for the same input.
        feeder.advance(1)
        name = _read_stream_name(feeder)
        self_closing = False
        while True:
            ch = feeder.peek()
            if ch is None:
                raise XMLParseError(
                    "premature end of data in tag",
                    position=feeder.position,
                    category=PREMATURE_END,
                )
            if ch.isspace():
                feeder.advance()
                continue
            if ch == ">":
                feeder.advance()
                break
            if ch == "/":
                feeder.advance()
                if feeder.peek() != ">":
                    raise XMLParseError(
                        f"malformed attribute near {feeder.peek()!r}",
                        position=feeder.position,
                        category=BAD_ATTRIBUTE,
                    )
                feeder.advance()
                self_closing = True
                break
            if ch not in _NAME_START:
                raise XMLParseError(
                    f"malformed attribute near {ch!r}",
                    position=feeder.position,
                    category=BAD_ATTRIBUTE,
                )
            attr = _read_stream_name(feeder)
            while feeder.peek() is not None and feeder.peek().isspace():
                feeder.advance()
            if feeder.peek() != "=":
                raise XMLParseError(
                    f"attribute {attr!r} without value",
                    position=feeder.position,
                    category=BAD_ATTRIBUTE,
                )
            feeder.advance()
            while feeder.peek() is not None and feeder.peek().isspace():
                feeder.advance()
            quote = feeder.peek()
            if quote not in ("'", '"'):
                raise XMLParseError(
                    f"unquoted value for attribute {attr!r}",
                    position=feeder.position,
                    category=BAD_ATTRIBUTE,
                )
            feeder.advance()
            while True:
                vch = feeder.peek()
                if vch is None:
                    raise XMLParseError(
                        f"unterminated value for attribute {attr!r}",
                        position=feeder.position,
                        category=PREMATURE_END,
                    )
                feeder.advance()
                if vch == quote:
                    break
        yield ("start", name)
        if self_closing:
            yield ("end", name)
