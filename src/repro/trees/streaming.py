"""Streaming (SAX-style) validation of XML event streams against DTDs.

Section 4.1 discusses streaming validation: non-recursive DTDs are
precisely those admitting constant-memory streaming validation of
well-formed input (Segoufin & Vianu).  This module implements the
stack-of-automata validator whose memory is bounded by

    (maximum document depth) × (largest content-model automaton),

which is a *constant* (independent of document length) exactly when the
DTD is non-recursive — the validator exposes its high-water stack depth
so the bench/tests can demonstrate the bound.

Events are ``("start", label)`` / ``("end", label)`` pairs; text events
are ignored by the structural abstraction.

Arbitrary (recursive, non-single-type) schemas stream through the
generalized NFTA validator in :mod:`repro.trees.automata`, for which
:class:`StreamingDTDValidator` is the one-candidate-per-label special
case.  :func:`events_of` feeds either validator straight from chunked
file-like XML/JSON input without materializing a tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional as Opt, Tuple

from ..errors import ValidationError
from ..regex.automata import NFA, glushkov
from .dtd import DTD
from .tree import Tree, TreeNode

Event = Tuple[str, str]


def events_of(
    source, *, format: Opt[str] = None, chunk_size: int = 65536
) -> Iterator[Event]:
    """The document-order event stream of ``source``.

    ``source`` may be a :class:`~repro.trees.tree.Tree` (walked
    directly), or a ``str`` / ``bytes`` / file-like object tokenized
    *incrementally* in ``chunk_size`` pieces via
    :func:`~repro.trees.xml_parser.iter_xml_events` or
    :func:`~repro.trees.json_parser.iter_json_events` — no tree is ever
    built, so multi-GB corpora stream in memory bounded by document
    depth.  ``format`` forces ``"xml"`` or ``"json"``; when omitted,
    textual input is sniffed by its first non-whitespace character
    (``<`` means XML) and file-like input defaults to XML.
    """
    if isinstance(source, Tree):
        return _tree_events(source)
    if format is None:
        if isinstance(source, (str, bytes, bytearray)):
            head = source.lstrip()[:1]
            xml = head in ("<", b"<")
        else:
            xml = True
        format = "xml" if xml else "json"
    if format == "xml":
        from .xml_parser import iter_xml_events

        return iter_xml_events(source, chunk_size=chunk_size)
    if format == "json":
        from .json_parser import iter_json_events

        return iter_json_events(source, chunk_size=chunk_size)
    raise ValueError(f"unknown event-stream format {format!r}")


def _tree_events(tree: Tree) -> Iterator[Event]:
    def emit(node: TreeNode) -> Iterator[Event]:
        yield ("start", node.label)
        for child in node.children:
            yield from emit(child)
        yield ("end", node.label)

    return emit(tree.root)


@dataclass
class StreamingDTDValidator:
    """Incremental validator; feed events, then call :meth:`finish`.

    Attributes
    ----------
    dtd:
        The DTD to validate against.
    max_stack_depth:
        High-water mark of the automaton stack — the validator's memory
        footprint, constant for non-recursive DTDs.
    """

    dtd: DTD
    max_stack_depth: int = 0
    _automata: Dict[str, NFA] = field(default_factory=dict)
    _stack: List[Tuple[str, FrozenSet[int]]] = field(default_factory=list)
    _done: bool = False
    _failed: Opt[str] = None

    def _automaton(self, label: str) -> NFA:
        if label not in self._automata:
            self._automata[label] = glushkov(self.dtd.expression_for(label))
        return self._automata[label]

    def feed(self, event: Event) -> bool:
        """Process one event; returns False once the stream is invalid."""
        if self._failed:
            return False
        kind, label = event
        if kind == "start":
            if not self._stack:
                if self._done:
                    self._failed = "second root element"
                    return False
                if label not in self.dtd.start_labels:
                    self._failed = f"root {label!r} is not a start label"
                    return False
            else:
                parent_label, states = self._stack[-1]
                nfa = self._automaton(parent_label)
                nxt = nfa.step(states, label)
                if not nxt:
                    self._failed = (
                        f"child {label!r} not allowed here under "
                        f"{parent_label!r}"
                    )
                    return False
                self._stack[-1] = (parent_label, nxt)
            own = self._automaton(label)
            self._stack.append(
                (label, own.epsilon_closure(own.initial))
            )
            self.max_stack_depth = max(self.max_stack_depth, len(self._stack))
            return True
        if kind == "text":
            # The structural abstraction ignores character data, so text
            # events never change validator state (they may appear anywhere,
            # even outside the root, mirroring ignorable whitespace).
            return True
        if kind == "end":
            if not self._stack or self._stack[-1][0] != label:
                self._failed = f"unbalanced end event for {label!r}"
                return False
            own_label, states = self._stack.pop()
            nfa = self._automaton(own_label)
            if not states & nfa.finals:
                self._failed = (
                    f"element {own_label!r} ended with incomplete content"
                )
                return False
            if not self._stack:
                self._done = True
            return True
        self._failed = f"unknown event kind {kind!r}"
        return False

    def finish(self) -> bool:
        """Whether the consumed stream was a valid document."""
        if self._failed:
            return False
        return self._done and not self._stack

    @property
    def failure(self) -> Opt[str]:
        return self._failed


def validate_stream(dtd: DTD, events: Iterable[Event]) -> bool:
    """Validate an event stream in one pass."""
    validator = StreamingDTDValidator(dtd)
    for event in events:
        if not validator.feed(event):
            return False
    return validator.finish()


def validate_stream_or_raise(dtd: DTD, events: Iterable[Event]) -> None:
    validator = StreamingDTDValidator(dtd)
    for event in events:
        if not validator.feed(event):
            raise ValidationError(validator.failure or "invalid stream")
    if not validator.finish():
        raise ValidationError(validator.failure or "premature end of stream")


def memory_bound(dtd: DTD) -> Opt[int]:
    """The provable stack-depth bound for this DTD.

    Equals the maximum document depth for non-recursive DTDs and ``None``
    (unbounded) for recursive ones — the dichotomy of Segoufin & Vianu
    cited in Section 4.1.
    """
    return dtd.max_document_depth()
