"""Calibrated XPath query corpora — the stand-in for the Baelde et al.
(21.1k queries) and Pasqua (95k expressions) corpora of Section 5.

Published findings the generator targets and the study reproduces:

* a power law on syntax-tree sizes: the majority of queries has size at
  most 13, with a long tail (256 queries of size ≥ 100 in 21.1k);
* axes used in 46.5% of expressions, dominated by child (31.1%) and
  attribute (17.1%), with descendant(-or-self) at 3.6%;
* over 90% of expressions are tree patterns (Pasqua), dropping to 68%
  among the 10% largest ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional as Opt, Tuple

from .xpath import (
    ATTRIBUTE,
    CHILD,
    DESCENDANT,
    XPathQuery,
    axes_used,
    is_downward,
    is_tree_pattern,
    syntax_size,
)


@dataclass
class XPathProfile:
    """Mixture parameters for the XPath corpus generator."""

    vocabulary: Tuple[str, ...] = (
        "book",
        "title",
        "author",
        "chapter",
        "section",
        "para",
        "item",
        "name",
        "ref",
        "note",
    )
    attributes: Tuple[str, ...] = ("id", "lang", "type", "href")
    p_descendant_step: float = 0.2
    p_attribute_final: float = 0.17
    p_predicate: float = 0.25
    p_wildcard: float = 0.04
    # size: geometric body with a heavy tail
    p_continue: float = 0.55
    p_heavy_tail: float = 0.01
    heavy_tail_length: Tuple[int, int] = (30, 60)


class XPathGenerator:
    """Generates XPath query texts matching the corpus statistics."""

    def __init__(self, profile: Opt[XPathProfile] = None, rng=None):
        self.profile = profile or XPathProfile()
        self.rng = rng or random.Random()

    def _name(self) -> str:
        if self.rng.random() < self.profile.p_wildcard:
            return "*"
        return self.rng.choice(self.profile.vocabulary)

    def _steps(self, count: int, allow_predicates: bool) -> str:
        out: List[str] = []
        for _ in range(count):
            axis = (
                "//"
                if self.rng.random() < self.profile.p_descendant_step
                else "/"
            )
            step = axis + self._name()
            if (
                allow_predicates
                and self.rng.random() < self.profile.p_predicate
            ):
                if self.rng.random() < 0.5:
                    step += f"[@{self.rng.choice(self.profile.attributes)}]"
                else:
                    step += f"[{self._name()}]"
            out.append(step)
        return "".join(out)

    def generate(self) -> str:
        rng = self.rng
        profile = self.profile
        if rng.random() < profile.p_heavy_tail:
            length = rng.randint(*profile.heavy_tail_length)
        else:
            length = 1
            while length < 25 and rng.random() < profile.p_continue:
                length += 1
        text = self._steps(length, allow_predicates=True)
        if rng.random() < profile.p_attribute_final:
            text += f"/@{rng.choice(profile.attributes)}"
        return text

    def generate_corpus(self, size: int) -> List[str]:
        return [self.generate() for _ in range(size)]


def xpath_corpus_study(texts: List[str]) -> Dict[str, object]:
    """The Baelde/Pasqua-style analysis over a list of XPath texts."""
    queries = [XPathQuery.parse(text) for text in texts]
    sizes = sorted(syntax_size(query) for query in queries)
    axis_counts = {CHILD: 0, DESCENDANT: 0, ATTRIBUTE: 0}
    for query in queries:
        for axis in axes_used(query):
            axis_counts[axis] += 1
    tree_patterns = sum(is_tree_pattern(query) for query in queries)
    downward = sum(is_downward(query) for query in queries)
    count = len(queries)
    # Pasqua: the tree-pattern share drops among the largest queries
    top_decile_cut = sizes[int(0.9 * count)] if count else 0
    large = [
        query for query in queries if syntax_size(query) >= top_decile_cut
    ]
    large_tree_patterns = sum(is_tree_pattern(query) for query in large)
    return {
        "queries": count,
        "median_size": sizes[count // 2] if count else 0,
        "size_at_most_13": sum(1 for s in sizes if s <= 13) / count
        if count
        else 0.0,
        "max_size": sizes[-1] if sizes else 0,
        "axis_fractions": {
            axis: axis_counts[axis] / count if count else 0.0
            for axis in axis_counts
        },
        "tree_pattern_fraction": tree_patterns / count if count else 0.0,
        "tree_pattern_fraction_large": (
            large_tree_patterns / len(large) if large else 0.0
        ),
        "downward_fraction": downward / count if count else 0.0,
    }
