"""Tree-structured data: the XML/JSON substrate of Sections 3–6.

Public surface:

* Trees: :class:`Tree`, :class:`TreeNode`
* Parsing: :func:`parse_xml`, :func:`check_well_formedness`,
  :func:`attempt_repair`, :func:`parse_json`, :func:`parse_json_tree`
* Schemas: :class:`DTD`, :func:`parse_dtd`, :class:`EDTD`,
  :func:`validate_single_type`, :class:`PatternSchema`
* Streaming: :class:`StreamingDTDValidator`, :func:`validate_stream`,
  :func:`events_of` (chunked XML/JSON sources), :func:`iter_xml_events`,
  :func:`iter_json_events`
* Tree automata: :class:`TreeAutomaton` (antichain inclusion,
  simulation reduction), :class:`StreamingTreeValidator`,
  :func:`validate_events`, :func:`schema_contains`
* Inference: :func:`infer_sore`, :func:`infer_chare`, :func:`learn_k_ore`,
  :func:`infer_dtd`
* Queries: :class:`XPathQuery`
* Corpora: :func:`generate_corpus`, :func:`random_dtd_corpus`
"""

from .automata import (
    StreamingTreeValidator,
    TreeAutomaton,
    compile_schema,
    contains_determinize,
    schema_contains,
    schema_equivalent,
    universal_automaton,
    validate_events,
    validate_events_or_raise,
)
from .bonxai import PathPattern, PatternRule, PatternSchema
from .dtd import (
    DTD,
    parse_dtd,
    sgml_unordered,
    sgml_unordered_approximation,
    uses_any_type,
)
from .edtd import EDTD, validate_single_type
from .inference import (
    build_soa,
    infer_chare,
    infer_dtd,
    infer_sore,
    learn_increasing_k,
    learn_k_ore,
    soa_accepts,
    soa_to_sore,
)
from .json_parser import (
    iter_json_events,
    json_nesting_depth,
    json_to_tree,
    parse_json,
    parse_json_tree,
)
from .jsonschema import (
    JSONSchema,
    corpus_study_json_schemas,
    random_json_schema,
    schema_report,
)
from .schema_corpus import (
    DTDCorpusProfile,
    corpus_statistics,
    random_dtd,
    random_dtd_corpus,
)
from .streaming import (
    StreamingDTDValidator,
    events_of,
    memory_bound,
    validate_stream,
    validate_stream_or_raise,
)
from .tree import Tree, TreeNode, is_broad_and_shallow
from .xml_corpus import (
    CorpusDocument,
    XMLCorpus,
    corpus_study,
    generate_corpus,
    inject_error,
    random_tree,
    serialize,
)
from .xml_parser import (
    ERROR_CATEGORIES,
    WellFormednessReport,
    XMLError,
    attempt_repair,
    check_well_formedness,
    iter_xml_events,
    parse_xml,
)
from .xpath import (
    XPathQuery,
    axes_used,
    is_downward,
    is_tree_pattern,
    syntax_size,
)
from .xpath_corpus import (
    XPathGenerator,
    XPathProfile,
    xpath_corpus_study,
)

__all__ = [
    "StreamingTreeValidator",
    "TreeAutomaton",
    "compile_schema",
    "contains_determinize",
    "schema_contains",
    "schema_equivalent",
    "universal_automaton",
    "validate_events",
    "validate_events_or_raise",
    "iter_json_events",
    "iter_xml_events",
    "PathPattern",
    "PatternRule",
    "PatternSchema",
    "DTD",
    "parse_dtd",
    "sgml_unordered",
    "sgml_unordered_approximation",
    "uses_any_type",
    "EDTD",
    "validate_single_type",
    "build_soa",
    "infer_chare",
    "infer_dtd",
    "infer_sore",
    "learn_increasing_k",
    "learn_k_ore",
    "soa_accepts",
    "soa_to_sore",
    "json_nesting_depth",
    "json_to_tree",
    "parse_json",
    "parse_json_tree",
    "DTDCorpusProfile",
    "corpus_statistics",
    "random_dtd",
    "random_dtd_corpus",
    "StreamingDTDValidator",
    "events_of",
    "memory_bound",
    "validate_stream",
    "validate_stream_or_raise",
    "Tree",
    "TreeNode",
    "is_broad_and_shallow",
    "CorpusDocument",
    "XMLCorpus",
    "corpus_study",
    "generate_corpus",
    "inject_error",
    "random_tree",
    "serialize",
    "ERROR_CATEGORIES",
    "WellFormednessReport",
    "XMLError",
    "attempt_repair",
    "check_well_formedness",
    "parse_xml",
    "XPathQuery",
    "axes_used",
    "is_downward",
    "is_tree_pattern",
    "syntax_size",
    "JSONSchema",
    "corpus_study_json_schemas",
    "random_json_schema",
    "schema_report",
    "XPathGenerator",
    "XPathProfile",
    "xpath_corpus_study",
]
