"""Tree patterns (twig queries) and a small navigational XPath fragment
(Section 5).

The Baelde et al. and Pasqua studies analyze XPath corpora by size,
axes used, and membership in fragments (positive XPath, downward XPath,
tree patterns).  This module implements the navigational core those
studies strip queries down to:

* :class:`XPathQuery` — an absolute location path with ``child`` and
  ``descendant`` axes, label or wildcard node tests, and nested
  predicates (``[...]``), i.e. *tree patterns* / twig queries;
* evaluation over :class:`~repro.trees.tree.Tree` (returns matching
  nodes in document order);
* the classification functions used for corpus studies:
  :func:`axes_used`, :func:`is_downward`, :func:`is_tree_pattern`,
  :func:`syntax_size`.

Grammar (a strict subset of XPath 1.0 abbreviated syntax)::

    path       := ('/' | '//') step (('/' | '//') step)*
    step       := nodetest predicate*
    nodetest   := NAME | '*'
    predicate  := '[' relpath ']'
    relpath    := step (('/' | '//') step)*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Set, Tuple

from ..errors import ParseError
from .tree import Tree, TreeNode

CHILD = "child"
DESCENDANT = "descendant"
ATTRIBUTE = "attribute"


@dataclass(frozen=True)
class Step:
    """One location step: axis, node test, and predicate subpatterns.

    The attribute axis (``@name``) selects the *owning element* when it
    carries the attribute — attributes are not nodes in our tree
    abstraction (Example 3.1 discusses this modelling choice), so
    ``//book/@id`` returns the books that have an ``id``.
    """

    axis: str  # CHILD, DESCENDANT or ATTRIBUTE
    test: str  # element name, attribute name, or '*'
    predicates: Tuple["RelativePath", ...] = ()

    def test_matches(self, node: TreeNode) -> bool:
        if self.axis == ATTRIBUTE:
            return self.test == "*" or self.test in node.attributes
        return self.test == "*" or node.label == self.test


@dataclass(frozen=True)
class RelativePath:
    """A predicate path, evaluated existentially from a context node."""

    steps: Tuple[Step, ...]

    def holds_at(self, node: TreeNode) -> bool:
        return any(True for _ in _evaluate_steps([node], self.steps))


@dataclass(frozen=True)
class XPathQuery:
    """An absolute navigational XPath query (a twig / tree pattern when
    it has no wildcards beyond the allowed ones — see
    :func:`is_tree_pattern`)."""

    steps: Tuple[Step, ...]

    @classmethod
    def parse(cls, text: str) -> "XPathQuery":
        steps, pos = _parse_steps(text.strip(), 0, absolute=True)
        if pos != len(text.strip()):
            raise ParseError(
                f"trailing characters in XPath query", position=pos
            )
        return cls(tuple(steps))

    def evaluate(self, tree: Tree) -> List[TreeNode]:
        """Matching nodes in document order."""
        context = [tree.root]
        # absolute paths start above the root: the first step selects from
        # the root "document node", i.e. child::root or descendant nodes
        matches = list(_evaluate_steps_absolute(tree, self.steps))
        seen: Set[int] = set()
        ordered: List[TreeNode] = []
        order = {id(node): i for i, node in enumerate(tree.root.walk())}
        for node in sorted(matches, key=lambda n: order[id(n)]):
            if id(node) not in seen:
                seen.add(id(node))
                ordered.append(node)
        return ordered

    def __str__(self) -> str:
        return _render_steps(self.steps, absolute=True)


def _render_steps(steps: Sequence[Step], absolute: bool) -> str:
    out = []
    for i, step in enumerate(steps):
        sep = "//" if step.axis == DESCENDANT else "/"
        if i == 0 and not absolute and step.axis in (CHILD, ATTRIBUTE):
            sep = ""
        test = ("@" + step.test) if step.axis == ATTRIBUTE else step.test
        out.append(sep + test)
        for predicate in step.predicates:
            out.append("[" + _render_steps(predicate.steps, False) + "]")
    return "".join(out)


def _parse_steps(
    text: str, pos: int, absolute: bool
) -> Tuple[List[Step], int]:
    steps: List[Step] = []
    n = len(text)
    first = True
    while pos < n and text[pos] != "]":
        if text.startswith("//", pos):
            axis, pos = DESCENDANT, pos + 2
        elif text.startswith("/", pos):
            axis, pos = CHILD, pos + 1
        elif first and not absolute:
            axis = CHILD
        else:
            break
        first = False
        if pos < n and text[pos] == "@":
            axis = ATTRIBUTE
            pos += 1
        start = pos
        while pos < n and (text[pos].isalnum() or text[pos] in "_-.*:"):
            pos += 1
        test = text[start:pos]
        if not test:
            raise ParseError("missing node test", position=pos)
        predicates: List[RelativePath] = []
        while pos < n and text[pos] == "[":
            inner, pos = _parse_steps(text, pos + 1, absolute=False)
            if pos >= n or text[pos] != "]":
                raise ParseError("unterminated predicate", position=pos)
            pos += 1
            predicates.append(RelativePath(tuple(inner)))
        steps.append(Step(axis, test, tuple(predicates)))
    if not steps:
        raise ParseError("empty path", position=pos)
    return steps, pos


def _axis_candidates(node: TreeNode, axis: str) -> Iterator[TreeNode]:
    if axis == CHILD:
        yield from node.children
    elif axis == ATTRIBUTE:
        # attribute steps filter the context node itself (see Step)
        yield node
    else:
        stack = list(node.children)
        while stack:
            current = stack.pop()
            yield current
            stack.extend(current.children)


def _evaluate_steps(
    context: Sequence[TreeNode], steps: Sequence[Step]
) -> Iterator[TreeNode]:
    current = list(context)
    for step in steps:
        nxt: List[TreeNode] = []
        for node in current:
            for candidate in _axis_candidates(node, step.axis):
                if step.test_matches(candidate) and all(
                    predicate.holds_at(candidate)
                    for predicate in step.predicates
                ):
                    nxt.append(candidate)
        current = nxt
    yield from current


def _evaluate_steps_absolute(
    tree: Tree, steps: Sequence[Step]
) -> Iterator[TreeNode]:
    """Absolute evaluation: the virtual document node has the root as its
    only child (so '/a' matches an a-labeled root; '//a' matches any)."""
    first, *rest = steps
    seeds: List[TreeNode] = []
    if first.axis == CHILD:
        candidates: List[TreeNode] = [tree.root]
    else:
        candidates = list(tree.root.walk())
    for candidate in candidates:
        if first.test_matches(candidate) and all(
            predicate.holds_at(candidate) for predicate in first.predicates
        ):
            seeds.append(candidate)
    yield from _evaluate_steps(seeds, rest)


# ---------------------------------------------------------------------------
# Corpus-study classifiers (Section 5)
# ---------------------------------------------------------------------------


def axes_used(query: XPathQuery) -> Set[str]:
    """The set of axes a query uses (the Baelde et al. axis census)."""
    out: Set[str] = set()

    def visit(steps: Sequence[Step]) -> None:
        for step in steps:
            out.add(step.axis)
            for predicate in step.predicates:
                visit(predicate.steps)

    visit(query.steps)
    return out


def is_downward(query: XPathQuery) -> bool:
    """Downward XPath: only child and descendant axes (attribute steps
    fall outside the downward navigational fragment)."""
    return axes_used(query) <= {CHILD, DESCENDANT}


def is_tree_pattern(query: XPathQuery) -> bool:
    """Tree patterns (twig queries): downward, no wildcard node tests on
    branching steps — we use the common definition 'no * at all'."""

    def visit(steps: Sequence[Step]) -> bool:
        for step in steps:
            if step.test == "*":
                return False
            for predicate in step.predicates:
                if not visit(predicate.steps):
                    return False
        return True

    return visit(query.steps)


def syntax_size(query: XPathQuery) -> int:
    """Number of nodes in the query's syntax tree (the size metric whose
    distribution Baelde et al. found to follow a power law)."""

    def visit(steps: Sequence[Step]) -> int:
        total = 0
        for step in steps:
            total += 1
            for predicate in step.predicates:
                total += visit(predicate.steps)
        return total

    return visit(query.steps)
