"""Schema inference from positive examples (Sections 4.2.2–4.2.3).

Regular expressions are not learnable in the limit from positive data
(Gold; Theorem 4.8 extends this to deterministic expressions), but the
practically dominant fragments are:

* :func:`build_soa` — the *single occurrence automaton* of a sample
  (2T-INF): nodes are alphabet symbols, with an edge ``a → b`` whenever
  ``b`` directly follows ``a`` in some sample word.
* :func:`soa_to_sore` — the REWRITE procedure of Bex, Neven, Schwentick &
  Vansummeren: contract the SOA into a single-occurrence regular
  expression using self-loop, concatenation, disjunction and optionality
  rewrite rules.  When the SOA language is not expressible as a SORE the
  function generalizes (documented per-rule) rather than fail — matching
  the published RWR² repair strategy's spirit.
* :func:`infer_chare` — the CRX-style chain-expression learner: contract
  strongly connected components of the SOA, order them topologically,
  and pick each factor's modifier from per-word occupancy counts.
* :func:`learn_k_ore` — a deterministic simplification of iDREGEx:
  occurrences are disambiguated by marking each symbol with its
  occurrence index (capped at k), a SORE is learned over the marked
  alphabet, and the marks are erased.  Soundness (sample ⊆ language) is
  preserved because mark-erasure is a homomorphism.
* :func:`infer_dtd` — whole-schema inference from a corpus of trees:
  one content model per label, inferred from all observed child words.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..regex.ast import (
    EPSILON,
    Regex,
    Symbol,
    concat as smart_concat,
    optional as smart_optional,
    plus as smart_plus,
    star as smart_star,
    union as smart_union,
)
from .dtd import DTD
from .tree import Tree

Word = Tuple[str, ...]

SRC = "\x00SRC"  # sentinel: NUL prefix cannot clash with real labels
SNK = "\x00SNK"


def build_soa(sample: Iterable[Word]) -> Dict[str, Set[str]]:
    """The single occurrence automaton as an adjacency map.

    Virtual nodes :data:`SRC` and :data:`SNK` mark word boundaries; an
    edge ``SRC → SNK`` records that the empty word is in the sample.
    """
    edges: Dict[str, Set[str]] = defaultdict(set)
    edges[SRC]  # ensure presence
    for word in sample:
        previous = SRC
        for symbol in word:
            edges[previous].add(symbol)
            edges.setdefault(symbol, set())
            previous = symbol
        edges[previous].add(SNK)
    edges.setdefault(SNK, set())
    return dict(edges)


def soa_accepts(edges: Dict[str, Set[str]], word: Word) -> bool:
    """Membership in the SOA language (used by tests and as the learning
    target: L(SOA) is the least SOA-shaped language containing the
    sample)."""
    previous = SRC
    for symbol in word:
        if symbol not in edges.get(previous, ()):
            return False
        previous = symbol
    return SNK in edges.get(previous, ())


# ---------------------------------------------------------------------------
# REWRITE: SOA -> SORE
# ---------------------------------------------------------------------------


class _RewriteGraph:
    """Mutable graph over regex-labeled nodes used by REWRITE."""

    def __init__(self, edges: Dict[str, Set[str]]):
        self.succ: Dict[str, Set[str]] = {
            node: set(targets) for node, targets in edges.items()
        }
        self.pred: Dict[str, Set[str]] = {node: set() for node in self.succ}
        for node, targets in self.succ.items():
            for target in targets:
                self.pred.setdefault(target, set()).add(node)
                self.succ.setdefault(target, set())
        for node in list(self.pred):
            self.succ.setdefault(node, set())
        self.label: Dict[str, Regex] = {
            node: Symbol(node)
            for node in self.succ
            if node not in (SRC, SNK)
        }

    def nodes(self) -> List[str]:
        return [n for n in self.succ if n not in (SRC, SNK)]

    def remove_edge(self, src: str, dst: str) -> None:
        self.succ[src].discard(dst)
        self.pred[dst].discard(src)

    def add_edge(self, src: str, dst: str) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def merge(self, keep: str, absorb: str, new_label: Regex) -> None:
        """Replace ``keep`` and ``absorb`` by one node (named ``keep``)."""
        for node in list(self.pred[absorb]):
            self.remove_edge(node, absorb)
            if node != absorb and node != keep:
                self.add_edge(node, keep)
        for node in list(self.succ[absorb]):
            self.remove_edge(absorb, node)
            if node != absorb and node != keep:
                self.add_edge(keep, node)
        del self.succ[absorb]
        del self.pred[absorb]
        del self.label[absorb]
        self.label[keep] = new_label

    # rewrite rules ------------------------------------------------------------

    def apply_self_loops(self) -> bool:
        changed = False
        for node in self.nodes():
            if node in self.succ[node]:
                self.remove_edge(node, node)
                self.label[node] = smart_plus(self.label[node])
                changed = True
        return changed

    def apply_disjunction(self) -> bool:
        nodes = self.nodes()
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if self.pred[u] == self.pred[v] and self.succ[u] == self.succ[v]:
                    self.merge(
                        u, v, smart_union(self.label[u], self.label[v])
                    )
                    return True
        return False

    def apply_concatenation(self) -> bool:
        for u in self.nodes():
            successors = self.succ[u]
            if len(successors) != 1:
                continue
            (v,) = successors
            if v in (SNK,) or v == u:
                continue
            if self.pred[v] != {u}:
                continue
            label = smart_concat(self.label[u], self.label[v])
            # contract v into u: u inherits v's successors
            for node in list(self.succ[v]):
                self.remove_edge(v, node)
                self.add_edge(u, node)
            self.remove_edge(u, v)
            del self.succ[v]
            del self.pred[v]
            del self.label[v]
            self.label[u] = label
            return True
        return False

    def apply_optionality(self) -> bool:
        """If every predecessor of v already bypasses v to every successor
        of v, make v optional and drop the bypass edges."""
        for v in self.nodes():
            preds = self.pred[v] - {v}
            succs = self.succ[v] - {v}
            if not preds or not succs:
                continue
            if all(
                succs <= self.succ[u] - {v} or succs <= self.succ[u]
                for u in preds
            ) and all(
                all(w in self.succ[u] for w in succs) for u in preds
            ):
                for u in preds:
                    for w in succs:
                        self.remove_edge(u, w)
                self.label[v] = smart_optional(self.label[v])
                return True
        return False


def soa_to_sore(edges: Dict[str, Set[str]]) -> Regex:
    """Contract an SOA into a regular expression via REWRITE.

    When the rules get stuck (the SOA language is not SORE-expressible),
    the remaining nodes are generalized into ``(a1 + … + ak)*``-style
    factors (the RWR² repair), so the result always contains the SOA
    language — possibly strictly.
    """
    graph = _RewriteGraph(edges)
    empty_word = SNK in graph.succ.get(SRC, set())
    if empty_word:
        graph.remove_edge(SRC, SNK)
    if not graph.nodes():
        return EPSILON

    while len(graph.nodes()) > 1:
        if graph.apply_self_loops():
            continue
        if graph.apply_concatenation():
            continue
        if graph.apply_disjunction():
            continue
        if graph.apply_optionality():
            continue
        # stuck: generalize the whole strongly-entangled remainder
        remainder = sorted(graph.nodes())
        symbols_expr = smart_union(
            *[graph.label[node] for node in remainder]
        )
        result: Regex = smart_plus(symbols_expr)
        if empty_word:
            result = smart_optional(result)
        return result

    graph.apply_self_loops()
    (node,) = graph.nodes()
    result = graph.label[node]
    if SNK in graph.succ.get(SRC, set()) or empty_word:
        result = smart_optional(result)
    return result


def infer_sore(sample: Iterable[Word]) -> Regex:
    """Learn a single-occurrence regular expression from positive data."""
    return soa_to_sore(build_soa(list(sample)))


# ---------------------------------------------------------------------------
# CRX: chain regular expression inference
# ---------------------------------------------------------------------------


def _scc_partition(edges: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan SCCs of the SOA restricted to proper symbols, returned in
    reverse topological order (which Tarjan yields naturally)."""
    nodes = [n for n in edges if n not in (SRC, SNK)]
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    def neighbours(node: str) -> List[str]:
        return [n for n in edges.get(node, ()) if n not in (SRC, SNK)]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(neighbours(root)))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(neighbours(nxt))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def infer_chare(sample: Iterable[Word]) -> Regex:
    """CRX-style inference of a chain regular expression.

    SCCs of the SOA become factors in topological order; each factor's
    modifier is chosen from the per-word occupancy counts (min 0 makes it
    optional, max > 1 makes it transitive).
    """
    words = [tuple(w) for w in sample]
    edges = build_soa(words)
    sccs = _scc_partition(edges)
    # Tarjan emits reverse-topological order; reverse for left-to-right
    ordered = list(reversed(sccs))
    factors: List[Regex] = []
    for component in ordered:
        counts = []
        for word in words:
            counts.append(sum(1 for symbol in word if symbol in component))
        minimum = min(counts) if counts else 0
        maximum = max(counts) if counts else 0
        if maximum == 0:
            continue
        base = smart_union(*[Symbol(s) for s in sorted(component)])
        has_internal_edge = any(
            nxt in component
            for symbol in component
            for nxt in edges.get(symbol, ())
        )
        transitive = maximum > 1 or has_internal_edge
        if transitive and minimum == 0:
            factors.append(smart_star(base))
        elif transitive:
            factors.append(smart_plus(base))
        elif minimum == 0:
            factors.append(smart_optional(base))
        else:
            factors.append(base)
    if not factors:
        return EPSILON
    return smart_concat(*factors)


# ---------------------------------------------------------------------------
# k-ORE inference (a deterministic iDREGEx surrogate)
# ---------------------------------------------------------------------------

_MARK = "\x1f"  # ASCII unit separator; never occurs in real labels


def _mark_word(word: Word, k: int) -> Word:
    seen: Dict[str, int] = {}
    out: List[str] = []
    for symbol in word:
        occurrence = min(seen.get(symbol, 0), k - 1)
        seen[symbol] = seen.get(symbol, 0) + 1
        out.append(f"{symbol}{_MARK}{occurrence}")
    return tuple(out)


def _erase_marks(expr: Regex) -> Regex:
    from ..regex.ast import Concat, Optional as Opt_, Plus, Star, Union

    if isinstance(expr, Symbol):
        return Symbol(expr.label.split(_MARK)[0])
    if isinstance(expr, Concat):
        return smart_concat(*[_erase_marks(p) for p in expr.parts])
    if isinstance(expr, Union):
        return smart_union(*[_erase_marks(p) for p in expr.parts])
    if isinstance(expr, Star):
        return smart_star(_erase_marks(expr.child))
    if isinstance(expr, Plus):
        return smart_plus(_erase_marks(expr.child))
    if isinstance(expr, Opt_):
        return smart_optional(_erase_marks(expr.child))
    return expr


def learn_k_ore(sample: Iterable[Word], k: int) -> Regex:
    """Learn a k-occurrence expression: mark occurrences (capped at k),
    learn a SORE over the marked alphabet, erase the marks.

    For ``k = 1`` this is exactly SORE inference.  Theorem 4.9 guarantees
    deterministic k-OREs are learnable in the limit; this surrogate is
    the deterministic core of the iDREGEx pipeline (the published system
    adds an HMM-based occurrence disambiguation)."""
    if k < 1:
        raise ValueError("k must be at least 1")
    if k == 1:
        return infer_sore(sample)
    marked = [_mark_word(tuple(w), k) for w in sample]
    return _erase_marks(infer_sore(marked))


def learn_increasing_k(
    sample: Iterable[Word], max_k: int = 4
) -> Tuple[int, Regex]:
    """iDREGEx's outer loop: try k = 1, 2, … and keep the first k whose
    learned expression is deterministic, else return the best (largest
    k) candidate.  Returns ``(k, expression)``."""
    from ..regex.determinism import is_deterministic

    words = [tuple(w) for w in sample]
    best: Tuple[int, Regex] = (1, infer_sore(words))
    for k in range(1, max_k + 1):
        candidate = learn_k_ore(words, k)
        best = (k, candidate)
        if is_deterministic(candidate):
            return k, candidate
    return best


# ---------------------------------------------------------------------------
# Whole-DTD inference
# ---------------------------------------------------------------------------


def infer_dtd(
    trees: Sequence[Tree], method: str = "sore"
) -> DTD:
    """Infer a DTD from a corpus of trees.

    ``method`` is ``"sore"`` (REWRITE) or ``"chare"`` (CRX).  Content
    models are inferred per label from all observed child words; start
    labels are the observed root labels.  The result always satisfies
    ``{T1, …, Tn} ⊆ L(D)`` (requirement (1) of Definition 4.7).
    """
    if method not in ("sore", "chare"):
        raise ValueError(f"unknown method {method!r}")
    samples: Dict[str, List[Word]] = defaultdict(list)
    roots: Set[str] = set()
    for tree in trees:
        roots.add(tree.root.label)
        for node in tree.root.walk():
            samples[node.label].append(node.child_word())
    infer = infer_sore if method == "sore" else infer_chare
    rules = {
        label: infer(words)
        for label, words in samples.items()
        if any(word for word in words)  # leave leaf labels implicit
    }
    if not roots:
        raise ValueError("need at least one tree")
    return DTD(rules, frozenset(roots))
