"""XML corpus generation with calibrated error injection — the stand-in
for the 180k crawled files of the Grijzenhout & Marx study (DESIGN.md §2).

The study's headline numbers, which the generator is calibrated to:

* 85% of the files are well-formed;
* the three dominant error categories — tag mismatch, premature end of
  data in a tag, improper UTF-8 encoding — account for 79.9% of errors;
* only 25% of the files reference a schema, and just over 10% of the
  well-formed documents are valid against it.

Generated documents come from random DTDs (so schema-validity studies
compose), serialized to text, then optionally corrupted with one of the
study's error types.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional as Opt, Tuple, Union as TUnion

from ..regex.sampling import sample_word
from .dtd import DTD
from .tree import Tree, TreeNode

#: injection kinds and their calibrated shares *among erroneous files*
DEFAULT_ERROR_MIX = (
    ("tag-mismatch", 0.42),
    ("premature-end", 0.25),
    ("bad-encoding", 0.13),
    ("unescaped-char", 0.08),
    ("stray-end-tag", 0.06),
    ("multiple-roots", 0.06),
)


def random_tree(
    dtd: DTD,
    rng: Opt[random.Random] = None,
    max_nodes: int = 300,
    max_depth: int = 24,
) -> Tree:
    """A random tree valid w.r.t. ``dtd`` (content words are sampled from
    each rule's expression; recursion is depth-capped by resampling)."""
    rng = rng or random.Random()
    start = sorted(dtd.start_labels)[rng.randrange(len(dtd.start_labels))]
    budget = [max_nodes]

    def grow(label: str, depth: int) -> TreeNode:
        node = TreeNode(label)
        budget[0] -= 1
        body = dtd.expression_for(label)
        if budget[0] <= 0 or depth >= max_depth:
            # try hard to close the subtree: prefer the shortest word
            from ..regex.ast import shortest_word_length

            if shortest_word_length(body) != 0:
                word = _shortest_word(dtd, label)
            else:
                word = ()
        else:
            word = sample_word(body, rng, star_continue=0.4, max_repeat=4)
        for child_label in word:
            node.add_child(grow(child_label, depth + 1))
        return node

    return Tree(grow(start, 1))


def _shortest_word(dtd: DTD, label: str) -> Tuple[str, ...]:
    from ..regex.automata import glushkov

    word = glushkov(dtd.expression_for(label)).shortest_accepted_word()
    return word or ()


def serialize(tree: Tree, indent: bool = False) -> str:
    """Serialize a tree back to XML text."""
    out: List[str] = []

    def emit(node: TreeNode, depth: int) -> None:
        pad = "  " * depth if indent else ""
        attrs = "".join(
            f' {name}="{value}"' for name, value in node.attributes.items()
        )
        if not node.children and node.value is None:
            out.append(f"{pad}<{node.label}{attrs}/>")
            return
        out.append(f"{pad}<{node.label}{attrs}>")
        if node.value is not None:
            out.append(f"{pad}{_escape(str(node.value))}")
        for child in node.children:
            emit(child, depth + 1)
        out.append(f"{pad}</{node.label}>")

    emit(tree.root, 0)
    separator = "\n" if indent else ""
    return separator.join(out)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def inject_error(
    text: str, kind: str, rng: random.Random
) -> TUnion[str, bytes]:
    """Corrupt a serialized document with one classified error.

    Returns bytes for encoding errors (they live below the text layer)
    and str otherwise.
    """
    if kind == "bad-encoding":
        raw = text.encode("utf-8")
        cut = rng.randrange(max(1, len(raw) - 1))
        return raw[:cut] + b"\xff\xfe" + raw[cut:]
    if kind == "premature-end":
        angle = text.rfind("<")
        inside = angle + 1 + rng.randrange(
            max(1, len(text) - angle - 1)
        ) if angle >= 0 else len(text) // 2
        return text[: max(1, min(inside, len(text) - 1))]
    if kind == "tag-mismatch":
        import re as _re

        ends = list(_re.finditer(r"</([^>]+)>", text))
        if not ends:
            return text + "</mismatch>"
        victim = rng.choice(ends)
        return (
            text[: victim.start()]
            + f"</{victim.group(1)}X>"
            + text[victim.end() :]
        )
    if kind == "unescaped-char":
        middle = text.find(">") + 1
        return text[:middle] + "a & b < c" + text[middle:]
    if kind == "stray-end-tag":
        return "</stray>" + text
    if kind == "multiple-roots":
        return text + "<extra/>"
    raise ValueError(f"unknown error kind {kind!r}")


@dataclass
class CorpusDocument:
    """One generated corpus file."""

    content: TUnion[str, bytes]
    injected_error: Opt[str]  # None for clean documents
    source_dtd_index: int


@dataclass
class XMLCorpus:
    """A generated corpus plus the ground truth of what was injected."""

    documents: List[CorpusDocument] = field(default_factory=list)
    dtds: List[DTD] = field(default_factory=list)


def generate_corpus(
    size: int,
    seed: int = 0,
    well_formed_rate: float = 0.85,
    error_mix: Tuple[Tuple[str, float], ...] = DEFAULT_ERROR_MIX,
    num_dtds: int = 8,
) -> XMLCorpus:
    """Generate a corpus calibrated to the Grijzenhout–Marx rates."""
    from .schema_corpus import DTDCorpusProfile, random_dtd_corpus

    rng = random.Random(seed)
    profile = DTDCorpusProfile(recursion_rate=0.3)
    dtds = random_dtd_corpus(num_dtds, seed=seed + 1, profile=profile)
    kinds = [kind for kind, _weight in error_mix]
    weights = [weight for _kind, weight in error_mix]
    corpus = XMLCorpus(dtds=dtds)
    for _ in range(size):
        dtd_index = rng.randrange(len(dtds))
        tree = random_tree(dtds[dtd_index], rng, max_nodes=60)
        text = serialize(tree)
        if rng.random() < well_formed_rate:
            corpus.documents.append(CorpusDocument(text, None, dtd_index))
        else:
            kind = rng.choices(kinds, weights=weights)[0]
            corpus.documents.append(
                CorpusDocument(inject_error(text, kind, rng), kind, dtd_index)
            )
    return corpus


def corpus_study(corpus: XMLCorpus) -> Dict[str, object]:
    """Re-run the Grijzenhout–Marx analysis on a generated corpus:
    well-formedness rate and the distribution of error categories."""
    from collections import Counter

    from .xml_parser import check_well_formedness

    well_formed = 0
    categories: Counter = Counter()
    for document in corpus.documents:
        report = check_well_formedness(document.content)
        if report.well_formed:
            well_formed += 1
        else:
            categories[report.primary_category] += 1
    total = len(corpus.documents)
    return {
        "documents": total,
        "well_formed_fraction": well_formed / total if total else 0.0,
        "error_categories": dict(categories),
    }
