"""Bottom-up nondeterministic finite tree automata over unranked trees.

This module is the tree-side engine layer: every schema formalism in
:mod:`repro.trees` — :class:`~repro.trees.dtd.DTD`,
:class:`~repro.trees.edtd.EDTD`, and BonXai
:class:`~repro.trees.bonxai.PatternSchema` — compiles into one common
:class:`TreeAutomaton` representation, and the expensive decision
problems run on that representation instead of on per-label regular
expressions:

* **Antichain inclusion and universality** (`included_in`,
  `is_universal`) decide ``L(A) ⊆ L(B)`` without determinizing ``B``,
  in the style of the VATA tree-automata library (arXiv 1204.3240).
  The search explores pairs ``(q, P)`` where ``q`` is a state some tree
  reaches in ``A`` and ``P`` is the *exact* set of states the same tree
  reaches in ``B``, keeping only ⊆-minimal ``P`` per ``q``; a
  counterexample is a pair with ``q`` accepting in ``A`` and ``P``
  disjoint from ``B``'s accepting states.  Pruning is sound because
  shrinking a subtree's ``B``-reach can only shrink every ancestor's
  ``B``-reach, and the failure condition is downward closed.
* **Downward-simulation reduction** (`reduce`) computes the greatest
  label-preserving downward simulation and quotients the automaton by
  mutual simulation, shrinking it before any product construction.
  Mutually downward-similar states admit exactly the same trees, so the
  quotient preserves the language.
* **Streaming runs** (:class:`StreamingTreeValidator`) execute the
  automaton in a single pass over ``("start", label)`` /
  ``("end", label)`` event streams, keeping one frame per *open*
  element — a map from candidate state to the subset of its horizontal
  (content-model) NFA states reachable on the children seen so far.
  Memory is bounded by document depth × frame width, never by document
  size, which generalizes
  :class:`~repro.trees.streaming.StreamingDTDValidator` (a DTD compiles
  to one candidate per label, i.e. exactly that validator's frames) to
  arbitrary recursive, non-single-type schemas.

States are integers; ``names[q]`` is the state's unique name (the DTD
label or EDTD type it came from) and doubles as the letter the
horizontal word automata read, so the existing Glushkov construction
from :mod:`repro.regex.automata` is reused unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import MalformedStreamError, SchemaError, ValidationError
from ..regex.automata import EPS, NFA, glushkov
from .dtd import DTD
from .edtd import EDTD
from .tree import Tree

__all__ = [
    "TreeAutomaton",
    "StreamingTreeValidator",
    "compile_schema",
    "contains_determinize",
    "schema_contains",
    "schema_equivalent",
    "universal_automaton",
    "validate_events",
    "validate_events_or_raise",
]


class _Counterexample(Exception):
    """Internal: aborts an inclusion search as soon as a witness exists."""


@dataclass
class TreeAutomaton:
    """A bottom-up NFTA over unranked, labelled, ordered trees.

    ``names[q]`` — unique state name (also the horizontal letter for q).
    ``labels[q]`` — the tree label µ(q) that state q assigns.
    ``horizontals[q]`` — word NFA over state names; a node may be typed
    ``q`` iff its label is ``labels[q]`` and some word formed by picking
    one reachable state per child is accepted by ``horizontals[q]``.
    ``roots`` — accepting states for the root.
    """

    names: Tuple[str, ...]
    labels: Tuple[str, ...]
    horizontals: Tuple[NFA, ...]
    roots: FrozenSet[int]

    def __post_init__(self):
        self.names = tuple(self.names)
        self.labels = tuple(self.labels)
        self.horizontals = tuple(self.horizontals)
        self.roots = frozenset(self.roots)
        if not (len(self.names) == len(self.labels) == len(self.horizontals)):
            raise SchemaError("names, labels and horizontals must align")
        if len(set(self.names)) != len(self.names):
            raise SchemaError("tree-automaton state names must be unique")
        for q in self.roots:
            if not 0 <= q < len(self.names):
                raise SchemaError(f"root state {q} out of range")
        self.index: Dict[str, int] = {name: q for q, name in enumerate(self.names)}
        by_label: Dict[str, List[int]] = {}
        for q, label in enumerate(self.labels):
            by_label.setdefault(label, []).append(q)
        self._by_label: Dict[str, Tuple[int, ...]] = {
            label: tuple(states) for label, states in by_label.items()
        }
        self._inits: Tuple[FrozenSet[int], ...] = tuple(
            nfa.epsilon_closure(nfa.initial) for nfa in self.horizontals
        )
        self._finals: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(nfa.finals) for nfa in self.horizontals
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @classmethod
    def from_dtd(cls, dtd: DTD) -> "TreeAutomaton":
        """Compile a DTD: one state per label, roots = start labels."""
        names = tuple(sorted(dtd.alphabet()))
        horizontals = tuple(glushkov(dtd.expression_for(name)) for name in names)
        roots = frozenset(q for q, name in enumerate(names) if name in dtd.start_labels)
        return cls(names=names, labels=names, horizontals=horizontals, roots=roots)

    @classmethod
    def from_edtd(cls, edtd: EDTD) -> "TreeAutomaton":
        """Compile an EDTD: one state per type, labelled through µ."""
        names = tuple(sorted(edtd.types()))
        labels = tuple(edtd.mu.get(name, name) for name in names)
        horizontals = tuple(glushkov(edtd.expression_for(name)) for name in names)
        roots = frozenset(q for q, name in enumerate(names) if name in edtd.start_types)
        return cls(names=names, labels=labels, horizontals=horizontals, roots=roots)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def alphabet(self) -> FrozenSet[str]:
        """The tree-label alphabet Σ this automaton speaks."""
        return frozenset(self.labels)

    def states_for_label(self, label: str) -> Tuple[int, ...]:
        return self._by_label.get(label, ())

    def state_count(self) -> int:
        return len(self.names)

    def horizontal_state_count(self) -> int:
        return sum(nfa.num_states for nfa in self.horizontals)

    def describe(self) -> Dict[str, int]:
        return {
            "states": self.state_count(),
            "horizontal_states": self.horizontal_state_count(),
            "labels": len(self._by_label),
            "roots": len(self.roots),
        }

    # ------------------------------------------------------------------
    # Tree runs (the non-streaming reference semantics)
    # ------------------------------------------------------------------

    def reach(self, node) -> FrozenSet[int]:
        """All states this automaton can assign to ``node`` (iterative
        post-order, so recursion depth never limits document depth)."""
        # stack of (node, child reach-sets collected so far)
        stack: List[Tuple[object, List[FrozenSet[int]]]] = [(node, [])]
        result: FrozenSet[int] = frozenset()
        while stack:
            current, collected = stack[-1]
            if len(collected) < len(current.children):
                stack.append((current.children[len(collected)], []))
                continue
            stack.pop()
            states = self._reach_of(current.label, collected)
            if stack:
                stack[-1][1].append(states)
            else:
                result = states
        return result

    def _reach_of(
        self, label: str, child_reaches: Sequence[FrozenSet[int]]
    ) -> FrozenSet[int]:
        out = set()
        for q in self.states_for_label(label):
            nfa = self.horizontals[q]
            states = self._inits[q]
            for child_states in child_reaches:
                nxt: FrozenSet[int] = frozenset()
                for qc in child_states:
                    nxt |= nfa.step(states, self.names[qc])
                states = nxt
                if not states:
                    break
            if states & self._finals[q]:
                out.add(q)
        return frozenset(out)

    def validate(self, tree: Tree) -> bool:
        """Does the automaton accept ``tree``?  Matches ``EDTD.validate``
        on automata compiled with :meth:`from_edtd`."""
        return bool(self.reach(tree.root) & self.roots)

    # ------------------------------------------------------------------
    # Emptiness, universality, inclusion
    # ------------------------------------------------------------------

    def realizable_states(self) -> FrozenSet[int]:
        """States reachable by at least one finite tree (fixpoint)."""
        realized: set = set()
        changed = True
        while changed:
            changed = False
            letters = [self.names[q] for q in realized]
            for q in range(len(self.names)):
                if q in realized:
                    continue
                if self._horizontal_nonempty_over(q, letters):
                    realized.add(q)
                    changed = True
        return frozenset(realized)

    def _horizontal_nonempty_over(self, q: int, letters: List[str]) -> bool:
        nfa = self.horizontals[q]
        finals = self._finals[q]
        start = self._inits[q]
        if start & finals:
            return True
        seen = {start}
        queue = deque([start])
        while queue:
            states = queue.popleft()
            for letter in letters:
                nxt = nfa.step(states, letter)
                if not nxt or nxt in seen:
                    continue
                if nxt & finals:
                    return True
                seen.add(nxt)
                queue.append(nxt)
        return False

    def is_empty(self) -> bool:
        return not (self.realizable_states() & self.roots)

    def is_universal(self, alphabet: Optional[Iterable[str]] = None) -> bool:
        """Does the automaton accept *every* tree over ``alphabet``
        (default: its own label alphabet)?  Antichain-based."""
        sigma = frozenset(alphabet) if alphabet is not None else self.alphabet
        return universal_automaton(sigma).included_in(self)

    def included_in(self, other: "TreeAutomaton") -> bool:
        """Antichain decision of ``L(self) ⊆ L(other)``."""
        try:
            _antichain_inclusion(self, other)
        except _Counterexample:
            return False
        return True

    def equivalent_to(self, other: "TreeAutomaton") -> bool:
        return self.included_in(other) and other.included_in(self)

    # ------------------------------------------------------------------
    # Downward-simulation reduction
    # ------------------------------------------------------------------

    def downward_simulation(self) -> FrozenSet[Tuple[int, int]]:
        """Greatest relation R with (q, q') ∈ R iff labels agree and
        every horizontal word of q has an R-matching word of q' —
        i.e. q' downward-simulates q."""
        n = len(self.names)
        sim = {
            (q, q2)
            for q in range(n)
            for q2 in range(n)
            if self.labels[q] == self.labels[q2]
        }
        changed = True
        while changed:
            changed = False
            for pair in sorted(sim):
                q, q2 = pair
                if q == q2:
                    continue
                if not self._relaxed_contained(q, q2, sim):
                    sim.discard(pair)
                    changed = True
        return frozenset(sim)

    def _relaxed_contained(self, q: int, q2: int, sim) -> bool:
        """Is every word of horizontals[q] matched, letter by letter
        modulo ``sim``, by a word of horizontals[q2]?"""
        na, nb = self.horizontals[q], self.horizontals[q2]
        fa, fb = self._finals[q], self._finals[q2]
        n = len(self.names)
        start = (self._inits[q], self._inits[q2])
        seen = {start}
        queue = deque([start])
        while queue:
            left, right = queue.popleft()
            if (left & fa) and not (right & fb):
                return False
            letters = set()
            for s in left:
                letters.update(na.transitions[s].keys())
            letters.discard(EPS)
            for letter in letters:
                left2 = na.step(left, letter)
                if not left2:
                    continue
                qc = self.index.get(letter)
                right2: FrozenSet[int] = frozenset()
                if qc is not None:
                    for sim_qc in range(n):
                        if (qc, sim_qc) in sim:
                            right2 |= nb.step(right, self.names[sim_qc])
                nxt = (left2, right2)
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return True

    def reduce(self) -> "TreeAutomaton":
        """Quotient by mutual downward simulation.  Mutually similar
        states are reached by exactly the same trees, so merging them
        (and renaming horizontal letters to class representatives)
        preserves the language."""
        sim = self.downward_simulation()
        n = len(self.names)
        rep = list(range(n))
        for q in range(n):
            for q2 in range(q):
                if rep[q2] == q2 and (q, q2) in sim and (q2, q) in sim:
                    rep[q] = q2
                    break
        reps = sorted({r for r in rep})
        new_index = {r: i for i, r in enumerate(reps)}
        rename = {self.names[q]: self.names[rep[q]] for q in range(n)}
        members: Dict[int, List[int]] = {r: [] for r in reps}
        for q in range(n):
            members[rep[q]].append(q)
        horizontals = tuple(
            self._merge_horizontals(members[r], rename) for r in reps
        )
        roots = frozenset(
            new_index[r] for r in reps if any(q in self.roots for q in members[r])
        )
        return TreeAutomaton(
            names=tuple(self.names[r] for r in reps),
            labels=tuple(self.labels[r] for r in reps),
            horizontals=horizontals,
            roots=roots,
        )

    def _merge_horizontals(self, states: List[int], rename: Dict[str, str]) -> NFA:
        transitions: List[Dict[str, set]] = []
        initial: set = set()
        finals: set = set()
        offset = 0
        for q in states:
            nfa = self.horizontals[q]
            for src in range(nfa.num_states):
                merged: Dict[str, set] = {}
                for letter, dsts in nfa.transitions[src].items():
                    key = rename.get(letter, letter)
                    merged.setdefault(key, set()).update(d + offset for d in dsts)
                transitions.append(merged)
            initial.update(i + offset for i in nfa.initial)
            finals.update(f + offset for f in nfa.finals)
            offset += nfa.num_states
        return NFA(
            num_states=offset,
            initial=initial,
            finals=finals,
            transitions=transitions,
        )


def universal_automaton(alphabet: Iterable[str]) -> TreeAutomaton:
    """The automaton accepting every tree over ``alphabet``: one state
    per label whose horizontal language is (all states)*."""
    names = tuple(sorted(set(alphabet)))
    loop: Dict[str, set] = {name: {0} for name in names}
    horizontals = tuple(
        NFA(num_states=1, initial={0}, finals={0}, transitions=[dict(loop)])
        for _ in names
    )
    return TreeAutomaton(
        names=names,
        labels=names,
        horizontals=horizontals,
        roots=frozenset(range(len(names))),
    )


def compile_schema(schema) -> TreeAutomaton:
    """Compile any tree schema (DTD, EDTD, BonXai PatternSchema, or an
    already-compiled automaton) into a :class:`TreeAutomaton`."""
    from .bonxai import PatternSchema

    if isinstance(schema, TreeAutomaton):
        return schema
    if isinstance(schema, DTD):
        return TreeAutomaton.from_dtd(schema)
    if isinstance(schema, EDTD):
        return TreeAutomaton.from_edtd(schema)
    if isinstance(schema, PatternSchema):
        return TreeAutomaton.from_edtd(schema.to_edtd())
    raise SchemaError(f"cannot compile {type(schema).__name__} to a tree automaton")


def schema_contains(bigger, smaller) -> bool:
    """``L(smaller) ⊆ L(bigger)`` for any two schemas, via antichains."""
    return compile_schema(smaller).included_in(compile_schema(bigger))


def schema_equivalent(first, second) -> bool:
    a, b = compile_schema(first), compile_schema(second)
    return a.included_in(b) and b.included_in(a)


# ----------------------------------------------------------------------
# Antichain inclusion
# ----------------------------------------------------------------------


class _LabelSearch:
    """Per-label configuration space of an inclusion search.

    A config pairs, for every A-candidate and B-candidate of the label,
    the subset of its horizontal NFA reached on the children consumed so
    far.  Configs are stepped by discovered (q, P) pairs: the A side by
    the letter ``name(q)``, the B side by the union over letters in P.
    """

    __slots__ = ("label", "ca", "cb", "configs", "cursors", "seen")

    def __init__(self, aut_a: TreeAutomaton, aut_b: TreeAutomaton, label: str):
        self.ca = aut_a.states_for_label(label)
        self.cb = aut_b.states_for_label(label)
        self.label = label
        initial = (
            tuple(aut_a._inits[q] for q in self.ca),
            tuple(aut_b._inits[q] for q in self.cb),
        )
        self.configs = [initial]
        self.cursors = [0]
        self.seen = {initial}


def _antichain_inclusion(aut_a: TreeAutomaton, aut_b: TreeAutomaton) -> None:
    """Raises :class:`_Counterexample` iff L(aut_a) ⊄ L(aut_b)."""
    roots_a, roots_b = aut_a.roots, aut_b.roots
    minimal: Dict[int, List[FrozenSet[int]]] = {}
    pairs: List[Tuple[int, FrozenSet[int]]] = []

    def admit(qa: int, P: FrozenSet[int]) -> None:
        if qa in roots_a and not (P & roots_b):
            raise _Counterexample
        bucket = minimal.setdefault(qa, [])
        for existing in bucket:
            if existing <= P:
                return
        bucket[:] = [existing for existing in bucket if not (P <= existing)]
        bucket.append(P)
        pairs.append((qa, P))

    def emit(search: _LabelSearch, config) -> None:
        a_parts, b_parts = config
        P = frozenset(
            qb
            for qb, states in zip(search.cb, b_parts)
            if states & aut_b._finals[qb]
        )
        for qa, states in zip(search.ca, a_parts):
            if states & aut_a._finals[qa]:
                admit(qa, P)

    def step(search: _LabelSearch, config, pair):
        qc, P = pair
        a_letter = aut_a.names[qc]
        a_parts = tuple(
            aut_a.horizontals[qa].step(states, a_letter) if states else states
            for qa, states in zip(search.ca, config[0])
        )
        if not any(a_parts):
            return None
        b_letters = [aut_b.names[p] for p in P]
        b_parts = []
        for qb, states in zip(search.cb, config[1]):
            nxt: FrozenSet[int] = frozenset()
            if states:
                nfa = aut_b.horizontals[qb]
                for letter in b_letters:
                    nxt |= nfa.step(states, letter)
            b_parts.append(nxt)
        return (a_parts, tuple(b_parts))

    searches = [
        _LabelSearch(aut_a, aut_b, label) for label in sorted(set(aut_a.labels))
    ]
    searches = [s for s in searches if s.ca]
    for search in searches:
        emit(search, search.configs[0])

    advanced = True
    while advanced:
        advanced = False
        for search in searches:
            ci = 0
            while ci < len(search.configs):
                config = search.configs[ci]
                cursor = search.cursors[ci]
                while cursor < len(pairs):
                    nxt = step(search, config, pairs[cursor])
                    cursor += 1
                    advanced = True
                    if nxt is not None and nxt not in search.seen:
                        search.seen.add(nxt)
                        search.configs.append(nxt)
                        search.cursors.append(0)
                        emit(search, nxt)
                search.cursors[ci] = cursor
                ci += 1


# ----------------------------------------------------------------------
# Determinize-and-product baseline (kept for benchmarking and as an
# independent reference implementation for the differential oracle)
# ----------------------------------------------------------------------


def contains_determinize(aut_a: TreeAutomaton, aut_b: TreeAutomaton) -> bool:
    """Decide ``L(aut_a) ⊆ L(aut_b)`` the classical way: eagerly subset-
    determinize ``aut_b`` bottom-up (every per-label configuration is
    completed against every discovered macro-state), then search the
    product of ``aut_a`` with the complement.  Exponentially slower than
    the antichain search on nondeterministic content models — that gap
    is exactly what ``benchmarks/bench_tree_automata.py`` measures."""
    macros, tables = _determinize_full(aut_b)
    roots_b = aut_b.roots

    # Product phase: pairs (qa, macro-id) reachable by some tree.
    pairs: List[Tuple[int, int]] = []
    seen_pairs = set()

    def admit(qa: int, macro_id: int) -> bool:
        if (qa, macro_id) in seen_pairs:
            return False
        seen_pairs.add((qa, macro_id))
        pairs.append((qa, macro_id))
        return qa in aut_a.roots and not (macros[macro_id] & roots_b)

    class _ProductSearch:
        __slots__ = ("ca", "table", "configs", "cursors", "seen")

        def __init__(self, label):
            self.ca = aut_a.states_for_label(label)
            self.table = tables.get(label)
            initial = (
                tuple(aut_a._inits[q] for q in self.ca),
                0 if self.table is not None else -1,
            )
            self.configs = [initial]
            self.cursors = [0]
            self.seen = {initial}

    def emit(search, config) -> bool:
        a_parts, cfg_id = config
        if search.table is not None:
            macro_id = search.table["accept"][cfg_id]
        else:
            macro_id = _EMPTY_MACRO_ID
        for qa, states in zip(search.ca, a_parts):
            if states & aut_a._finals[qa]:
                if admit(qa, macro_id):
                    return True
        return False

    _EMPTY_MACRO_ID = _intern_macro(macros, {m: i for i, m in enumerate(macros)}, frozenset())

    searches = [
        _ProductSearch(label) for label in sorted(set(aut_a.labels))
    ]
    searches = [s for s in searches if s.ca]
    for search in searches:
        if emit(search, search.configs[0]):
            return False

    advanced = True
    while advanced:
        advanced = False
        for search in searches:
            ci = 0
            while ci < len(search.configs):
                a_parts, cfg_id = search.configs[ci]
                cursor = search.cursors[ci]
                while cursor < len(pairs):
                    qc, macro_id = pairs[cursor]
                    cursor += 1
                    advanced = True
                    letter = aut_a.names[qc]
                    stepped = tuple(
                        aut_a.horizontals[qa].step(states, letter) if states else states
                        for qa, states in zip(search.ca, a_parts)
                    )
                    if not any(stepped):
                        continue
                    if search.table is not None:
                        nxt_cfg = search.table["trans"].get((cfg_id, macro_id))
                        if nxt_cfg is None:
                            # macro discovered only in the product phase
                            # (possible when A's alphabet exceeds B's);
                            # stepping by it keeps the same B config —
                            # B has no candidate to consume the child.
                            nxt_cfg = search.table["dead"]
                    else:
                        nxt_cfg = -1
                    nxt = (stepped, nxt_cfg)
                    if nxt not in search.seen:
                        search.seen.add(nxt)
                        search.configs.append(nxt)
                        search.cursors.append(0)
                        if emit(search, nxt):
                            return False
                search.cursors[ci] = cursor
                ci += 1
    return True


def _intern_macro(macros, macro_ix, macro) -> int:
    if macro in macro_ix:
        return macro_ix[macro]
    macro_ix[macro] = len(macros)
    macros.append(macro)
    return macro_ix[macro]


def _determinize_full(aut: TreeAutomaton):
    """Eager bottom-up subset determinization: enumerate every reachable
    macro-state and complete every per-label config DFA against every
    macro letter.  This is the expensive part the antichain avoids."""
    macros: List[FrozenSet[int]] = []
    macro_ix: Dict[FrozenSet[int], int] = {}
    tables: Dict[str, Dict] = {}

    class _DetSearch:
        __slots__ = ("cb", "configs", "cursors", "seen", "accept", "trans", "dead")

        def __init__(self, label):
            self.cb = aut.states_for_label(label)
            initial = tuple(aut._inits[q] for q in self.cb)
            self.configs = [initial]
            self.cursors = [0]
            self.seen = {initial: 0}
            self.accept: List[int] = []
            self.trans: Dict[Tuple[int, int], int] = {}
            self.dead = 0  # patched once the all-empty config exists

    def macro_of(search, config) -> int:
        macro = frozenset(
            qb for qb, states in zip(search.cb, config) if states & aut._finals[qb]
        )
        return _intern_macro(macros, macro_ix, macro)

    searches = {label: _DetSearch(label) for label in sorted(set(aut.labels))}
    for search in searches.values():
        search.accept.append(macro_of(search, search.configs[0]))

    advanced = True
    while advanced:
        advanced = False
        for search in searches.values():
            ci = 0
            while ci < len(search.configs):
                config = search.configs[ci]
                cursor = search.cursors[ci]
                while cursor < len(macros):
                    macro = macros[cursor]
                    letters = [aut.names[p] for p in macro]
                    stepped = []
                    for qb, states in zip(search.cb, config):
                        nxt: FrozenSet[int] = frozenset()
                        if states:
                            nfa = aut.horizontals[qb]
                            for letter in letters:
                                nxt |= nfa.step(states, letter)
                        stepped.append(nxt)
                    nxt_config = tuple(stepped)
                    if nxt_config not in search.seen:
                        search.seen[nxt_config] = len(search.configs)
                        search.configs.append(nxt_config)
                        search.cursors.append(0)
                        search.accept.append(macro_of(search, nxt_config))
                    search.trans[(ci, cursor)] = search.seen[nxt_config]
                    cursor += 1
                    advanced = True
                search.cursors[ci] = cursor
                ci += 1

    for label, search in searches.items():
        dead_config = tuple(frozenset() for _ in search.cb)
        if dead_config not in search.seen:
            search.seen[dead_config] = len(search.configs)
            search.configs.append(search.configs[0])  # placeholder slot
            search.configs[-1] = dead_config
            search.cursors.append(len(macros))
            search.accept.append(_intern_macro(macros, macro_ix, frozenset()))
        dead = search.seen[dead_config]
        tables[label] = {
            "accept": search.accept,
            "trans": search.trans,
            "dead": dead,
        }
    return macros, tables


# ----------------------------------------------------------------------
# Streaming execution
# ----------------------------------------------------------------------


@dataclass
class StreamingTreeValidator:
    """Single-pass NFTA run over ``("start"|"end"|"text", payload)``
    events.

    One frame per open element maps each still-live candidate state to
    the subset of its horizontal NFA reached on the children closed so
    far; dead candidates are dropped immediately, so a frame is the
    antichain of runs that can still complete.  Peak memory is
    ``max_stack_depth`` frames of at most ``max_tracked_cells`` total
    automaton states — bounded by document *depth*, never length.

    Verdicts are byte-identical to ``EDTD.validate`` on the event stream
    of the same document (and to ``DTD.validate`` for DTD-compiled
    automata): a structurally malformed stream, like an unparseable
    document, is simply invalid.  Use
    :func:`validate_events_or_raise` to distinguish the two failure
    kinds as typed exceptions.
    """

    automaton: TreeAutomaton
    max_stack_depth: int = 0
    max_tracked_cells: int = 0
    _stack: List[Tuple[str, Dict[int, FrozenSet[int]]]] = field(default_factory=list)
    _cells: int = 0
    _done: bool = False
    _accepted: bool = False
    _failed: Optional[str] = None
    _malformed: bool = False

    @property
    def failure(self) -> Optional[str]:
        return self._failed

    @property
    def malformed(self) -> bool:
        """True when the failure was a broken event stream rather than a
        schema violation."""
        return self._malformed

    def _fail(self, message: str) -> bool:
        self._failed = message
        return False

    def _fail_malformed(self, message: str) -> bool:
        self._failed = message
        self._malformed = True
        return False

    def feed(self, event) -> bool:
        """Consume one event; returns False once the run has failed."""
        if self._failed is not None:
            return False
        try:
            kind, payload = event
        except (TypeError, ValueError):
            return self._fail_malformed(f"malformed event {event!r}")
        if kind == "text":
            return True
        aut = self.automaton
        if kind == "start":
            if not self._stack and self._done:
                return self._fail_malformed("second root element in stream")
            frame = {q: aut._inits[q] for q in aut.states_for_label(payload)}
            if not frame:
                return self._fail(f"no schema type admits element {payload!r}")
            self._stack.append((payload, frame))
            if len(self._stack) > self.max_stack_depth:
                self.max_stack_depth = len(self._stack)
            self._cells += sum(len(states) for states in frame.values())
            if self._cells > self.max_tracked_cells:
                self.max_tracked_cells = self._cells
            return True
        if kind == "end":
            if not self._stack:
                return self._fail_malformed(f"unbalanced end event {payload!r}")
            label, frame = self._stack[-1]
            if label != payload:
                return self._fail_malformed(
                    f"end event {payload!r} does not close open element {label!r}"
                )
            self._stack.pop()
            self._cells -= sum(len(states) for states in frame.values())
            reach = [
                q for q, states in frame.items() if states & aut._finals[q]
            ]
            if not self._stack:
                self._done = True
                if not any(q in aut.roots for q in reach):
                    return self._fail("root element admits no start type")
                self._accepted = True
                return True
            if not reach:
                return self._fail(f"children of {payload!r} admit no type")
            letters = [aut.names[q] for q in reach]
            parent_label, parent = self._stack[-1]
            before = sum(len(states) for states in parent.values())
            dead = []
            for p, states in parent.items():
                nfa = aut.horizontals[p]
                nxt: FrozenSet[int] = frozenset()
                for letter in letters:
                    nxt |= nfa.step(states, letter)
                if nxt:
                    parent[p] = nxt
                else:
                    dead.append(p)
            for p in dead:
                del parent[p]
            if not parent:
                return self._fail(
                    f"element {payload!r} is not allowed under {parent_label!r} here"
                )
            self._cells += sum(len(states) for states in parent.values()) - before
            if self._cells > self.max_tracked_cells:
                self.max_tracked_cells = self._cells
            return True
        return self._fail_malformed(f"unknown event kind {kind!r}")

    def finish(self) -> bool:
        """True iff the whole stream formed exactly one valid document."""
        return (
            self._failed is None
            and self._done
            and not self._stack
            and self._accepted
        )


def validate_events(schema, events) -> bool:
    """Validate an event stream against any schema (or a pre-compiled
    :class:`TreeAutomaton`) in a single pass."""
    validator = StreamingTreeValidator(compile_schema(schema))
    for event in events:
        if not validator.feed(event):
            return False
    return validator.finish()


def validate_events_or_raise(schema, events) -> StreamingTreeValidator:
    """Like :func:`validate_events` but raises
    :class:`~repro.errors.MalformedStreamError` for broken streams and
    :class:`~repro.errors.ValidationError` for schema violations;
    returns the validator (with its high-water metrics) on success."""
    validator = StreamingTreeValidator(compile_schema(schema))
    for event in events:
        if not validator.feed(event):
            break
    if validator.finish():
        return validator
    if validator.failure is None:
        # no event ever failed: the stream simply never became one
        # complete document (empty, or elements left open) — that is
        # structural breakage, not a schema violation
        if validator._stack:
            raise MalformedStreamError(
                f"stream ended with {len(validator._stack)} element(s) "
                "still open"
            )
        raise MalformedStreamError("stream contained no document")
    if validator.malformed:
        raise MalformedStreamError(validator.failure)
    raise ValidationError(validator.failure)
