"""Pull-based chunked character feeding for the incremental parsers.

:class:`ChunkFeeder` turns any text source — a ``str``, ``bytes``, or a
file-like object whose ``read(n)`` returns either — into a buffered
character stream with *bounded* memory: the internal buffer holds at
most the unconsumed tail of one token plus one read chunk, and the
consumed prefix is compacted away as the caller advances.  Byte inputs
are decoded incrementally (UTF-8 by default), so multi-byte characters
split across chunk boundaries are handled transparently.

Both :func:`repro.trees.xml_parser.iter_xml_events` and
:func:`repro.trees.json_parser.iter_json_events` scan through this
class, which is what lets them emit SAX-style event streams from
multi-gigabyte documents without ever materializing the text, let alone
a :class:`~repro.trees.tree.Tree`.
"""

from __future__ import annotations

import codecs
from typing import Callable, Optional

__all__ = ["ChunkFeeder"]

DEFAULT_CHUNK_SIZE = 65536


class ChunkFeeder:
    """Buffered incremental reader over ``str`` / ``bytes`` / file-like.

    ``error_factory`` builds the exception raised on a byte-decoding
    failure, so each parser surfaces its own typed error (XML's
    ``bad-encoding`` category, for instance) instead of a raw
    :class:`UnicodeDecodeError`.
    """

    def __init__(
        self,
        source,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        encoding: str = "utf-8",
        error_factory: Optional[Callable[[str, int], Exception]] = None,
    ):
        self.chunk_size = max(1, int(chunk_size))
        self.error_factory = error_factory
        self.buf = ""
        self.pos = 0
        self.base = 0  # absolute offset of buf[0] in the whole input
        self.eof = False
        self._decoder = None
        if isinstance(source, str):
            self.buf = source
            self.eof = True
            self._pull = None
        elif isinstance(source, (bytes, bytearray, memoryview)):
            data = bytes(source)
            self._decoder = codecs.getincrementaldecoder(encoding)()
            offset = 0

            def pull_bytes() -> Optional[bytes]:
                nonlocal offset
                if offset >= len(data):
                    return None
                chunk = data[offset : offset + self.chunk_size]
                offset += len(chunk)
                return chunk

            self._pull = pull_bytes
        elif hasattr(source, "read"):
            self._decoder = codecs.getincrementaldecoder(encoding)()

            def pull_read():
                chunk = source.read(self.chunk_size)
                return chunk if chunk else None

            self._pull = pull_read
        else:
            raise TypeError(
                f"cannot feed from {type(source).__name__}: "
                "expected str, bytes, or a file-like object"
            )

    @property
    def position(self) -> int:
        """Absolute character offset of the read head (for errors)."""
        return self.base + self.pos

    def _decode_error(self, exc: UnicodeDecodeError) -> Exception:
        if self.error_factory is not None:
            return self.error_factory(str(exc), self.base + len(self.buf))
        return exc

    def refill(self) -> bool:
        """Pull one more chunk into the buffer; False once at EOF."""
        if self.eof:
            return False
        # Compact the consumed prefix so memory stays bounded by the
        # largest single token, not by the document.
        if self.pos > self.chunk_size:
            self.base += self.pos
            self.buf = self.buf[self.pos :]
            self.pos = 0
        chunk = self._pull() if self._pull is not None else None
        if chunk is None:
            self.eof = True
            if self._decoder is not None:
                try:
                    tail = self._decoder.decode(b"", final=True)
                except UnicodeDecodeError as exc:
                    raise self._decode_error(exc) from None
                self.buf += tail
                return bool(tail)
            return False
        if isinstance(chunk, str):
            self.buf += chunk
        else:
            if self._decoder is None:
                self._decoder = codecs.getincrementaldecoder("utf-8")()
            try:
                self.buf += self._decoder.decode(chunk)
            except UnicodeDecodeError as exc:
                raise self._decode_error(exc) from None
        return True

    def ensure(self, n: int) -> bool:
        """Make at least ``n`` unread characters available if possible."""
        while len(self.buf) - self.pos < n:
            if not self.refill():
                return False
        return True

    def peek(self, offset: int = 0) -> Optional[str]:
        if not self.ensure(offset + 1):
            return None
        return self.buf[self.pos + offset]

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def startswith(self, prefix: str) -> bool:
        if not self.ensure(len(prefix)):
            return False
        return self.buf.startswith(prefix, self.pos)

    def take_until(self, needle: str) -> Optional[str]:
        """Consume and return everything up to ``needle`` (which is also
        consumed but not returned); None when the input ends first."""
        search_from = self.pos
        while True:
            idx = self.buf.find(needle, search_from)
            if idx != -1:
                out = self.buf[self.pos : idx]
                self.pos = idx + len(needle)
                return out
            # keep a needle-sized overlap so a match split across chunks
            # is still found
            search_from = max(self.pos, len(self.buf) - len(needle) + 1)
            if not self.refill():
                return None
