"""Document Type Definitions (Definition 4.1) and their analyses.

A DTD is a triple ``(Σ, ρ, S)``: labels, a rule function assigning a
regular expression to every label, and a set of start labels.  This
module provides:

* the :class:`DTD` model with validation of labeled ordered trees;
* a parser for real DTD syntax (``<!ELEMENT person (name, birthplace)>``)
  including ``EMPTY``, ``ANY``, ``#PCDATA`` and mixed content;
* a parser for the paper's rule syntax (``person -> name birthplace``);
* the structural analyses of the early practical studies (Section 4.1):
  *recursion* detection (Choi found 35/60 DTDs recursive) and the
  *maximum document depth* of non-recursive DTDs (up to 20 in his
  corpus);
* per-rule expression analyses: determinism (the XML standard requires
  deterministic content models), chain shape, and k-ORE statistics —
  the inputs of the Bex et al. studies (Section 4.2).
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional as Opt, Set, Tuple

from ..errors import DTDParseError, SchemaError, ValidationError
from ..regex.ast import EPSILON, Regex, Star, Symbol, Union
from ..regex.automata import glushkov
from ..regex.classes import is_chare, is_sore, max_occurrences
from ..regex.determinism import is_deterministic
from ..regex.parser import parse as parse_regex
from .tree import Tree

#: Sentinel label for text content (#PCDATA) in parsed real-world DTDs.
PCDATA = "#PCDATA"


@dataclass
class DTD:
    """A Document Type Definition ``(Σ, ρ, S)``.

    ``rules`` maps each label to the regular expression its children must
    match; labels mentioned in rule bodies but without a rule of their
    own implicitly map to ``ε`` (they must be leaves) unless
    ``strict=True`` is passed to :meth:`validate`.
    """

    rules: Dict[str, Regex]
    start_labels: FrozenSet[str]

    def __post_init__(self):
        self.start_labels = frozenset(self.start_labels)
        if not self.start_labels:
            raise SchemaError("a DTD needs at least one start label")
        self._automata: Dict[str, object] = {}

    @classmethod
    def from_rules(cls, rules: Dict[str, str], start: Iterable[str]) -> "DTD":
        """Build from textual rules in the paper's notation::

            DTD.from_rules(
                {"persons": "person*",
                 "person": "name birthplace",
                 "birthplace": "city state country?"},
                start=["persons"],
            )
        """
        parsed = {
            label: (
                EPSILON
                if not body.strip()
                else parse_regex(body, multi_char=True)
            )
            for label, body in rules.items()
        }
        return cls(parsed, frozenset(start))

    # -- Σ ----------------------------------------------------------------------

    def alphabet(self) -> FrozenSet[str]:
        """The label set Σ: rule heads, rule-body labels and start labels."""
        labels: Set[str] = set(self.rules) | set(self.start_labels)
        for body in self.rules.values():
            labels |= body.alphabet()
        return frozenset(labels)

    def expression_for(self, label: str) -> Regex:
        """ρ(label); labels without an explicit rule map to ε."""
        return self.rules.get(label, EPSILON)

    # -- validation (Definition 4.1) --------------------------------------------

    def _automaton(self, label: str):
        if label not in self._automata:
            self._automata[label] = glushkov(self.expression_for(label))
        return self._automata[label]

    def validate(self, tree: Tree, strict: bool = False) -> bool:
        """Whether ``tree`` is valid w.r.t. this DTD.

        ``strict=True`` additionally requires every label in the tree to
        be declared in Σ (the behaviour of real validators).
        """
        return self.first_violation(tree, strict=strict) is None

    def first_violation(
        self, tree: Tree, strict: bool = False
    ) -> Opt[str]:
        """A human-readable description of the first violation, or None."""
        sigma = self.alphabet() if strict else None
        if tree.root.label not in self.start_labels:
            return (
                f"root label {tree.root.label!r} is not a start label "
                f"(allowed: {sorted(self.start_labels)})"
            )
        for node in tree.root.walk():
            if sigma is not None and node.label not in sigma:
                return f"label {node.label!r} is not declared in the DTD"
            word = node.child_word()
            if not self._automaton(node.label).accepts(word):
                return (
                    f"children of <{node.label}> are {' '.join(word) or 'ε'},"
                    f" which does not match {self.expression_for(node.label)}"
                )
        return None

    def validate_or_raise(self, tree: Tree, strict: bool = False) -> None:
        violation = self.first_violation(tree, strict=strict)
        if violation is not None:
            raise ValidationError(violation)

    # -- structural analyses (Section 4.1) ---------------------------------------

    def reachability_graph(self) -> Dict[str, Set[str]]:
        """Edges ``a -> b`` when ``b`` appears in some word of ρ(a) —
        equivalently, when ``b`` occurs syntactically in ρ(a) on a path
        not killed by the empty language."""
        graph: Dict[str, Set[str]] = {}
        for label in self.alphabet():
            body = self.expression_for(label)
            graph[label] = set(body.alphabet()) if not body.matches_nothing() else set()
        return graph

    def is_recursive(self) -> bool:
        """Choi's recursion test: does the label graph have a directed
        cycle?"""
        graph = self.reachability_graph()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {label: WHITE for label in graph}
        for start in graph:
            if color[start] != WHITE:
                continue
            stack: List[Tuple[str, Iterable]] = [(start, iter(graph[start]))]
            color[start] = GRAY
            while stack:
                node, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if nxt not in color:
                        continue
                    if color[nxt] == GRAY:
                        return True
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(graph[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False

    def max_document_depth(self) -> Opt[int]:
        """The maximal depth of a document valid w.r.t. this DTD.

        ``None`` for recursive DTDs (unbounded).  Choi observed that the
        non-recursive DTDs in his corpus still allowed depths up to 20.
        """
        if self.is_recursive():
            return None
        graph = self.reachability_graph()
        memo: Dict[str, int] = {}

        def depth_of(label: str) -> int:
            if label in memo:
                return memo[label]
            successors = graph.get(label, set())
            result = 1 + max(
                (depth_of(nxt) for nxt in successors), default=0
            )
            memo[label] = result
            return result

        return max(depth_of(start) for start in self.start_labels)

    # -- expression analyses (Section 4.2) ----------------------------------------

    def expression_report(self) -> Dict[str, dict]:
        """Per-rule statistics in the style of the Bex et al. study."""
        report = {}
        for label, body in self.rules.items():
            report[label] = {
                "deterministic": is_deterministic(body),
                "chare": is_chare(body),
                "max_occurrences": max_occurrences(body),
                "sore": is_sore(body),
                "parse_depth": body.parse_depth(),
                "size": body.size(),
            }
        return report

    def all_content_models_deterministic(self) -> bool:
        """The XML-standard constraint (Appendix D of the XML spec)."""
        return all(is_deterministic(body) for body in self.rules.values())


# ---------------------------------------------------------------------------
# Real DTD syntax
# ---------------------------------------------------------------------------

_ELEMENT_RE = _re.compile(
    r"<!ELEMENT\s+([^\s>]+)\s+(.*?)>", _re.DOTALL
)


def _content_model_to_regex(model: str) -> Regex:
    """Translate a DTD content model to our regex AST.

    Handles ``EMPTY``, ``ANY``, ``(#PCDATA)``, mixed content
    ``(#PCDATA | a | b)*`` and the ordinary ``,``/``|`` syntax with
    ``?``/``*``/``+`` modifiers.
    """
    model = model.strip()
    if model == "EMPTY":
        return EPSILON
    if model == "ANY":
        # ANY admits any children; Σ is not known locally, so represent it
        # as a reserved wildcard the validator special-cases.  We encode
        # ANY as (#ANY)* over a reserved symbol; DTDs parsed from real
        # syntax replace it with the full alphabet at the end.
        return Star(Symbol("#ANY"))
    # mixed content: (#PCDATA | a | b)* — text is invisible to the tree
    # abstraction, so this is (a + b)*
    stripped = model.replace(" ", "")
    mixed = _re.fullmatch(r"\(#PCDATA(\|[^)|]+)*\)\*?", stripped)
    if mixed:
        inner = stripped[1:].rstrip("*").rstrip(")")
        labels = [part for part in inner.split("|") if part and part != "#PCDATA"]
        if not labels:
            return EPSILON
        if len(labels) == 1:
            return Star(Symbol(labels[0]))
        return Star(Union(tuple(Symbol(lbl) for lbl in labels)))
    # ordinary content: ',' is concatenation; '|' stays union and '+'
    # is always postfix (union_plus=False)
    translated = model.replace(",", " ")
    try:
        return parse_regex(translated, multi_char=True, union_plus=False)
    except Exception as exc:  # re-raise with DTD context
        raise DTDParseError(
            f"cannot parse content model {model!r}: {exc}"
        ) from exc


def parse_dtd(
    text: str, start: Opt[Iterable[str]] = None
) -> DTD:
    """Parse real DTD syntax (a sequence of ``<!ELEMENT …>`` declarations).

    ``start`` defaults to the labels that never occur in any rule body
    (the natural root candidates); if every label occurs in a body, the
    first declared element is used.
    """
    rules: Dict[str, Regex] = {}
    order: List[str] = []
    for match in _ELEMENT_RE.finditer(text):
        label, model = match.group(1), match.group(2)
        if label in rules:
            raise DTDParseError(f"duplicate declaration for {label!r}")
        rules[label] = _content_model_to_regex(model)
        order.append(label)
    if not rules:
        raise DTDParseError("no <!ELEMENT> declarations found")
    # resolve the ANY wildcard now that Σ is known
    sigma = set(rules)
    for body in rules.values():
        sigma |= {lbl for lbl in body.alphabet() if lbl != "#ANY"}
    any_expansion = (
        Star(Union(tuple(Symbol(lbl) for lbl in sorted(sigma))))
        if len(sigma) > 1
        else Star(Symbol(next(iter(sigma))))
    )

    def expand(expr: Regex) -> Regex:
        if expr == Star(Symbol("#ANY")):
            return any_expansion
        return expr

    rules = {label: expand(body) for label, body in rules.items()}
    if start is None:
        used_in_bodies: Set[str] = set()
        for body in rules.values():
            used_in_bodies |= body.alphabet()
        roots = [label for label in order if label not in used_in_bodies]
        start = roots or [order[0]]
    return DTD(rules, frozenset(start))


def uses_any_type(text: str) -> bool:
    """Whether a DTD document uses the ANY content type — a rarity in
    practice (1 of 103 DTDs in the Bex et al. corpus, Section 4.5)."""
    for match in _ELEMENT_RE.finditer(text):
        if match.group(2).strip() == "ANY":
            return True
    return False


# SGML's & operator: the workaround study of Sahuguet (Section 4.1) noted
# users encode (a & b & c) as (a + b + c)*, a drastic overapproximation.
def sgml_unordered(labels: Iterable[str]) -> Regex:
    """The exact unordered concatenation a1 & … & an: the union of all
    permutations (exponential, which is why users approximate it)."""
    from itertools import permutations

    from ..regex.ast import concat as smart_concat, union as smart_union

    labels = list(labels)
    perms = [
        smart_concat(*[Symbol(lbl) for lbl in perm])
        for perm in permutations(labels)
    ]
    return smart_union(*perms)


def sgml_unordered_approximation(labels: Iterable[str]) -> Regex:
    """The practical workaround ``(a1 + … + an)*`` — the drastic
    overapproximation Sahuguet observed in real DTDs."""
    labels = list(labels)
    if len(labels) == 1:
        return Star(Symbol(labels[0]))
    return Star(Union(tuple(Symbol(lbl) for lbl in labels)))
