"""A from-scratch JSON parser and the JSON-to-labeled-tree mapping.

The paper treats JSON documents as node-labeled trees (Figure 1b/1c):
object keys become node labels; arrays are ordered children.  As with
XML, there is no single "correct" mapping (Example 3.1) — we implement
the common one:

* the document root is a node labeled ``root_label`` (default ``"$"``);
* a key ``k`` becomes a child node labeled ``k``;
* array elements become children labeled ``item_label`` (default
  ``"item"``) of the array's node, preserving order;
* scalars are stored in the node's ``value``.

The parser is hand-written so that malformed documents yield classified
:class:`~repro.errors.JSONParseError`\\ s, mirroring the XML study's
error-taxonomy approach.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import JSONParseError
from .tree import Tree, TreeNode

# JSON error categories (for corpus studies in the XML-study style)
UNTERMINATED_STRING = "unterminated-string"
TRAILING_DATA = "trailing-data"
BAD_LITERAL = "bad-literal"
MISSING_DELIMITER = "missing-delimiter"
UNEXPECTED_END = "unexpected-end"
BAD_ESCAPE = "bad-escape"
CONTROL_CHAR = "control-character"

_WHITESPACE = " \t\n\r"
_DIGITS = "0123456789"
_HEX_DIGITS = "0123456789abcdefABCDEF"
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


class _JSONScanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def error(self, message: str, category: str) -> JSONParseError:
        return JSONParseError(message, position=self.pos, category=category)

    def skip_whitespace(self) -> None:
        while self.pos < self.n and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(
                f"expected {ch!r}, found {self.peek()!r}",
                MISSING_DELIMITER if self.peek() else UNEXPECTED_END,
            )
        self.pos += 1

    # -- value parsing ---------------------------------------------------------

    def parse_value(self) -> Any:
        self.skip_whitespace()
        ch = self.peek()
        if ch == "":
            raise self.error("unexpected end of input", UNEXPECTED_END)
        if ch == "{":
            return self.parse_object()
        if ch == "[":
            return self.parse_array()
        if ch == '"':
            return self.parse_string()
        if ch in "-0123456789":
            return self.parse_number()
        for literal, value in (
            ("true", True),
            ("false", False),
            ("null", None),
        ):
            if self.text.startswith(literal, self.pos):
                self.pos += len(literal)
                return value
        raise self.error(f"unexpected character {ch!r}", BAD_LITERAL)

    def parse_object(self) -> Dict[str, Any]:
        self.expect("{")
        out: Dict[str, Any] = {}
        self.skip_whitespace()
        if self.peek() == "}":
            self.pos += 1
            return out
        while True:
            self.skip_whitespace()
            if self.peek() != '"':
                raise self.error(
                    "object keys must be strings",
                    BAD_LITERAL if self.peek() else UNEXPECTED_END,
                )
            key = self.parse_string()
            self.skip_whitespace()
            self.expect(":")
            out[key] = self.parse_value()
            self.skip_whitespace()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("}")
            return out

    def parse_array(self) -> List[Any]:
        self.expect("[")
        out: List[Any] = []
        self.skip_whitespace()
        if self.peek() == "]":
            self.pos += 1
            return out
        while True:
            out.append(self.parse_value())
            self.skip_whitespace()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("]")
            return out

    def _parse_u_escape(self) -> int:
        """One ``\\uXXXX`` code unit (the backslash and 'u' are consumed)."""
        hexpart = self.text[self.pos : self.pos + 4]
        if len(hexpart) < 4 or any(c not in _HEX_DIGITS for c in hexpart):
            raise self.error("bad \\u escape", BAD_ESCAPE)
        self.pos += 4
        return int(hexpart, 16)

    def parse_string(self) -> str:
        self.expect('"')
        out: List[str] = []
        while True:
            if self.pos >= self.n:
                raise self.error("unterminated string", UNTERMINATED_STRING)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.pos >= self.n:
                    raise self.error(
                        "unterminated escape", UNTERMINATED_STRING
                    )
                esc = self.text[self.pos]
                self.pos += 1
                if esc == "u":
                    unit = self._parse_u_escape()
                    # An escaped high surrogate followed by an escaped
                    # low surrogate encodes one astral code point
                    # (backslash-u D834 then DD1E decodes to U+1D11E);
                    # unpaired surrogates are kept as-is, matching the
                    # stdlib decoder.
                    if (
                        0xD800 <= unit <= 0xDBFF
                        and self.text.startswith("\\u", self.pos)
                    ):
                        mark = self.pos
                        self.pos += 2
                        low = self._parse_u_escape()
                        if 0xDC00 <= low <= 0xDFFF:
                            unit = (
                                0x10000
                                + ((unit - 0xD800) << 10)
                                + (low - 0xDC00)
                            )
                        else:
                            self.pos = mark  # not a pair; reread normally
                    out.append(chr(unit))
                elif esc in _ESCAPES:
                    out.append(_ESCAPES[esc])
                else:
                    raise self.error(f"bad escape \\{esc}", BAD_ESCAPE)
            elif ch < "\x20":
                self.pos -= 1
                raise self.error(
                    f"unescaped control character {ch!r} in string",
                    CONTROL_CHAR,
                )
            else:
                out.append(ch)

    def _scan_digits(self) -> int:
        count = 0
        while self.pos < self.n and self.text[self.pos] in _DIGITS:
            self.pos += 1
            count += 1
        return count

    def parse_number(self):
        """Scan a number with the exact RFC 8259 grammar.

        ``int`` is ``0`` or a non-zero digit followed by digits (so ``01``
        stops after the ``0`` and the ``1`` becomes trailing input, as in
        the stdlib tokenizer); ``frac``/``exp`` require at least one digit.
        """
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        if self.peek() == "0":
            self.pos += 1
        elif self._scan_digits() == 0:
            raise self.error("malformed number", BAD_LITERAL)
        is_float = False
        if self.peek() == ".":
            is_float = True
            self.pos += 1
            if self._scan_digits() == 0:
                raise self.error(
                    "expected digits after decimal point", BAD_LITERAL
                )
        if self.peek() in ("e", "E"):
            is_float = True
            self.pos += 1
            if self.peek() in ("+", "-"):
                self.pos += 1
            if self._scan_digits() == 0:
                raise self.error(
                    "expected digits in exponent", BAD_LITERAL
                )
        raw = self.text[start : self.pos]
        return float(raw) if is_float else int(raw)


def parse_json(text: str) -> Any:
    """Parse a JSON document into Python values (dict/list/scalars)."""
    scanner = _JSONScanner(text)
    value = scanner.parse_value()
    scanner.skip_whitespace()
    if scanner.pos != scanner.n:
        raise scanner.error("trailing data after document", TRAILING_DATA)
    return value


def json_to_tree(
    value: Any, root_label: str = "$", item_label: str = "item"
) -> Tree:
    """Map a parsed JSON value to a node-labeled ordered tree."""

    def build(label: str, val: Any) -> TreeNode:
        node = TreeNode(label)
        if isinstance(val, dict):
            for key, sub in val.items():
                node.add_child(build(key, sub))
        elif isinstance(val, list):
            for sub in val:
                node.add_child(build(item_label, sub))
        else:
            node.value = val
        return node

    return Tree(build(root_label, value))


def parse_json_tree(
    text: str, root_label: str = "$", item_label: str = "item"
) -> Tree:
    """Parse JSON text directly into a labeled tree."""
    return json_to_tree(parse_json(text), root_label, item_label)


def json_nesting_depth(value: Any) -> int:
    """Maximum nesting depth of a parsed JSON value (scalars have depth 1).

    The Maiwald et al. schema study (Section 4.5) reports maximum nesting
    depths of 3–43 for non-recursive JSON schemas; this is the document
    analogue of that metric.
    """
    if isinstance(value, dict):
        if not value:
            return 1
        return 1 + max(json_nesting_depth(v) for v in value.values())
    if isinstance(value, list):
        if not value:
            return 1
        return 1 + max(json_nesting_depth(v) for v in value)
    return 1


# ----------------------------------------------------------------------
# Incremental event streaming (chunked, no value / Tree construction)
# ----------------------------------------------------------------------

_WHITESPACE = " \t\n\r"
_HEX_DIGITS = set("0123456789abcdefABCDEF")


def _json_decode_error(message: str, position: int) -> JSONParseError:
    return JSONParseError(message, position=position, category=BAD_LITERAL)


class _ChunkedJSONScanner:
    """Charwise scanner over a :class:`~repro.trees.chunked.ChunkFeeder`
    that validates tokens as it discards them."""

    def __init__(self, source, chunk_size: int):
        from .chunked import ChunkFeeder

        self.feeder = ChunkFeeder(
            source, chunk_size, error_factory=_json_decode_error
        )

    def error(self, message: str, category: str) -> JSONParseError:
        return JSONParseError(
            message, position=self.feeder.position, category=category
        )

    def peek(self):
        return self.feeder.peek()

    def advance(self):
        self.feeder.advance()

    def skip_whitespace(self) -> None:
        while True:
            ch = self.feeder.peek()
            if ch is None or ch not in _WHITESPACE:
                return
            self.feeder.advance()

    def expect(self, expected: str, category: str) -> None:
        ch = self.feeder.peek()
        if ch != expected:
            if ch is None:
                raise self.error("unexpected end of input", UNEXPECTED_END)
            raise self.error(
                f"expected {expected!r}, found {ch!r}", category
            )
        self.feeder.advance()

    def read_string(self) -> str:
        """Consume a quoted string (opening quote included) and return
        its decoded value; mirrors the strict parser's escape rules."""
        self.expect('"', MISSING_DELIMITER)
        out = []
        while True:
            ch = self.feeder.peek()
            if ch is None:
                raise self.error("unterminated string", UNTERMINATED_STRING)
            self.feeder.advance()
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                esc = self.feeder.peek()
                if esc is None:
                    raise self.error(
                        "unterminated escape", UNTERMINATED_STRING
                    )
                self.feeder.advance()
                if esc == "u":
                    out.append(self._read_unicode_escape())
                elif esc in '"\\/':
                    out.append(esc)
                elif esc == "b":
                    out.append("\b")
                elif esc == "f":
                    out.append("\f")
                elif esc == "n":
                    out.append("\n")
                elif esc == "r":
                    out.append("\r")
                elif esc == "t":
                    out.append("\t")
                else:
                    raise self.error(f"bad escape \\{esc}", BAD_ESCAPE)
            elif ord(ch) < 0x20:
                raise self.error(
                    f"raw control character {ch!r} in string",
                    CONTROL_CHAR,
                )
            else:
                out.append(ch)

    def _read_hex4(self) -> int:
        digits = []
        for _ in range(4):
            ch = self.feeder.peek()
            if ch is None or ch not in _HEX_DIGITS:
                raise self.error("bad \\u escape", BAD_ESCAPE)
            digits.append(ch)
            self.feeder.advance()
        return int("".join(digits), 16)

    def _read_unicode_escape(self) -> str:
        # Mirrors the strict parser: escaped surrogate pairs combine
        # into one astral code point, unpaired surrogates are kept, and
        # a high surrogate followed by a non-low escape re-enters the
        # loop (the second unit may itself start a pair).
        out = []
        unit = self._read_hex4()
        while True:
            paired = (
                0xD800 <= unit <= 0xDBFF
                and self.feeder.peek() == "\\"
                and self.feeder.peek(1) == "u"
            )
            if not paired:
                out.append(chr(unit))
                return "".join(out)
            self.feeder.advance()
            self.feeder.advance()
            low = self._read_hex4()
            if 0xDC00 <= low <= 0xDFFF:
                code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                out.append(chr(code))
                return "".join(out)
            out.append(chr(unit))
            unit = low

    def skip_scalar(self) -> None:
        """Consume one literal or number, validating its shape."""
        ch = self.feeder.peek()
        if ch == '"':
            self.read_string()
            return
        if ch is None:
            raise self.error("unexpected end of input", UNEXPECTED_END)
        if ch.isalpha():
            word = []
            while True:
                ch = self.feeder.peek()
                if ch is None or not ch.isalpha():
                    break
                word.append(ch)
                self.feeder.advance()
            if "".join(word) not in ("true", "false", "null"):
                raise self.error(
                    f"bad literal {''.join(word)!r}", BAD_LITERAL
                )
            return
        self._skip_number()

    def _skip_number(self) -> None:
        ch = self.feeder.peek()
        if ch == "-":
            self.feeder.advance()
            ch = self.feeder.peek()
        if ch is None or not ch.isdigit():
            raise self.error("malformed number", BAD_LITERAL)
        if ch == "0":
            self.feeder.advance()
        else:
            while (c := self.feeder.peek()) is not None and c.isdigit():
                self.feeder.advance()
        if self.feeder.peek() == ".":
            self.feeder.advance()
            if (c := self.feeder.peek()) is None or not c.isdigit():
                raise self.error(
                    "expected digits after decimal point", BAD_LITERAL
                )
            while (c := self.feeder.peek()) is not None and c.isdigit():
                self.feeder.advance()
        if self.feeder.peek() in ("e", "E"):
            self.feeder.advance()
            if self.feeder.peek() in ("+", "-"):
                self.feeder.advance()
            if (c := self.feeder.peek()) is None or not c.isdigit():
                raise self.error("expected digits in exponent", BAD_LITERAL)
            while (c := self.feeder.peek()) is not None and c.isdigit():
                self.feeder.advance()


def iter_json_events(
    source,
    chunk_size: int = 65536,
    root_label: str = "$",
    item_label: str = "item",
):
    """Yield ``("start", label)`` / ``("end", label)`` events
    incrementally from JSON ``source`` (a ``str``, ``bytes``, or
    file-like object), following :func:`json_to_tree`'s labeling: the
    root is ``root_label``, object members are labelled by their key,
    array elements by ``item_label``, and scalars are leaves.

    The document is tokenized in ``chunk_size`` pieces and never parsed
    into a value, so memory is bounded by nesting depth plus one chunk.
    Malformed input raises :class:`~repro.errors.JSONParseError` with
    the strict parser's category taxonomy.  (One deliberate divergence
    from ``events_of(parse_json_tree(text))``: duplicate object keys
    each yield their own events here, while ``dict`` semantics keep only
    the last.)
    """
    scanner = _ChunkedJSONScanner(source, chunk_size)
    scanner.skip_whitespace()
    # Stack of ("obj" | "arr", label-of-container).
    stack: List[Tuple[str, str]] = []
    label = root_label
    while True:
        # Parse one value labelled `label`.
        ch = scanner.peek()
        if ch is None:
            raise scanner.error("unexpected end of input", UNEXPECTED_END)
        closed = False
        if ch == "{":
            scanner.advance()
            yield ("start", label)
            scanner.skip_whitespace()
            if scanner.peek() == "}":
                scanner.advance()
                yield ("end", label)
                closed = True
            else:
                stack.append(("obj", label))
                label = scanner.read_string()
                scanner.skip_whitespace()
                scanner.expect(":", MISSING_DELIMITER)
                scanner.skip_whitespace()
        elif ch == "[":
            scanner.advance()
            yield ("start", label)
            scanner.skip_whitespace()
            if scanner.peek() == "]":
                scanner.advance()
                yield ("end", label)
                closed = True
            else:
                stack.append(("arr", label))
                label = item_label
        else:
            scanner.skip_scalar()
            yield ("start", label)
            yield ("end", label)
            closed = True
        # Unwind finished containers / advance to the next sibling.
        while closed and stack:
            kind, container_label = stack[-1]
            scanner.skip_whitespace()
            ch = scanner.peek()
            if ch == ",":
                scanner.advance()
                scanner.skip_whitespace()
                if kind == "obj":
                    label = scanner.read_string()
                    scanner.skip_whitespace()
                    scanner.expect(":", MISSING_DELIMITER)
                    scanner.skip_whitespace()
                else:
                    label = item_label
                closed = False
            elif (kind == "obj" and ch == "}") or (kind == "arr" and ch == "]"):
                scanner.advance()
                stack.pop()
                yield ("end", container_label)
            elif ch is None:
                raise scanner.error("unexpected end of input", UNEXPECTED_END)
            else:
                raise scanner.error(
                    f"expected {',' if kind == 'arr' else ', or closing brace'}"
                    f", found {ch!r}",
                    MISSING_DELIMITER,
                )
        if closed and not stack:
            scanner.skip_whitespace()
            if scanner.peek() is not None:
                raise scanner.error(
                    "trailing data after document", TRAILING_DATA
                )
            return
