"""A from-scratch JSON parser and the JSON-to-labeled-tree mapping.

The paper treats JSON documents as node-labeled trees (Figure 1b/1c):
object keys become node labels; arrays are ordered children.  As with
XML, there is no single "correct" mapping (Example 3.1) — we implement
the common one:

* the document root is a node labeled ``root_label`` (default ``"$"``);
* a key ``k`` becomes a child node labeled ``k``;
* array elements become children labeled ``item_label`` (default
  ``"item"``) of the array's node, preserving order;
* scalars are stored in the node's ``value``.

The parser is hand-written so that malformed documents yield classified
:class:`~repro.errors.JSONParseError`\\ s, mirroring the XML study's
error-taxonomy approach.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import JSONParseError
from .tree import Tree, TreeNode

# JSON error categories (for corpus studies in the XML-study style)
UNTERMINATED_STRING = "unterminated-string"
TRAILING_DATA = "trailing-data"
BAD_LITERAL = "bad-literal"
MISSING_DELIMITER = "missing-delimiter"
UNEXPECTED_END = "unexpected-end"
BAD_ESCAPE = "bad-escape"
CONTROL_CHAR = "control-character"

_WHITESPACE = " \t\n\r"
_DIGITS = "0123456789"
_HEX_DIGITS = "0123456789abcdefABCDEF"
_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


class _JSONScanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.n = len(text)

    def error(self, message: str, category: str) -> JSONParseError:
        return JSONParseError(message, position=self.pos, category=category)

    def skip_whitespace(self) -> None:
        while self.pos < self.n and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise self.error(
                f"expected {ch!r}, found {self.peek()!r}",
                MISSING_DELIMITER if self.peek() else UNEXPECTED_END,
            )
        self.pos += 1

    # -- value parsing ---------------------------------------------------------

    def parse_value(self) -> Any:
        self.skip_whitespace()
        ch = self.peek()
        if ch == "":
            raise self.error("unexpected end of input", UNEXPECTED_END)
        if ch == "{":
            return self.parse_object()
        if ch == "[":
            return self.parse_array()
        if ch == '"':
            return self.parse_string()
        if ch in "-0123456789":
            return self.parse_number()
        for literal, value in (
            ("true", True),
            ("false", False),
            ("null", None),
        ):
            if self.text.startswith(literal, self.pos):
                self.pos += len(literal)
                return value
        raise self.error(f"unexpected character {ch!r}", BAD_LITERAL)

    def parse_object(self) -> Dict[str, Any]:
        self.expect("{")
        out: Dict[str, Any] = {}
        self.skip_whitespace()
        if self.peek() == "}":
            self.pos += 1
            return out
        while True:
            self.skip_whitespace()
            if self.peek() != '"':
                raise self.error(
                    "object keys must be strings",
                    BAD_LITERAL if self.peek() else UNEXPECTED_END,
                )
            key = self.parse_string()
            self.skip_whitespace()
            self.expect(":")
            out[key] = self.parse_value()
            self.skip_whitespace()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("}")
            return out

    def parse_array(self) -> List[Any]:
        self.expect("[")
        out: List[Any] = []
        self.skip_whitespace()
        if self.peek() == "]":
            self.pos += 1
            return out
        while True:
            out.append(self.parse_value())
            self.skip_whitespace()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("]")
            return out

    def _parse_u_escape(self) -> int:
        """One ``\\uXXXX`` code unit (the backslash and 'u' are consumed)."""
        hexpart = self.text[self.pos : self.pos + 4]
        if len(hexpart) < 4 or any(c not in _HEX_DIGITS for c in hexpart):
            raise self.error("bad \\u escape", BAD_ESCAPE)
        self.pos += 4
        return int(hexpart, 16)

    def parse_string(self) -> str:
        self.expect('"')
        out: List[str] = []
        while True:
            if self.pos >= self.n:
                raise self.error("unterminated string", UNTERMINATED_STRING)
            ch = self.text[self.pos]
            self.pos += 1
            if ch == '"':
                return "".join(out)
            if ch == "\\":
                if self.pos >= self.n:
                    raise self.error(
                        "unterminated escape", UNTERMINATED_STRING
                    )
                esc = self.text[self.pos]
                self.pos += 1
                if esc == "u":
                    unit = self._parse_u_escape()
                    # An escaped high surrogate followed by an escaped
                    # low surrogate encodes one astral code point
                    # (backslash-u D834 then DD1E decodes to U+1D11E);
                    # unpaired surrogates are kept as-is, matching the
                    # stdlib decoder.
                    if (
                        0xD800 <= unit <= 0xDBFF
                        and self.text.startswith("\\u", self.pos)
                    ):
                        mark = self.pos
                        self.pos += 2
                        low = self._parse_u_escape()
                        if 0xDC00 <= low <= 0xDFFF:
                            unit = (
                                0x10000
                                + ((unit - 0xD800) << 10)
                                + (low - 0xDC00)
                            )
                        else:
                            self.pos = mark  # not a pair; reread normally
                    out.append(chr(unit))
                elif esc in _ESCAPES:
                    out.append(_ESCAPES[esc])
                else:
                    raise self.error(f"bad escape \\{esc}", BAD_ESCAPE)
            elif ch < "\x20":
                self.pos -= 1
                raise self.error(
                    f"unescaped control character {ch!r} in string",
                    CONTROL_CHAR,
                )
            else:
                out.append(ch)

    def _scan_digits(self) -> int:
        count = 0
        while self.pos < self.n and self.text[self.pos] in _DIGITS:
            self.pos += 1
            count += 1
        return count

    def parse_number(self):
        """Scan a number with the exact RFC 8259 grammar.

        ``int`` is ``0`` or a non-zero digit followed by digits (so ``01``
        stops after the ``0`` and the ``1`` becomes trailing input, as in
        the stdlib tokenizer); ``frac``/``exp`` require at least one digit.
        """
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        if self.peek() == "0":
            self.pos += 1
        elif self._scan_digits() == 0:
            raise self.error("malformed number", BAD_LITERAL)
        is_float = False
        if self.peek() == ".":
            is_float = True
            self.pos += 1
            if self._scan_digits() == 0:
                raise self.error(
                    "expected digits after decimal point", BAD_LITERAL
                )
        if self.peek() in ("e", "E"):
            is_float = True
            self.pos += 1
            if self.peek() in ("+", "-"):
                self.pos += 1
            if self._scan_digits() == 0:
                raise self.error(
                    "expected digits in exponent", BAD_LITERAL
                )
        raw = self.text[start : self.pos]
        return float(raw) if is_float else int(raw)


def parse_json(text: str) -> Any:
    """Parse a JSON document into Python values (dict/list/scalars)."""
    scanner = _JSONScanner(text)
    value = scanner.parse_value()
    scanner.skip_whitespace()
    if scanner.pos != scanner.n:
        raise scanner.error("trailing data after document", TRAILING_DATA)
    return value


def json_to_tree(
    value: Any, root_label: str = "$", item_label: str = "item"
) -> Tree:
    """Map a parsed JSON value to a node-labeled ordered tree."""

    def build(label: str, val: Any) -> TreeNode:
        node = TreeNode(label)
        if isinstance(val, dict):
            for key, sub in val.items():
                node.add_child(build(key, sub))
        elif isinstance(val, list):
            for sub in val:
                node.add_child(build(item_label, sub))
        else:
            node.value = val
        return node

    return Tree(build(root_label, value))


def parse_json_tree(
    text: str, root_label: str = "$", item_label: str = "item"
) -> Tree:
    """Parse JSON text directly into a labeled tree."""
    return json_to_tree(parse_json(text), root_label, item_label)


def json_nesting_depth(value: Any) -> int:
    """Maximum nesting depth of a parsed JSON value (scalars have depth 1).

    The Maiwald et al. schema study (Section 4.5) reports maximum nesting
    depths of 3–43 for non-recursive JSON schemas; this is the document
    analogue of that metric.
    """
    if isinstance(value, dict):
        if not value:
            return 1
        return 1 + max(json_nesting_depth(v) for v in value.values())
    if isinstance(value, list):
        if not value:
            return 1
        return 1 + max(json_nesting_depth(v) for v in value)
    return 1
