"""Extended DTDs and single-type EDTDs (Definitions 4.10–4.12) — the
theoretical abstraction of XML Schema.

* :class:`EDTD` — types Γ, a DTD over Γ, and the renaming µ : Γ → Σ.
  Validation is bottom-up set-typing: for every node we compute the set
  of types its subtree admits, stepping the Glushkov automaton of each
  candidate content model over the children's admissible type sets.
  This decides ``T ∈ L(D)`` in polynomial time for arbitrary EDTDs.
* :class:`EDTD.is_single_type` / :func:`validate_single_type` — the
  Element Declarations Consistent restriction of XML Schema: inside one
  content model, no two distinct types share an element name.  For
  single-type EDTDs validation is one deterministic top-down pass
  (each child's type is determined by its label and its parent's type),
  which is exactly why XML Schema validators can stream.
* :meth:`EDTD.is_structurally_dtd` — the Bex et al. test behind the
  "25 of 30 XSDs are structurally equivalent to a DTD" finding
  (Section 4.4): an stEDTD collapses to a DTD iff all reachable types of
  the same element name enforce the same (µ-renamed) content language.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional as Opt, Set, Tuple

from ..errors import SchemaError, ValidationError
from ..regex.ast import Regex, Symbol
from ..regex.automata import NFA, glushkov
from ..regex.ops import equivalent
from ..regex.parser import parse as parse_regex
from .tree import Tree, TreeNode


@dataclass
class EDTD:
    """An extended DTD ``(Σ, Γ, ρ, S, µ)``.

    ``rules`` maps each *type* to the regular expression (over Γ) its
    children's types must match; ``start_types ⊆ Γ``; ``mu`` maps types
    to element labels.  Types without an explicit rule default to ε.
    """

    rules: Dict[str, Regex]
    start_types: FrozenSet[str]
    mu: Dict[str, str]

    def __post_init__(self):
        self.start_types = frozenset(self.start_types)
        if not self.start_types:
            raise SchemaError("an EDTD needs at least one start type")
        missing = (set(self.rules) | set(self.start_types)) - set(self.mu)
        for body in self.rules.values():
            missing |= body.alphabet() - set(self.mu)
        if missing:
            # identity default: a type without explicit µ maps to itself
            for type_name in missing:
                self.mu[type_name] = type_name
        self._automata: Dict[str, NFA] = {}

    @classmethod
    def from_rules(
        cls,
        rules: Dict[str, str],
        start: Iterable[str],
        mu: Opt[Dict[str, str]] = None,
    ) -> "EDTD":
        """Build from textual rules, e.g. Example 4.11::

            EDTD.from_rules(
                {"persons": "person*",
                 "person": "name (birthplace-US + birthplace-Intl)",
                 "birthplace-US": "city state country?",
                 "birthplace-Intl": "city state country"},
                start=["persons"],
                mu={"birthplace-US": "birthplace",
                    "birthplace-Intl": "birthplace"},
            )
        """
        from ..regex.ast import EPSILON

        parsed = {
            t: (
                EPSILON
                if not body.strip()
                else parse_regex(body, multi_char=True)
            )
            for t, body in rules.items()
        }
        return cls(parsed, frozenset(start), dict(mu or {}))

    # -- basic structure ---------------------------------------------------------

    def types(self) -> FrozenSet[str]:
        out: Set[str] = set(self.rules) | set(self.start_types)
        for body in self.rules.values():
            out |= body.alphabet()
        return frozenset(out)

    def labels(self) -> FrozenSet[str]:
        return frozenset(self.mu[t] for t in self.types())

    def expression_for(self, type_name: str) -> Regex:
        from ..regex.ast import EPSILON

        return self.rules.get(type_name, EPSILON)

    def types_for_label(self, label: str) -> List[str]:
        return sorted(t for t in self.types() if self.mu[t] == label)

    def reachable_types(self) -> FrozenSet[str]:
        seen: Set[str] = set(self.start_types)
        queue = deque(seen)
        while queue:
            type_name = queue.popleft()
            for nxt in self.expression_for(type_name).alphabet():
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return frozenset(seen)

    # -- single-type restriction (Definition 4.12) --------------------------------

    def single_type_violation(self) -> Opt[str]:
        """A description of the first Element-Declarations-Consistent
        violation, or None when this is a single-type EDTD."""

        def check(types: Iterable[str], context: str) -> Opt[str]:
            by_label: Dict[str, str] = {}
            for type_name in sorted(types):
                label = self.mu[type_name]
                if label in by_label and by_label[label] != type_name:
                    return (
                        f"types {by_label[label]!r} and {type_name!r} share "
                        f"element name {label!r} in {context}"
                    )
                by_label[label] = type_name
            return None

        violation = check(self.start_types, "the start set")
        if violation:
            return violation
        for type_name, body in self.rules.items():
            violation = check(body.alphabet(), f"the rule for {type_name!r}")
            if violation:
                return violation
        return None

    def is_single_type(self) -> bool:
        return self.single_type_violation() is None

    # -- validation ----------------------------------------------------------------

    def _automaton(self, type_name: str) -> NFA:
        if type_name not in self._automata:
            self._automata[type_name] = glushkov(
                self.expression_for(type_name)
            )
        return self._automata[type_name]

    def _admissible_types(self, node: TreeNode) -> Set[str]:
        """Bottom-up set typing: all types t with µ(t) = label(node) such
        that the children admit a typing matching ρ(t)."""
        child_sets = [self._admissible_types(child) for child in node.children]
        result: Set[str] = set()
        for type_name in self.types():
            if self.mu[type_name] != node.label:
                continue
            nfa = self._automaton(type_name)
            states = nfa.epsilon_closure(nfa.initial)
            ok = True
            for admissible in child_sets:
                nxt: Set[int] = set()
                for child_type in admissible:
                    nxt |= nfa.step(states, child_type)
                if not nxt:
                    ok = False
                    break
                states = frozenset(nxt)
            if ok and states & nfa.finals:
                result.add(type_name)
        return result

    def validate(self, tree: Tree) -> bool:
        """Whether some typing witnesses ``tree ∈ L(D)`` (Definition 4.10)."""
        admissible = self._admissible_types(tree.root)
        return bool(admissible & self.start_types)

    def validate_or_raise(self, tree: Tree) -> None:
        if not self.validate(tree):
            raise ValidationError(
                f"tree with root {tree.root.label!r} does not satisfy the EDTD"
            )

    def witness_typing(self, tree: Tree) -> Opt[Tree]:
        """A typed witness tree ``T^Γ`` with ``µ(T^Γ) = T``, or None.

        Reconstructed top-down from the bottom-up admissible sets.
        """
        admissible_cache: Dict[int, Set[str]] = {}

        def admissible(node: TreeNode) -> Set[str]:
            key = id(node)
            if key not in admissible_cache:
                child_sets = [admissible(child) for child in node.children]
                result: Set[str] = set()
                for type_name in self.types():
                    if self.mu[type_name] != node.label:
                        continue
                    if self._match_with_choice(
                        type_name, child_sets
                    ) is not None:
                        result.add(type_name)
                admissible_cache[key] = result
            return admissible_cache[key]

        roots = admissible(tree.root) & self.start_types
        if not roots:
            return None

        def build(node: TreeNode, type_name: str) -> TreeNode:
            child_sets = [admissible(child) for child in node.children]
            chosen = self._match_with_choice(type_name, child_sets)
            assert chosen is not None
            out = TreeNode(type_name)
            out.children = [
                build(child, child_type)
                for child, child_type in zip(node.children, chosen)
            ]
            return out

        return Tree(build(tree.root, sorted(roots)[0]))

    def _match_with_choice(
        self, type_name: str, child_sets: List[Set[str]]
    ) -> Opt[List[str]]:
        """A per-child type choice making the children word match ρ(type),
        or None.  BFS over (position, NFA-state-set is not enough to
        recover choices), so we track one witness type per step."""
        nfa = self._automaton(type_name)
        frontier: Dict[FrozenSet[int], List[str]] = {
            nfa.epsilon_closure(nfa.initial): []
        }
        for admissible in child_sets:
            nxt_frontier: Dict[FrozenSet[int], List[str]] = {}
            for states, chosen in frontier.items():
                for child_type in sorted(admissible):
                    nxt = nfa.step(states, child_type)
                    if nxt and nxt not in nxt_frontier:
                        nxt_frontier[nxt] = chosen + [child_type]
            if not nxt_frontier:
                return None
            frontier = nxt_frontier
        for states, chosen in frontier.items():
            if states & nfa.finals:
                return chosen
        return None

    # -- DTD expressibility (Section 4.4) -------------------------------------------

    def mu_image(self, type_name: str) -> Regex:
        """The content model of ``type_name`` with types renamed to labels."""

        def rename(expr: Regex) -> Regex:
            from ..regex.ast import Concat, Optional as Opt_, Plus, Star, Union

            if isinstance(expr, Symbol):
                return Symbol(self.mu[expr.label])
            if isinstance(expr, Concat):
                return Concat(tuple(rename(p) for p in expr.parts))
            if isinstance(expr, Union):
                return Union(tuple(rename(p) for p in expr.parts))
            if isinstance(expr, Star):
                return Star(rename(expr.child))
            if isinstance(expr, Plus):
                return Plus(rename(expr.child))
            if isinstance(expr, Opt_):
                return Opt_(rename(expr.child))
            return expr

        return rename(self.expression_for(type_name))

    def is_structurally_dtd(self) -> bool:
        """Whether the schema is structurally equivalent to a DTD: all
        reachable types of the same element name enforce the same
        µ-renamed content language (decided with regex equivalence).

        This is the criterion behind Bex et al.'s "25 of 30 XSDs are
        structurally a DTD"; the remaining schemas genuinely use
        ancestor-dependent types, as in Figure 2a.
        """
        by_label: Dict[str, List[str]] = {}
        for type_name in self.reachable_types():
            by_label.setdefault(self.mu[type_name], []).append(type_name)
        for _label, types in by_label.items():
            if len(types) < 2:
                continue
            reference = self.mu_image(types[0])
            for other in types[1:]:
                if not equivalent(reference, self.mu_image(other)):
                    return False
        return True

    def to_dtd(self):
        """Collapse to a DTD when :meth:`is_structurally_dtd` holds."""
        from .dtd import DTD

        if not self.is_structurally_dtd():
            raise SchemaError(
                "EDTD uses ancestor-dependent types; not DTD-expressible"
            )
        rules: Dict[str, Regex] = {}
        for type_name in self.reachable_types():
            label = self.mu[type_name]
            if label not in rules:
                rules[label] = self.mu_image(type_name)
        start_labels = frozenset(self.mu[t] for t in self.start_types)
        return DTD(rules, start_labels)


def validate_single_type(edtd: EDTD, tree: Tree) -> bool:
    """One-pass top-down validation for single-type EDTDs.

    Each node's type is uniquely determined by its label and its parent's
    type, so the pass assigns types deterministically and checks every
    content model once — the streaming-friendly discipline XML Schema's
    Element Declarations Consistent constraint buys (Section 4.3).
    """
    violation = edtd.single_type_violation()
    if violation is not None:
        raise SchemaError(f"not a single-type EDTD: {violation}")
    root_types = [
        t for t in edtd.start_types if edtd.mu[t] == tree.root.label
    ]
    if not root_types:
        return False
    stack: List[Tuple[TreeNode, str]] = [(tree.root, root_types[0])]
    while stack:
        node, type_name = stack.pop()
        body = edtd.expression_for(type_name)
        type_of_label = {
            edtd.mu[t]: t for t in body.alphabet()
        }
        typed_word = []
        for child in node.children:
            child_type = type_of_label.get(child.label)
            if child_type is None:
                return False
            typed_word.append(child_type)
            stack.append((child, child_type))
        if not edtd._automaton(type_name).accepts(tuple(typed_word)):
            return False
    return True
