"""Calibrated random DTD corpora — the stand-in for the crawled schema
collections of Choi and Bex et al. (DESIGN.md §2).

The published corpus statistics the generator is calibrated to:

* over 92% of content models are chain regular expressions and over 99%
  are SOREs (Bex et al., Sections 4.2.2–4.2.3);
* 35 of 60 DTDs are recursive (Choi, Section 4.1), and non-recursive
  ones allow document depths up to 20;
* content-model parse depths range from 1 to 9;
* a small fraction of content models is non-deterministic, violating the
  XML standard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional as Opt

from ..regex.ast import Concat, Regex, Star, Symbol, Union, star
from ..regex.generators import ChareProfile, random_chare, random_regex
from .dtd import DTD


@dataclass
class DTDCorpusProfile:
    """Mixture parameters for :func:`random_dtd_corpus`.

    Defaults reproduce the published rates: 92% CHARE content models,
    99% SORE, ~58% recursive DTDs (Choi's 35/60).
    """

    num_labels_min: int = 4
    num_labels_max: int = 12
    chare_rate: float = 0.92
    recursion_rate: float = 0.58
    nondeterministic_rate: float = 0.05
    chare_profile: Opt[ChareProfile] = None


def random_dtd(
    rng: random.Random, profile: Opt[DTDCorpusProfile] = None
) -> DTD:
    """One random DTD with the profile's content-model mixture.

    Labels form a layered hierarchy (rules reference deeper labels),
    which keeps the DTD non-recursive; with probability
    ``recursion_rate`` one back-edge is added to a rule, making it
    recursive the way real document schemas are (sections containing
    sections, lists containing lists).
    """
    profile = profile or DTDCorpusProfile()
    chare_profile = profile.chare_profile or ChareProfile()
    num_labels = rng.randint(profile.num_labels_min, profile.num_labels_max)
    labels = [f"e{i}" for i in range(num_labels)]
    rules: Dict[str, Regex] = {}
    for depth, label in enumerate(labels):
        deeper = labels[depth + 1 :]
        if not deeper:
            break
        if rng.random() < profile.chare_rate:
            body = random_chare(deeper, rng, chare_profile)
        else:
            body = random_regex(deeper, depth=2, rng=rng)
        rules[label] = body
    if rng.random() < profile.recursion_rate and len(labels) >= 2:
        # add one back edge: some deep label may contain the root again
        deep_label = labels[-1]
        rules[deep_label] = star(Symbol(labels[0]))
    if rng.random() < profile.nondeterministic_rate:
        # inject the paper's canonical non-deterministic content model
        victims = [label for label in rules]
        if victims:
            victim = rng.choice(victims)
            targets = sorted(rules[victim].alphabet()) or [labels[-1]]
            a = targets[0]
            b = targets[-1]
            rules[victim] = Concat(
                (Star(Union((Symbol(a), Symbol(b)))), Symbol(a))
            )
    return DTD(rules, frozenset([labels[0]]))


def random_dtd_corpus(
    size: int,
    seed: int = 0,
    profile: Opt[DTDCorpusProfile] = None,
) -> List[DTD]:
    """A corpus of random DTDs with the calibrated mixture."""
    rng = random.Random(seed)
    return [random_dtd(rng, profile) for _ in range(size)]


def corpus_statistics(corpus: List[DTD]) -> Dict[str, float]:
    """The Choi/Bex-style corpus report: recursion rate, CHARE/SORE/
    determinism rates over all content models, and depth statistics."""
    from ..regex.classes import is_chare, is_sore
    from ..regex.determinism import is_deterministic

    total_rules = 0
    chare_rules = 0
    sore_rules = 0
    deterministic_rules = 0
    parse_depths: List[int] = []
    recursive = 0
    max_depths: List[int] = []
    for dtd in corpus:
        if dtd.is_recursive():
            recursive += 1
        else:
            depth = dtd.max_document_depth()
            if depth is not None:
                max_depths.append(depth)
        for body in dtd.rules.values():
            total_rules += 1
            chare_rules += is_chare(body)
            sore_rules += is_sore(body)
            deterministic_rules += is_deterministic(body)
            parse_depths.append(body.parse_depth())
    return {
        "dtds": len(corpus),
        "recursive_fraction": recursive / len(corpus) if corpus else 0.0,
        "rules": total_rules,
        "chare_fraction": chare_rules / total_rules if total_rules else 0.0,
        "sore_fraction": sore_rules / total_rules if total_rules else 0.0,
        "deterministic_fraction": (
            deterministic_rules / total_rules if total_rules else 0.0
        ),
        "max_parse_depth": max(parse_depths, default=0),
        "max_document_depth": max(max_depths, default=0),
    }
