"""Regular path query evaluation over RDF graphs (Sections 9.2, 9.6).

Three semantics, mirroring the theory the paper surveys:

* **Homomorphism (walk) semantics** — what SPARQL property paths use:
  a pair (u, v) is an answer when *some walk* from u to v spells a word
  of the language.  :func:`evaluate_rpq` implements the classical
  product-of-graph-and-automaton BFS, polynomial in graph × automaton.
* **Simple-path semantics** — the walk must not repeat nodes.
  NP-complete in general (Mendelzon & Wood); tractable exactly for the
  class C_tract (Bagan, Bonifati & Groz).  :func:`exists_simple_path`
  is the exact (exponential worst-case) decision procedure;
  :func:`exists_simple_path_smart` routes downward-closed-chain
  expressions through walk semantics (cutting cycles out of a matching
  walk keeps the word in a subword-closed language, so walk-reachability
  and simple-path-reachability coincide — the tractability mechanism
  behind C_tract).
* **Trail semantics** — no repeated *edges* (the Cypher default);
  :func:`exists_trail` is the exact procedure.

Two-way expressions (2RPQs) are supported by the inverse-atom
convention: a symbol ``^p`` traverses a ``p``-edge backwards.

Evaluation is delegated to the compiled-plan engine
(:mod:`repro.graphs.engine`): expressions are compiled once into
bitmask-stepping plans, cached per canonical AST, and run on the
store's integer-interned adjacency.  The original direct procedures are
kept as ``*_reference`` functions — they define the semantics, back the
randomized equivalence tests, and serve as the benchmark baseline.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, Optional as Opt, Set, Tuple

from ..regex.ast import Regex
from ..regex.automata import NFA, glushkov
from ..regex.chare import is_downward_closed_chain
from .engine import compile_rpq
from .rdf import TripleStore


def _step_graph(
    store: TripleStore, node: str, label: str
) -> FrozenSet[str]:
    """Successors of ``node`` under atom ``label`` (inverse-aware)."""
    if label.startswith("^"):
        return store.predecessors(node, label[1:])
    return store.successors(node, label)


def evaluate_rpq(
    store: TripleStore,
    expr: Regex,
    sources: Opt[Iterable[str]] = None,
    targets: Opt[Iterable[str]] = None,
) -> Set[Tuple[str, str]]:
    """All pairs (u, v) connected by a walk spelling a word of L(expr).

    Product BFS over (graph node, automaton state) using the compiled
    plan for ``expr``; when ``sources`` is given only those start nodes
    are explored.  ``targets`` filters the *answers*, not the
    exploration: the walk may pass through any node of the graph, and
    only the final (u, v) pairs are restricted to ``v in targets``.
    """
    if sources is not None:
        sources = list(sources)
        if not sources:
            return set()  # nothing to explore; skip compiling the plan
    return compile_rpq(expr).evaluate(store, sources, targets)


def evaluate_rpq_reference(
    store: TripleStore,
    expr: Regex,
    sources: Opt[Iterable[str]] = None,
    targets: Opt[Iterable[str]] = None,
) -> Set[Tuple[str, str]]:
    """The seed evaluator: uncompiled per-source product BFS over the
    string-keyed indexes.  Semantically authoritative, kept as the
    equivalence-test oracle and benchmark baseline."""
    nfa = glushkov(expr)
    start_states = nfa.epsilon_closure(nfa.initial)
    start_nodes = (
        list(sources) if sources is not None else sorted(store.nodes())
    )
    target_filter = set(targets) if targets is not None else None
    answers: Set[Tuple[str, str]] = set()
    for source in start_nodes:
        seen: Set[Tuple[str, int]] = {
            (source, state) for state in start_states
        }
        queue = deque(seen)
        if start_states & nfa.finals:
            if target_filter is None or source in target_filter:
                answers.add((source, source))
        while queue:
            node, state = queue.popleft()
            for label in nfa.transitions[state]:
                for next_state in nfa.transitions[state][label]:
                    for next_node in _step_graph(store, node, label):
                        pair = (next_node, next_state)
                        if pair in seen:
                            continue
                        seen.add(pair)
                        queue.append(pair)
                        if next_state in nfa.finals:
                            if (
                                target_filter is None
                                or next_node in target_filter
                            ):
                                answers.add((source, next_node))
    return answers


def reachable_by_rpq(
    store: TripleStore, expr: Regex, source: str
) -> Set[str]:
    """Nodes reachable from ``source`` under walk semantics."""
    return {v for _u, v in evaluate_rpq(store, expr, sources=[source])}


# ---------------------------------------------------------------------------
# Simple paths and trails (exact procedures)
# ---------------------------------------------------------------------------


def _search(
    store: TripleStore,
    nfa: NFA,
    source: str,
    target: str,
    forbid_nodes: bool,
) -> bool:
    """DFS over (node, state-set) with the visited-node or visited-edge
    set threaded through — exact but worst-case exponential."""
    start = nfa.epsilon_closure(nfa.initial)
    if source == target and (start & nfa.finals):
        return True

    def labels_from(states: FrozenSet[int]) -> Set[str]:
        out: Set[str] = set()
        for state in states:
            out.update(nfa.transitions[state].keys())
        return out

    def step_states(states: FrozenSet[int], label: str) -> FrozenSet[int]:
        return nfa.step(states, label)

    def dfs(
        node: str,
        states: FrozenSet[int],
        used_nodes: FrozenSet[str],
        used_edges: FrozenSet[Tuple[str, str, str]],
    ) -> bool:
        for label in sorted(labels_from(states)):
            next_states = step_states(states, label)
            if not next_states:
                continue
            for next_node in sorted(_step_graph(store, node, label)):
                if forbid_nodes and next_node in used_nodes:
                    continue
                if label.startswith("^"):
                    edge = (next_node, label[1:], node)
                else:
                    edge = (node, label, next_node)
                if not forbid_nodes and edge in used_edges:
                    continue
                if next_node == target and (next_states & nfa.finals):
                    return True
                if dfs(
                    next_node,
                    next_states,
                    used_nodes | {next_node},
                    used_edges | {edge},
                ):
                    return True
        return False

    return dfs(source, start, frozenset({source}), frozenset())


def exists_simple_path(
    store: TripleStore, expr: Regex, source: str, target: str
) -> bool:
    """Exact simple-path decision (no repeated nodes); NP-hard in
    general, fine on study-sized graphs."""
    return compile_rpq(expr).search(store, source, target, forbid_nodes=True)


def exists_trail(
    store: TripleStore, expr: Regex, source: str, target: str
) -> bool:
    """Exact trail decision (no repeated edges)."""
    return compile_rpq(expr).search(store, source, target, forbid_nodes=False)


def exists_simple_path_reference(
    store: TripleStore, expr: Regex, source: str, target: str
) -> bool:
    """Uncompiled simple-path decision (the equivalence-test oracle)."""
    return _search(store, glushkov(expr), source, target, forbid_nodes=True)


def exists_trail_reference(
    store: TripleStore, expr: Regex, source: str, target: str
) -> bool:
    """Uncompiled trail decision (the equivalence-test oracle)."""
    return _search(store, glushkov(expr), source, target, forbid_nodes=False)


def exists_simple_path_smart(
    store: TripleStore, expr: Regex, source: str, target: str
) -> bool:
    """Simple-path decision with the C_tract fast path.

    For downward-closed chains (all factors optional/starred — the
    engine room of C_tract) a matching walk can always be shortened to a
    simple path by cutting cycles, because cutting removes an infix and
    subword-closed languages survive infix removal.  Walk semantics then
    answers the simple-path question in polynomial time.  Everything
    else falls back to the exact exponential search.
    """
    if is_downward_closed_chain(expr):
        pairs = evaluate_rpq(
            store, expr, sources=[source], targets=[target]
        )
        return (source, target) in pairs
    return exists_simple_path(store, expr, source, target)


def count_walk_answers(store: TripleStore, expr: Regex) -> int:
    """|answers| under walk semantics — used by the benches."""
    return len(evaluate_rpq(store, expr))
