"""Discrete power-law fitting for degree distributions (Section 7.1.1).

Practical studies repeatedly observe power laws in RDF data: triples per
document (Ding & Finin), in-/out-degrees (Bachlechner & Strang,
Fernandez et al.).  This module provides the standard tooling to make
such observations reproducible:

* :func:`fit_power_law` — maximum-likelihood estimate of the exponent α
  for a discrete power law ``p(k) ∝ k^(−α)`` with ``k ≥ k_min``, using
  the Clauset–Shalizi–Newman approximation
  ``α ≈ 1 + n / Σ ln(k_i / (k_min − ½))``;
* :func:`ccdf` — the empirical complementary CDF (the straight line on a
  log-log plot that studies eyeball);
* :func:`looks_heavy_tailed` — a pragmatic classifier comparing the
  tail's CCDF decay against an exponential alternative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass
class PowerLawFit:
    """Result of :func:`fit_power_law`."""

    alpha: float
    k_min: int
    tail_size: int

    def pdf(self, k: int) -> float:
        """Normalized (approximately, via the Hurwitz zeta truncated sum)
        probability of degree ``k`` under the fitted law."""
        if k < self.k_min:
            return 0.0
        normalization = sum(
            j ** (-self.alpha) for j in range(self.k_min, self.k_min + 10000)
        )
        return (k ** (-self.alpha)) / normalization


def fit_power_law(values: Iterable[int], k_min: int = 1) -> PowerLawFit:
    """MLE exponent for the tail ``{v ≥ k_min}`` of a discrete sample."""
    tail = [v for v in values if v >= k_min]
    if not tail:
        raise ValueError("no observations at or above k_min")
    if k_min < 1:
        raise ValueError("k_min must be >= 1")
    denominator = sum(math.log(v / (k_min - 0.5)) for v in tail)
    alpha = 1.0 + len(tail) / denominator
    return PowerLawFit(alpha, k_min, len(tail))


def ccdf(values: Iterable[int]) -> List[Tuple[int, float]]:
    """Empirical complementary CDF: pairs ``(k, P[X ≥ k])`` for each
    distinct observed value, sorted ascending."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    out: List[Tuple[int, float]] = []
    i = 0
    while i < n:
        k = data[i]
        out.append((k, (n - i) / n))
        while i < n and data[i] == k:
            i += 1
    return out


def degree_histogram(values: Iterable[int]) -> Dict[int, int]:
    histogram: Dict[int, int] = {}
    for value in values:
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def looks_heavy_tailed(
    values: Sequence[int], min_max_ratio: float = 10.0
) -> bool:
    """A pragmatic heavy-tail detector for study reports: the maximum
    degree must dwarf the mean (Bachlechner & Strang report max 7739 vs
    mean 9.56), and the log-log CCDF must be closer to linear than the
    lin-log CCDF (power law beats exponential)."""
    data = [v for v in values if v >= 1]
    if len(data) < 10:
        return False
    mean = sum(data) / len(data)
    if max(data) < min_max_ratio * mean:
        return False
    points = ccdf(data)
    if len(points) < 4:
        return False
    loglog = [(math.log(k), math.log(p)) for k, p in points if p > 0]
    linlog = [(float(k), math.log(p)) for k, p in points if p > 0]

    def linearity(points_xy: List[Tuple[float, float]]) -> float:
        n = len(points_xy)
        sx = sum(x for x, _y in points_xy)
        sy = sum(y for _x, y in points_xy)
        sxx = sum(x * x for x, _y in points_xy)
        sxy = sum(x * y for x, y in points_xy)
        syy = sum(y * y for _x, y in points_xy)
        num = n * sxy - sx * sy
        den = math.sqrt(
            max(n * sxx - sx * sx, 1e-12) * max(n * syy - sy * sy, 1e-12)
        )
        return abs(num / den)

    return linearity(loglog) >= linearity(linlog)
