"""Parallel RPQ evaluation with zero-copy workers.

The compiled engine (:mod:`repro.graphs.engine`) answers one RPQ at a
time; a study workload answers *batteries* of them over one graph.
:func:`evaluate_rpq_many` fans a list of expressions out over a
:class:`~concurrent.futures.ProcessPoolExecutor` — and over a
:class:`~repro.store.mmapstore.MappedTripleStore` the fan-out is
*zero-copy*: the store pickles as its image path (a few dozen bytes),
every worker re-attaches via the per-process
:func:`~repro.store.mmapstore.attach` cache, and all workers read the
same physical pages the OS mapped once.  No triple, node name, or
adjacency list ever crosses the pickle boundary in either direction of
a task — only expressions out and ``(source, target)`` name pairs back.

A live (mutable) :class:`~repro.graphs.rdf.TripleStore` also works but
is copied into every worker by pickling; callers with more than a
trivial store should ``save()`` it once and fan out over the mapped
image.  The chunking uses the same pool-width-first fan-out discipline
as the log pipeline (:func:`repro.core.parallelism.fanout_chunk_size`),
so a handful of expressions still spreads across every worker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional as Opt, Sequence, Set, Tuple

from ..core.parallelism import fanout_chunks, pool_width, usable_cpus
from ..regex.ast import Regex
from .engine import CompiledRPQ, compile_rpq
from .rdf import TripleStore

#: expressions per pool task before fan-out widening kicks in
DEFAULT_CHUNK_SIZE = 16


def _rpq_batch(
    payload: Tuple[
        TripleStore, List[Regex], Opt[List[str]], Opt[List[str]]
    ]
) -> List[Set[Tuple[str, str]]]:
    """Process-pool worker: evaluate one chunk of expressions.

    ``store`` arrives attached-by-path when it is a mapped image (see
    :meth:`~repro.store.mmapstore.MappedTripleStore.__reduce__`), so
    repeated tasks in one worker share one mapping *and* one engine
    specialization cache.
    """
    store, exprs, sources, targets = payload
    return [
        compile_rpq(expr).evaluate(store, sources=sources, targets=targets)
        for expr in exprs
    ]


def evaluate_rpq_many(
    store: TripleStore,
    exprs: Sequence[Regex],
    workers: Opt[int] = None,
    sources: Opt[Iterable[str]] = None,
    targets: Opt[Iterable[str]] = None,
    chunk_size: Opt[int] = None,
    pool: Opt[ProcessPoolExecutor] = None,
) -> List[Set[Tuple[str, str]]]:
    """Evaluate many RPQs over one store; answers align with ``exprs``.

    Each answer is the full ``{(source, target)}`` pair set of
    :meth:`CompiledRPQ.evaluate` (restricted to ``sources`` when
    given; ``targets`` filters the answers, not the exploration —
    the same contract as :func:`repro.graphs.paths.evaluate_rpq` and
    the service's ``rpq`` endpoint).  With ``workers`` > 1 — or a lent
    ``pool``, which is borrowed and left running — the expressions are
    fanned out over a process pool; otherwise they are evaluated
    inline.  The single-CPU downgrade mirrors
    :func:`repro.logs.pipeline.run_study`: a pool cannot win on one
    usable core, so the call quietly runs inline.
    """
    exprs = list(exprs)
    if not exprs:
        return []
    source_list = list(sources) if sources is not None else None
    target_list = list(targets) if targets is not None else None
    parallel = pool is not None or (workers and workers > 1)
    if parallel and pool is None and usable_cpus() < 2:
        parallel = False
    if not parallel or len(exprs) == 1:
        plans: List[CompiledRPQ] = [compile_rpq(expr) for expr in exprs]
        return [
            plan.evaluate(store, sources=source_list, targets=target_list)
            for plan in plans
        ]
    chunk_size = chunk_size or DEFAULT_CHUNK_SIZE
    chunks = fanout_chunks(exprs, pool_width(workers, pool), chunk_size)
    own_pool = (
        ProcessPoolExecutor(max_workers=workers) if pool is None else None
    )
    try:
        batches = list(
            (pool or own_pool).map(
                _rpq_batch,
                [
                    (store, chunk, source_list, target_list)
                    for chunk in chunks
                ],
            )
        )
    finally:
        if own_pool is not None:
            own_pool.shutdown()
    return [answer for batch in batches for answer in batch]
