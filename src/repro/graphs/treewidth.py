"""Treewidth estimation for real-world graph data (Section 7.1, Table 1).

Deciding treewidth ≤ k is NP-complete (Arnborg–Corneil–Proskurowski), so
the Maniu et al. study — like this module — reports *intervals*:

* **Upper bounds** from elimination-ordering heuristics:
  :func:`upper_bound_min_degree` and :func:`upper_bound_min_fill`.
  Both also return the tree decomposition they construct, and
  :func:`is_valid_decomposition` checks the three decomposition axioms,
  so upper bounds are certified.
* **Lower bounds**: :func:`lower_bound_degeneracy` (the degeneracy ≤ tw)
  and :func:`lower_bound_mmd_plus` (maximum minimum degree with
  least-common-neighbour contractions — the MMD+ heuristic, tighter but
  slower, ablated in ``bench_table1``).

Graphs are plain adjacency dicts ``{node: set(neighbours)}`` over
hashable node ids (undirected, no self-loops).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

Node = Hashable
Adjacency = Dict[Node, Set[Node]]


def copy_adjacency(graph: Adjacency) -> Adjacency:
    return {node: set(neighbours) for node, neighbours in graph.items()}


def make_graph(edges: Iterable[Tuple[Node, Node]]) -> Adjacency:
    """Build an adjacency dict from an edge list (self-loops dropped)."""
    graph: Adjacency = {}
    for u, v in edges:
        graph.setdefault(u, set())
        graph.setdefault(v, set())
        if u != v:
            graph[u].add(v)
            graph[v].add(u)
    return graph


@dataclass
class TreeDecomposition:
    """Bags plus tree edges between bag indexes."""

    bags: List[FrozenSet[Node]]
    edges: List[Tuple[int, int]]

    @property
    def width(self) -> int:
        return max((len(bag) for bag in self.bags), default=1) - 1


def is_valid_decomposition(
    graph: Adjacency, decomposition: TreeDecomposition
) -> bool:
    """Check the three axioms: node coverage, edge coverage, and
    connectedness of the bags containing each node."""
    bags = decomposition.bags
    covered = set()
    for bag in bags:
        covered |= bag
    if covered != set(graph):
        return False
    for u, neighbours in graph.items():
        for v in neighbours:
            if not any(u in bag and v in bag for bag in bags):
                return False
    # connectedness: the bag-subgraph of each node must be a subtree
    tree_adj: Dict[int, Set[int]] = {i: set() for i in range(len(bags))}
    for a, b in decomposition.edges:
        tree_adj[a].add(b)
        tree_adj[b].add(a)
    for node in graph:
        containing = [i for i, bag in enumerate(bags) if node in bag]
        if not containing:
            return False
        seen = {containing[0]}
        stack = [containing[0]]
        member = set(containing)
        while stack:
            current = stack.pop()
            for nxt in tree_adj[current]:
                if nxt in member and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if seen != member:
            return False
    return True


# ---------------------------------------------------------------------------
# Upper bounds: elimination orderings
# ---------------------------------------------------------------------------


def _eliminate(
    graph: Adjacency, choose: str
) -> Tuple[int, TreeDecomposition]:
    """Eliminate vertices greedily; ``choose`` is 'degree' or 'fill'.

    Returns (width, decomposition).  Standard construction: eliminating
    v creates a bag {v} ∪ N(v) and a clique on N(v); the bag is attached
    to the first later-eliminated bag containing a neighbour.
    """
    work = copy_adjacency(graph)
    order: List[Node] = []
    bags: List[FrozenSet[Node]] = []
    width = 0

    heap: List[Tuple[float, Node]] = []

    def cost(node: Node) -> float:
        if choose == "degree":
            return len(work[node])
        neighbours = list(work[node])
        fill = 0
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                if v not in work[u]:
                    fill += 1
        return fill

    for node in work:
        heapq.heappush(heap, (cost(node), _NodeKey(node)))
    removed: Set[Node] = set()
    while len(removed) < len(graph):
        while True:
            priority, key = heapq.heappop(heap)
            node = key.node
            if node in removed:
                continue
            if priority != cost(node):  # stale entry
                heapq.heappush(heap, (cost(node), _NodeKey(node)))
                continue
            break
        neighbours = set(work[node])
        bags.append(frozenset({node} | neighbours))
        width = max(width, len(neighbours))
        order.append(node)
        removed.add(node)
        # clique-ify the neighbourhood
        neighbour_list = list(neighbours)
        touched: Set[Node] = set(neighbour_list)
        for i, u in enumerate(neighbour_list):
            work[u].discard(node)
            for v in neighbour_list[i + 1 :]:
                if v not in work[u]:
                    work[u].add(v)
                    work[v].add(u)
        del work[node]
        for u in touched:
            heapq.heappush(heap, (cost(u), _NodeKey(u)))

    # connect bags: bag i attaches to the first later bag containing one
    # of its members other than its eliminated vertex
    position = {node: i for i, node in enumerate(order)}
    edges: List[Tuple[int, int]] = []
    for i, bag in enumerate(bags):
        later_members = [
            node for node in bag if position[node] > i
        ]
        if later_members:
            parent_vertex = min(later_members, key=lambda n: position[n])
            edges.append((i, position[parent_vertex]))
    return width, TreeDecomposition(bags, edges)


class _NodeKey:
    """Total-order wrapper so heterogeneous node ids can share a heap."""

    __slots__ = ("node", "_key")

    def __init__(self, node: Node):
        self.node = node
        self._key = (str(type(node)), str(node))

    def __lt__(self, other: "_NodeKey") -> bool:
        return self._key < other._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NodeKey) and self._key == other._key


def upper_bound_min_degree(graph: Adjacency) -> Tuple[int, TreeDecomposition]:
    """Greedy minimum-degree elimination — fast, decent bounds."""
    if not graph:
        return 0, TreeDecomposition([frozenset()], [])
    return _eliminate(graph, "degree")


def upper_bound_min_fill(graph: Adjacency) -> Tuple[int, TreeDecomposition]:
    """Greedy minimum-fill-in elimination — slower, usually tighter."""
    if not graph:
        return 0, TreeDecomposition([frozenset()], [])
    return _eliminate(graph, "fill")


# ---------------------------------------------------------------------------
# Lower bounds
# ---------------------------------------------------------------------------


def lower_bound_degeneracy(graph: Adjacency) -> int:
    """The degeneracy (maximum over the peeling process of the minimum
    degree), a classical treewidth lower bound (MMD)."""
    work = copy_adjacency(graph)
    best = 0
    heap = [(len(neigh), _NodeKey(node)) for node, neigh in work.items()]
    heapq.heapify(heap)
    removed: Set[Node] = set()
    while heap:
        degree, key = heapq.heappop(heap)
        node = key.node
        if node in removed:
            continue
        if degree != len(work[node]):
            heapq.heappush(heap, (len(work[node]), key))
            continue
        best = max(best, degree)
        removed.add(node)
        for neighbour in list(work[node]):
            work[neighbour].discard(node)
            heapq.heappush(
                heap, (len(work[neighbour]), _NodeKey(neighbour))
            )
        del work[node]
    return best


def lower_bound_mmd_plus(graph: Adjacency) -> int:
    """MMD+ (least-c): repeatedly contract a minimum-degree vertex with
    its least-common-neighbour neighbour, tracking the maximum minimum
    degree seen.  Contractions preserve "is a minor", and the minimum
    degree of any minor lower-bounds treewidth — tighter than plain
    degeneracy on graphs with local sparsity (road networks)."""
    work = copy_adjacency(graph)
    best = 0
    while len(work) > 1:
        node = min(work, key=lambda n: (len(work[n]), str(n)))
        degree = len(work[node])
        best = max(best, degree)
        if degree == 0:
            del work[node]
            continue
        # contract with the neighbour sharing fewest common neighbours
        neighbour = min(
            work[node],
            key=lambda v: (len(work[node] & work[v]), str(v)),
        )
        merged = (work[node] | work[neighbour]) - {node, neighbour}
        for other in work[node]:
            work[other].discard(node)
        for other in work[neighbour]:
            work[other].discard(neighbour)
        del work[node]
        del work[neighbour]
        work[neighbour] = set()
        for other in merged:
            work[neighbour].add(other)
            work[other].add(neighbour)
    return best


# ---------------------------------------------------------------------------
# The Table-1 style interval report
# ---------------------------------------------------------------------------


@dataclass
class TreewidthInterval:
    """Certified interval ``lower ≤ tw(G) ≤ upper`` plus provenance."""

    lower: int
    upper: int
    lower_method: str
    upper_method: str
    nodes: int
    edges: int


def treewidth_interval(
    graph: Adjacency, use_min_fill: bool = True, use_mmd_plus: bool = True
) -> TreewidthInterval:
    """Compute the best available lower/upper bounds (Maniu et al. style)."""
    num_edges = sum(len(neigh) for neigh in graph.values()) // 2
    lower = lower_bound_degeneracy(graph)
    lower_method = "degeneracy"
    if use_mmd_plus:
        mmd = lower_bound_mmd_plus(graph)
        if mmd > lower:
            lower, lower_method = mmd, "mmd+"
    upper, _dec = upper_bound_min_degree(graph)
    upper_method = "min-degree"
    if use_min_fill:
        fill_upper, _dec2 = upper_bound_min_fill(graph)
        if fill_upper < upper:
            upper, upper_method = fill_upper, "min-fill"
    return TreewidthInterval(
        lower, upper, lower_method, upper_method, len(graph), num_edges
    )


def exact_treewidth_small(graph: Adjacency, limit: int = 12) -> int:
    """Exact treewidth by trying all elimination orders with memoized
    dynamic programming over vertex subsets (Held–Karp style, O(2^n n)).
    Only for graphs with at most ``limit`` nodes — used by tests to
    certify the heuristics."""
    nodes = sorted(graph, key=str)
    n = len(nodes)
    if n > limit:
        raise ValueError(f"graph too large for exact computation ({n} nodes)")
    if n == 0:
        return 0
    index = {node: i for i, node in enumerate(nodes)}
    neighbour_mask = [0] * n
    for node, neighbours in graph.items():
        for other in neighbours:
            neighbour_mask[index[node]] |= 1 << index[other]

    from functools import lru_cache

    full = (1 << n) - 1

    @lru_cache(maxsize=None)
    def q(remaining: int, vertex: int) -> int:
        """Degree of ``vertex`` towards eliminated vertices' fill: the
        number of vertices in ``remaining`` reachable from vertex through
        eliminated (not-in-remaining) vertices or directly."""
        # BFS through eliminated vertices
        seen = 1 << vertex
        stack = [vertex]
        reach = 0
        while stack:
            current = stack.pop()
            mask = neighbour_mask[current]
            for other in range(n):
                bit = 1 << other
                if not (mask & bit) or (seen & bit):
                    continue
                seen |= bit
                if remaining & bit:
                    reach |= bit
                else:
                    stack.append(other)
        return bin(reach).count("1")

    @lru_cache(maxsize=None)
    def best(remaining: int) -> int:
        if bin(remaining).count("1") <= 1:
            return 0
        out = n
        for vertex in range(n):
            bit = 1 << vertex
            if not (remaining & bit):
                continue
            cost = q(remaining & ~bit, vertex)
            out = min(out, max(cost, best(remaining & ~bit)))
        return out

    return best(full)
