"""Compiled regular-path-query plans: the performance layer under
:mod:`repro.graphs.paths`.

The seed evaluator re-derived the Glushkov automaton on every call and
walked string-keyed dict indexes one source at a time, allocating a
fresh ``frozenset`` per step.  At the corpus scales the paper's studies
operate on (hundreds of millions of queries, million-triple graphs)
that is the difference between minutes and days.  This module compiles
an expression once into a :class:`CompiledRPQ` plan and evaluates it on
the store's integer-interned indexes:

* **Plan cache** — ``glushkov(expr)`` is computed once per canonical
  expression (keyed by a stable structural AST key, LRU-bounded;
  see :func:`configure_plan_cache`).
* **Bitmask state sets** — automaton state sets are ``int`` bitmasks;
  per-label transition tables map a state to the bitmask of successor
  states, so the product BFS steps with integer ``|``/``&`` instead of
  ``FrozenSet[int]`` churn.  Repeated (state set, label) steps hit a
  per-plan memo that persists across queries.
* **Small-automaton determinization** — plans whose Glushkov automaton
  is small also carry a trimmed DFA (dead states marked); the product
  BFS and the simple-path/trail DFS then track a single int per
  automaton component and prune dead prefixes.
* **Alphabet restriction** — at evaluation time the plan keeps only the
  atoms whose predicate actually occurs in the store, resolved straight
  to the store's per-predicate integer adjacency dicts; all-pairs
  evaluation additionally restricts sources to nodes with a productive
  first edge.
* **Multi-source evaluation** — for cyclic automata (unbounded walks,
  where per-source reachable sets are large and overlap) the all-pairs
  case (``sources=None``) collapses the n per-source BFS runs of the
  reference into one frontier propagation over the product graph that
  carries a *source bitmask* per (node, state) vertex; bounded-walk
  (acyclic) automata keep the pruned per-source BFS, whose frontiers
  are tiny.

All entry points return exactly the same answers as the reference
procedures in :mod:`repro.graphs.paths` (enforced by the randomized
equivalence tests in ``tests/graphs/test_engine_equivalence.py``).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Optional as Opt, Set, Tuple

from ..regex.ast import (
    Concat,
    Empty,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Star,
    Symbol,
    Union,
)
from ..regex.automata import glushkov
from .rdf import TripleStore

#: Determinize plans whose NFA has at most this many states …
_DFA_STATE_LIMIT = 24
#: … aborting if the subset construction exceeds this many DFA states.
_DFA_BLOWUP_LIMIT = 512
#: Bound on the per-plan (label, state-set) -> state-set step memo.
_STEP_MEMO_LIMIT = 8192

#: Whether plans compile specialized step closures (see
#: :func:`configure_specialization`); on by default, switchable so the
#: benchmark can measure generic vs specialized dispatch in one process.
_specialization_enabled = True


def configure_specialization(enabled: bool) -> None:
    """Toggle the per-plan specialized step closures.

    With specialization off every evaluation uses the generic automaton
    dispatch (label lookups against the transition tables per frontier
    item).  The already-built closures stay cached on their plans and
    are simply bypassed, so flipping the switch is free in both
    directions."""
    global _specialization_enabled
    _specialization_enabled = bool(enabled)


def ast_key(expr: Regex) -> Tuple:
    """A stable structural key for an expression.

    Two expressions share a key iff they are syntactically identical, so
    the key is safe to use as a cache key across processes and sessions
    (unlike ``id``-based keys) and never collides across node types.
    """
    if isinstance(expr, Symbol):
        return ("sym", expr.label)
    if isinstance(expr, Empty):
        return ("empty",)
    if isinstance(expr, Epsilon):
        return ("eps",)
    if isinstance(expr, Concat):
        return ("cat",) + tuple(ast_key(p) for p in expr.parts)
    if isinstance(expr, Union):
        return ("alt",) + tuple(ast_key(p) for p in expr.parts)
    if isinstance(expr, Star):
        return ("star", ast_key(expr.child))
    if isinstance(expr, Plus):
        return ("plus", ast_key(expr.child))
    if isinstance(expr, Optional):
        return ("opt", ast_key(expr.child))
    raise TypeError(f"unknown node {expr!r}")


def _iter_bits(mask: int) -> Iterable[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _mask_of(states: Iterable[int]) -> int:
    mask = 0
    for state in states:
        mask |= 1 << state
    return mask


#: one resolved atom: (label, NFA delta table, adjacency, pid, inverse)
_Step = Tuple[str, List[int], Dict[int, List[int]], int, bool]


def _specialize_dfa_rows(
    table: List[Dict[str, int]], finals_mask: int, steps: List[_Step]
) -> Tuple:
    """Per-DFA-state step rows: for each state, the usable
    ``(adjacency, next state, accepting)`` tuples.  The generic product
    BFS re-answers "which steps apply in this state and where do they
    go" with a label lookup per (frontier item, step); here that is
    answered once per plan/store pair."""
    rows = []
    for row in table:
        entries = []
        for label, _delta, adjacency, _pid, _inv in steps:
            nxt = row.get(label)
            if nxt is not None:
                entries.append(
                    (adjacency, nxt, bool(finals_mask & (1 << nxt)))
                )
        rows.append(tuple(entries))
    return tuple(rows)


def _chain_of(plan_order: Tuple, finals: Tuple[int, ...]):
    """If the acyclic plan is one linear chain of single-step states
    ending in its only final state, the adjacency maps to fold through,
    in order; ``None`` otherwise."""
    adjacencies = []
    expect = 0
    for state, entries in plan_order:
        if state != expect or len(entries) != 1:
            return None
        adjacency, nxt, _accepting = entries[0]
        adjacencies.append(adjacency)
        expect = nxt
    if not adjacencies or finals != (expect,):
        return None
    return adjacencies


def _make_chain_bfs(adjacencies: List[Dict[int, List[int]]]):
    """The specialized product-BFS closure for a linear-chain plan
    (``a.b.c``): fold the frontier through one adjacency map per hop —
    no state table, no visited bookkeeping (each hop dedupes into a
    fresh set), answers come straight out of the last fold."""
    first_get = adjacencies[0].get
    rest_gets = tuple(adjacency.get for adjacency in adjacencies[1:])

    def bfs_hits(sid: int) -> Set[int]:
        nodes = first_get(sid)
        if not nodes:
            return set()
        for adjacency_get in rest_gets:
            frontier: Set[int] = set()
            frontier_update = frontier.update
            for neighbours in map(adjacency_get, nodes):
                if neighbours:
                    frontier_update(neighbours)
            if not frontier:
                return frontier
            nodes = frontier
        # single-hop chains fall through with `nodes` still the raw
        # adjacency row (a list on live stores, a memoryview slice on
        # mapped images) — normalize anything that isn't already a set
        return nodes if type(nodes) is set else set(nodes)

    return bfs_hits


def _make_dfa_dag_bfs(rows: Tuple, finals_mask: int):
    """The specialized product-BFS closure for an *acyclic* DFA plan.

    With no cycles in the state graph, the per-level BFS collapses into
    one pass over the states in topological order, carrying the set of
    graph nodes reachable in each state: every transition becomes a
    single C-speed ``set.update(neighbours)`` per source-state node
    instead of a Python-level visited check per neighbour.  The
    node-sets computed this way are exactly the visited-(node, state)
    relation of the generic BFS, so the hit set is identical (state 0
    is unreachable by edges in a DAG, so the seed never leaks into the
    answer)."""
    num_states = len(rows)
    indegree = [0] * num_states
    for entries in rows:
        for _adjacency, nxt, _accepting in entries:
            indegree[nxt] += 1
    queue = deque(
        state for state in range(num_states) if not indegree[state]
    )
    topo: List[int] = []
    while queue:
        state = queue.popleft()
        topo.append(state)
        for _adjacency, nxt, _accepting in rows[state]:
            indegree[nxt] -= 1
            if not indegree[nxt]:
                queue.append(nxt)
    plan_order = tuple(
        (state, rows[state]) for state in topo if rows[state]
    )
    finals = tuple(
        state
        for state in topo
        if state and (finals_mask >> state) & 1
    )

    chain = _chain_of(plan_order, finals)
    if chain is not None:
        return _make_chain_bfs(chain)
    if len(finals) == 1:
        final_state = finals[0]

        def bfs_hits_single_final(sid: int) -> Set[int]:
            sets: List[Opt[Set[int]]] = [None] * num_states
            sets[0] = {sid}
            for state, entries in plan_order:
                nodes = sets[state]
                if not nodes:
                    continue
                for adjacency, nxt, _accepting in entries:
                    out = sets[nxt]
                    if out is None:
                        out = sets[nxt] = set()
                    out_update = out.update
                    for neighbours in map(adjacency.get, nodes):
                        if neighbours:
                            out_update(neighbours)
            nodes = sets[final_state]
            return nodes if nodes is not None else set()

        return bfs_hits_single_final

    def bfs_hits(sid: int) -> Set[int]:
        sets: List[Opt[Set[int]]] = [None] * num_states
        sets[0] = {sid}
        for state, entries in plan_order:
            nodes = sets[state]
            if not nodes:
                continue
            for adjacency, nxt, _accepting in entries:
                out = sets[nxt]
                if out is None:
                    out = sets[nxt] = set()
                out_update = out.update
                for neighbours in map(adjacency.get, nodes):
                    if neighbours:
                        out_update(neighbours)
        hits: Set[int] = set()
        for state in finals:
            nodes = sets[state]
            if nodes:
                hits |= nodes
        return hits

    return bfs_hits


def _make_dfa_bfs(rows: Tuple):
    """The specialized product-BFS closure for a DFA plan.

    The frontier is grouped *per automaton state* (state -> node list)
    rather than held as (node, state) tuples: step dispatch, the target
    visited-set, and the accepting flag hoist out of the per-node loop,
    and visitedness is one set membership per (node, state) instead of
    bitmask dict arithmetic.  Visit order differs from the generic BFS
    but the visited-(node, state) relation — and therefore the hit set —
    is identical."""
    num_states = len(rows)

    def bfs_hits(sid: int) -> Set[int]:
        visited: List[Opt[Set[int]]] = [None] * num_states
        visited[0] = {sid}
        current: Dict[int, List[int]] = {0: [sid]}
        hits: Set[int] = set()
        hits_add = hits.add
        while current:
            advanced: Dict[int, List[int]] = {}
            for state, nodes in current.items():
                for adjacency, nxt, accepting in rows[state]:
                    seen = visited[nxt]
                    if seen is None:
                        seen = visited[nxt] = set()
                    seen_add = seen.add
                    adjacency_get = adjacency.get
                    bucket = advanced.get(nxt)
                    for nid in nodes:
                        neighbours = adjacency_get(nid)
                        if not neighbours:
                            continue
                        for other in neighbours:
                            if other in seen:
                                continue
                            seen_add(other)
                            if bucket is None:
                                bucket = advanced[nxt] = []
                            bucket.append(other)
                            if accepting:
                                hits_add(other)
            current = advanced
        return hits

    return bfs_hits


def _make_nfa_bfs(
    steps: List[_Step],
    start_mask: int,
    finals_mask: int,
    memo: Dict[Tuple[str, int], int],
):
    """The specialized product-BFS closure for an NFA-only plan: the
    frontier is grouped per gained state-set, so the (label, state set)
    step memo — shared with the plan, persisting across queries — is
    probed once per (group, label) instead of once per frontier item."""
    spec = tuple(
        (label, delta, adjacency)
        for label, delta, adjacency, _pid, _inv in steps
    )
    limit = _STEP_MEMO_LIMIT

    def bfs_hits(sid: int) -> Set[int]:
        reached: Dict[int, int] = {sid: start_mask}
        reached_get = reached.get
        current: Dict[int, List[int]] = {start_mask: [sid]}
        hits: Set[int] = set()
        hits_add = hits.add
        memo_get = memo.get
        while current:
            advanced: Dict[int, List[int]] = {}
            advanced_get = advanced.get
            for mask, nodes in current.items():
                for label, delta, adjacency in spec:
                    key = (label, mask)
                    targets = memo_get(key)
                    if targets is None:
                        targets = 0
                        rest = mask
                        while rest:
                            low = rest & -rest
                            targets |= delta[low.bit_length() - 1]
                            rest ^= low
                        if len(memo) >= limit:
                            memo.clear()
                        memo[key] = targets
                    if not targets:
                        continue
                    adjacency_get = adjacency.get
                    for nid in nodes:
                        neighbours = adjacency_get(nid)
                        if not neighbours:
                            continue
                        for other in neighbours:
                            old = reached_get(other, 0)
                            gained = targets & ~old
                            if gained:
                                reached[other] = old | gained
                                bucket = advanced_get(gained)
                                if bucket is None:
                                    bucket = advanced[gained] = []
                                bucket.append(other)
                                if gained & finals_mask:
                                    hits_add(other)
            current = advanced
        return hits

    return bfs_hits


class _SpecializedPlan:
    """The specialized artifacts for one (plan, resolved steps) pair:
    the product-BFS closure and the per-state propagation rows."""

    __slots__ = ("bfs_hits", "prop_rows")

    def __init__(self, plan: "CompiledRPQ", steps: List[_Step]):
        if plan.dfa_table is not None:
            rows = _specialize_dfa_rows(
                plan.dfa_table, plan.dfa_finals_mask, steps
            )
            if plan.cyclic:
                self.bfs_hits = _make_dfa_bfs(rows)
            else:
                self.bfs_hits = _make_dfa_dag_bfs(
                    rows, plan.dfa_finals_mask
                )
            self.prop_rows = tuple(
                tuple(
                    (adjacency, (row[label],))
                    for label, _delta, adjacency, _pid, _inv in steps
                    if label in row
                )
                for row in plan.dfa_table
            )
        else:
            self.bfs_hits = _make_nfa_bfs(
                steps, plan.start_mask, plan.finals_mask, plan._step_memo
            )
            self.prop_rows = tuple(
                tuple(
                    (adjacency, tuple(_iter_bits(delta[q])))
                    for _label, delta, adjacency, _pid, _inv in steps
                    if delta[q]
                )
                for q in range(plan.num_states)
            )


class CompiledRPQ:
    """A compiled evaluation plan for one regular path expression."""

    __slots__ = (
        "expr",
        "nfa",
        "num_states",
        "start_mask",
        "finals_mask",
        "accepts_empty",
        "atoms",
        "deltas",
        "dfa_table",
        "dfa_finals_mask",
        "cyclic",
        "_step_memo",
        "_atoms_cache",
        "_special_cache",
    )

    def __init__(self, expr: Regex):
        self.expr = expr
        nfa = glushkov(expr)
        self.nfa = nfa
        self.num_states = nfa.num_states
        start = nfa.epsilon_closure(nfa.initial)
        self.start_mask = _mask_of(start)
        self.finals_mask = _mask_of(nfa.finals)
        self.accepts_empty = bool(self.start_mask & self.finals_mask)
        # per-label transition tables: deltas[label][q] is the bitmask of
        # states reachable from q by reading label (epsilon-closed)
        self.atoms: List[str] = sorted(nfa.alphabet)
        self.deltas: Dict[str, List[int]] = {}
        for label in self.atoms:
            table = []
            for q in range(nfa.num_states):
                targets = nfa.transitions[q].get(label)
                if targets:
                    table.append(_mask_of(nfa.epsilon_closure(targets)))
                else:
                    table.append(0)
            self.deltas[label] = table
        # dfa_table[q][label] -> next dfa state; only live (final-reaching)
        # states are kept, so a missing entry means "dead end, prune"
        self.dfa_table: Opt[List[Dict[str, int]]] = None
        self.dfa_finals_mask = 0
        if nfa.num_states <= _DFA_STATE_LIMIT:
            self._try_determinize()
        self.cyclic = self._has_productive_cycle()
        self._step_memo: Dict[Tuple[str, int], int] = {}
        self._atoms_cache: Opt[Tuple] = None
        self._special_cache: Opt[Tuple[List[_Step], _SpecializedPlan]] = None

    # -- compilation -------------------------------------------------------------

    def _try_determinize(self) -> None:
        """Bounded subset construction over the bitmask tables, trimmed
        to live states (those from which a final state is reachable)."""
        index: Dict[int, int] = {self.start_mask: 0}
        table: List[Dict[str, int]] = [{}]
        finals: Set[int] = set()
        if self.accepts_empty:
            finals.add(0)
        queue = deque([self.start_mask])
        while queue:
            mask = queue.popleft()
            src = index[mask]
            for label in self.atoms:
                delta = self.deltas[label]
                rest = mask
                nxt = 0
                while rest:
                    low = rest & -rest
                    nxt |= delta[low.bit_length() - 1]
                    rest ^= low
                if not nxt:
                    continue
                if nxt not in index:
                    if len(index) >= _DFA_BLOWUP_LIMIT:
                        return  # plan stays NFA-only
                    index[nxt] = len(table)
                    table.append({})
                    if nxt & self.finals_mask:
                        finals.add(index[nxt])
                    queue.append(nxt)
                table[src][label] = index[nxt]
        # trim dead states: reverse reachability from the finals
        reverse: List[Set[int]] = [set() for _ in table]
        for src, row in enumerate(table):
            for dst in row.values():
                reverse[dst].add(src)
        alive = set(finals)
        stack = list(finals)
        while stack:
            state = stack.pop()
            for prev in reverse[state]:
                if prev not in alive:
                    alive.add(prev)
                    stack.append(prev)
        self.dfa_table = [
            {
                label: dst
                for label, dst in row.items()
                if dst in alive
            }
            if src in alive
            else {}
            for src, row in enumerate(table)
        ]
        self.dfa_finals_mask = _mask_of(finals)

    def _has_productive_cycle(self) -> bool:
        """Whether the automaton can loop — i.e. the language contains
        unboundedly long words.  Bounded-walk plans keep cheap per-source
        BFS for all-pairs; looping plans switch to the multi-source
        propagation (their per-source reachable sets are large and
        heavily shared)."""
        graph: Dict[int, Set[int]] = {}
        if self.dfa_table is not None:
            for src, row in enumerate(self.dfa_table):
                graph[src] = set(row.values())
        else:
            for q in range(self.num_states):
                successors: Set[int] = set()
                for delta in self.deltas.values():
                    successors.update(_iter_bits(delta[q]))
                graph[q] = successors
        color: Dict[int, int] = {}  # 1 = on stack, 2 = done

        def has_cycle(node: int) -> bool:
            color[node] = 1
            for nxt in graph.get(node, ()):
                state = color.get(nxt)
                if state == 1:
                    return True
                if state is None and has_cycle(nxt):
                    return True
            color[node] = 2
            return False

        return any(
            color.get(node) is None and has_cycle(node) for node in graph
        )

    # -- store-side resolution --------------------------------------------------

    def _resolve_atoms(self, store: TripleStore) -> List[_Step]:
        """The alphabet restriction: atoms whose predicate exists in the
        store, resolved to (label, delta table, adjacency, pid, inverse).

        Memoized per (store, mutation version) — on repeated-expression
        workloads every query after the first skips the resolution."""
        cached = self._atoms_cache
        if cached is not None:
            store_ref, version, steps = cached
            if store_ref() is store and version == store.version:
                return steps
        steps = []
        for label in self.atoms:
            if label.startswith("^"):
                pid = store.predicate_id(label[1:])
                if pid is None:
                    continue
                adjacency = store.backward_adjacency(pid)
                inverse = True
            else:
                pid = store.predicate_id(label)
                if pid is None:
                    continue
                adjacency = store.forward_adjacency(pid)
                inverse = False
            if adjacency:
                steps.append(
                    (label, self.deltas[label], adjacency, pid, inverse)
                )
        self._atoms_cache = (weakref.ref(store), store.version, steps)
        return steps

    def _step_mask(self, label: str, delta: List[int], mask: int) -> int:
        """Memoized (state set, label) -> state set transition."""
        memo = self._step_memo
        key = (label, mask)
        result = memo.get(key)
        if result is None:
            result = 0
            rest = mask
            while rest:
                low = rest & -rest
                result |= delta[low.bit_length() - 1]
                rest ^= low
            if len(memo) >= _STEP_MEMO_LIMIT:
                memo.clear()
            memo[key] = result
        return result

    # -- walk semantics ----------------------------------------------------------

    def evaluate(
        self,
        store: TripleStore,
        sources: Opt[List[str]] = None,
        targets: Opt[Iterable[str]] = None,
    ) -> Set[Tuple[str, str]]:
        """All pairs (u, v) connected by a walk spelling a word of the
        language; identical to the reference product BFS.  ``targets``
        filters the answers, never the exploration."""
        target_filter = set(targets) if targets is not None else None
        steps = self._resolve_atoms(store)
        if sources is not None:
            return self._evaluate_sources(store, sources, steps, target_filter)
        return self._evaluate_all_pairs(store, steps, target_filter)

    def _specialized(self, steps: List[_Step]) -> _SpecializedPlan:
        """The specialized closures for ``steps``, built once per
        (store, mutation version): the ``steps`` list object itself is
        the :meth:`_resolve_atoms` memo value, so identity is the
        freshness check (holding it here also pins it against reuse)."""
        cached = self._special_cache
        if cached is not None and cached[0] is steps:
            return cached[1]
        special = _SpecializedPlan(self, steps)
        self._special_cache = (steps, special)
        return special

    def _bfs_hits(self, sid: int, steps: List[_Step]) -> Set[int]:
        """Node ids that reach a final state by a non-empty walk from
        ``sid`` (the trivial empty-walk answer is the caller's job)."""
        if _specialization_enabled:
            return self._specialized(steps).bfs_hits(sid)
        if self.dfa_table is not None:
            return self._bfs_hits_dfa(sid, steps)
        return self._bfs_hits_nfa(sid, steps)

    def _bfs_hits_dfa(self, sid: int, steps: List[_Step]) -> Set[int]:
        table = self.dfa_table
        finals_mask = self.dfa_finals_mask
        reached: Dict[int, int] = {sid: 1}  # node id -> mask of DFA states
        frontier: List[Tuple[int, int]] = [(sid, 0)]
        hits: Set[int] = set()
        while frontier:
            advanced: List[Tuple[int, int]] = []
            for nid, state in frontier:
                row = table[state]
                if not row:
                    continue
                for label, _delta, adjacency, _pid, _inv in steps:
                    nxt = row.get(label)
                    if nxt is None:
                        continue
                    neighbours = adjacency.get(nid)
                    if not neighbours:
                        continue
                    bit = 1 << nxt
                    accepting = finals_mask & bit
                    for other in neighbours:
                        seen = reached.get(other, 0)
                        if seen & bit:
                            continue
                        reached[other] = seen | bit
                        advanced.append((other, nxt))
                        if accepting:
                            hits.add(other)
            frontier = advanced
        return hits

    def _bfs_hits_nfa(self, sid: int, steps: List[_Step]) -> Set[int]:
        finals = self.finals_mask
        reached: Dict[int, int] = {sid: self.start_mask}
        frontier: List[Tuple[int, int]] = [(sid, self.start_mask)]
        hits: Set[int] = set()
        step_mask = self._step_mask
        while frontier:
            advanced: List[Tuple[int, int]] = []
            for nid, new_mask in frontier:
                for label, delta, adjacency, _pid, _inv in steps:
                    targets_mask = step_mask(label, delta, new_mask)
                    if not targets_mask:
                        continue
                    neighbours = adjacency.get(nid)
                    if not neighbours:
                        continue
                    for other in neighbours:
                        old = reached.get(other, 0)
                        gained = targets_mask & ~old
                        if gained:
                            reached[other] = old | gained
                            advanced.append((other, gained))
                            if gained & finals:
                                hits.add(other)
            frontier = advanced
        return hits

    def _evaluate_sources(
        self,
        store: TripleStore,
        sources: Iterable[str],
        steps: List[_Step],
        target_filter: Opt[Set[str]],
    ) -> Set[Tuple[str, str]]:
        """One bitmask BFS per requested source node."""
        answers: Set[Tuple[str, str]] = set()
        names = store.node_names()
        bfs_hits = (
            self._specialized(steps).bfs_hits
            if _specialization_enabled
            else None
        )
        for source in sources:
            if self.accepts_empty and (
                target_filter is None or source in target_filter
            ):
                answers.add((source, source))
            sid = store.node_id(source)
            if sid is None:
                continue  # node outside the graph: no walks at all
            hits = (
                bfs_hits(sid)
                if bfs_hits is not None
                else self._bfs_hits(sid, steps)
            )
            for nid in hits:
                name = names[nid]
                if target_filter is None or name in target_filter:
                    answers.add((source, name))
        return answers

    # -- distributed evaluation support -----------------------------------------
    #
    # The sharded service (repro.service.shard) runs the product BFS as a
    # name-level frontier exchange: each worker holds one shard of the
    # edges, advances the frontier one level against its local adjacency,
    # and ships (token, node name, NFA state mask) entries back to the
    # coordinator, which merges them and decides which bits are new.
    # These two methods are that worker-side surface.  They speak *NFA*
    # masks exclusively — NFA state numbering is canonical per expression
    # (Glushkov positions), so masks produced by independent processes
    # compose, whereas DFA state numbers depend on the subset-construction
    # walk and must never cross a process boundary.

    def frontier_step(
        self,
        store: TripleStore,
        entries: List[Tuple[Any, str, int]],
    ) -> List[Tuple[Any, str, int]]:
        """Advance a frontier one edge level against this store.

        ``entries`` are ``(token, node name, NFA state mask)`` — the
        token is opaque (the coordinator uses it to identify the source
        a walk started from).  Returns the same shape: every node
        reachable from an entry's node by one local edge whose label the
        mask can read, carrying the successor state mask.  Results are
        merged per (token, node) so one call never emits duplicate keys;
        nodes this store has never seen contribute nothing.
        """
        steps = self._resolve_atoms(store)
        if not steps or not entries:
            return []
        names = store.node_names()
        step_mask = self._step_mask
        out: Dict[Tuple[Any, int], int] = {}
        for token, name, mask in entries:
            nid = store.node_id(name)
            if nid is None:
                continue
            for label, delta, adjacency, _pid, _inv in steps:
                targets_mask = step_mask(label, delta, mask)
                if not targets_mask:
                    continue
                neighbours = adjacency.get(nid)
                if not neighbours:
                    continue
                for other in neighbours:
                    key = (token, other)
                    out[key] = out.get(key, 0) | targets_mask
        return [
            (token, names[nid], mask) for (token, nid), mask in out.items()
        ]

    def productive_source_names(self, store: TripleStore) -> List[str]:
        """Node names with at least one usable first edge in this store
        — the shard-local contribution to the distributed all-pairs seed
        set (sorted, so shard outputs merge deterministically)."""
        steps = self._resolve_atoms(store)
        if not steps:
            return []
        names = store.node_names()
        return sorted(
            names[nid] for nid in self._productive_source_ids(steps)
        )

    def _start_labels(self, steps: List[_Step]) -> List[_Step]:
        """The steps usable on the very first transition."""
        if self.dfa_table is not None:
            row = self.dfa_table[0]
            return [step for step in steps if step[0] in row]
        start = self.start_mask
        return [
            step
            for step in steps
            if self._step_mask(step[0], step[1], start)
        ]

    def _productive_source_ids(self, steps: List[_Step]) -> List[int]:
        """Node ids with at least one usable first edge — the only nodes
        whose BFS can produce a non-trivial answer."""
        candidates: Set[int] = set()
        for _label, _delta, adjacency, _pid, _inv in self._start_labels(steps):
            candidates.update(adjacency.keys())
        return sorted(candidates)

    def _evaluate_all_pairs(
        self,
        store: TripleStore,
        steps: List[_Step],
        target_filter: Opt[Set[str]],
    ) -> Set[Tuple[str, str]]:
        names = store.node_names()
        answers: Set[Tuple[str, str]] = set()
        if self.accepts_empty:
            for name in names:
                if target_filter is None or name in target_filter:
                    answers.add((name, name))
        if not steps:
            return answers
        productive = self._productive_source_ids(steps)
        if not productive:
            return answers
        if self.cyclic:
            self._all_pairs_propagate(
                names, productive, steps, target_filter, answers
            )
        else:
            bfs_hits = (
                self._specialized(steps).bfs_hits
                if _specialization_enabled
                else None
            )
            for sid in productive:
                source = names[sid]
                hits = (
                    bfs_hits(sid)
                    if bfs_hits is not None
                    else self._bfs_hits(sid, steps)
                )
                for nid in hits:
                    name = names[nid]
                    if target_filter is None or name in target_filter:
                        answers.add((source, name))
        return answers

    def _all_pairs_propagate(
        self,
        names: List[str],
        productive: List[int],
        steps: List[_Step],
        target_filter: Opt[Set[str]],
        answers: Set[Tuple[str, str]],
    ) -> None:
        """Single multi-source frontier propagation over the product
        graph: every (node, state) vertex carries the bitmask of
        (productive) source nodes that reach it, so the n per-source BFS
        runs of the reference collapse into one pass of word-wide
        integer ORs."""
        if self.dfa_table is not None:
            num_states = len(self.dfa_table)
            start_states = [0]
            finals_mask = self.dfa_finals_mask

            def transitions(q: int, label: str) -> int:
                nxt = self.dfa_table[q].get(label)
                return 0 if nxt is None else 1 << nxt

        else:
            num_states = self.num_states
            start_states = list(_iter_bits(self.start_mask))
            finals_mask = self.finals_mask

            def transitions(q: int, label: str) -> int:
                return self.deltas[label][q]

        # masks[nid * num_states + q] = bitmask over *compacted* source
        # indexes (bit i  <->  productive[i]) reaching (nid, q)
        masks: Dict[int, int] = {}
        pending: Dict[int, int] = {}
        queue: deque = deque()
        for position, sid in enumerate(productive):
            bit = 1 << position
            for q in start_states:
                key = sid * num_states + q
                masks[key] = masks.get(key, 0) | bit
                pending[key] = pending.get(key, 0) | bit
                queue.append(key)
        if _specialization_enabled:
            # same propagation with the per-state (adjacency, decoded
            # target states) rows precomputed — no label dispatch and no
            # bitmask decoding per dequeued vertex
            rows = self._specialized(steps).prop_rows
            masks_get = masks.get
            pending_pop = pending.pop
            queue_append = queue.append
            while queue:
                key = queue.popleft()
                delta_sources = pending_pop(key, 0)
                if not delta_sources:
                    continue
                nid, q = divmod(key, num_states)
                for adjacency, targets in rows[q]:
                    neighbours = adjacency.get(nid)
                    if not neighbours:
                        continue
                    for other in neighbours:
                        base = other * num_states
                        for target in targets:
                            other_key = base + target
                            old = masks_get(other_key, 0)
                            gained = delta_sources & ~old
                            if gained:
                                masks[other_key] = old | gained
                                if other_key in pending:
                                    pending[other_key] |= gained
                                else:
                                    pending[other_key] = gained
                                    queue_append(other_key)
        else:
            while queue:
                key = queue.popleft()
                delta_sources = pending.pop(key, 0)
                if not delta_sources:
                    continue
                nid, q = divmod(key, num_states)
                for label, _delta, adjacency, _pid, _inv in steps:
                    targets_mask = transitions(q, label)
                    if not targets_mask:
                        continue
                    neighbours = adjacency.get(nid)
                    if not neighbours:
                        continue
                    for other in neighbours:
                        base = other * num_states
                        rest = targets_mask
                        while rest:
                            low = rest & -rest
                            other_key = base + low.bit_length() - 1
                            rest ^= low
                            old = masks.get(other_key, 0)
                            gained = delta_sources & ~old
                            if gained:
                                masks[other_key] = old | gained
                                if other_key in pending:
                                    pending[other_key] |= gained
                                else:
                                    pending[other_key] = gained
                                    queue.append(other_key)
        # a seeded start vertex with a final state only occurs when the
        # language is nullable, and those (u, u) pairs were added above,
        # so reading the raw masks never invents an answer
        for key, sources_mask in masks.items():
            nid, q = divmod(key, num_states)
            if not (finals_mask >> q) & 1:
                continue
            name = names[nid]
            if target_filter is not None and name not in target_filter:
                continue
            for position in _iter_bits(sources_mask):
                answers.add((names[productive[position]], name))

    # -- simple-path / trail search ------------------------------------------------

    def search(
        self,
        store: TripleStore,
        source: str,
        target: str,
        forbid_nodes: bool,
    ) -> bool:
        """Exact simple-path (``forbid_nodes``) or trail decision —
        the compiled counterpart of the reference DFS, identical result."""
        if source == target and self.accepts_empty:
            return True
        sid = store.node_id(source)
        tid = store.node_id(target)
        if sid is None or tid is None:
            return False
        steps = self._resolve_atoms(store)
        if not steps:
            return False
        if self.dfa_table is not None:
            return self._search_dfa(steps, sid, tid, forbid_nodes)
        return self._search_nfa(steps, sid, tid, forbid_nodes)

    def _search_dfa(
        self, steps: List[_Step], sid: int, tid: int, forbid_nodes: bool
    ) -> bool:
        table = self.dfa_table
        finals_mask = self.dfa_finals_mask
        used_nodes = {sid}
        used_edges: Set[Tuple[int, int, int]] = set()

        def dfs(nid: int, state: int) -> bool:
            row = table[state]
            if not row:
                return False
            for label, _delta, adjacency, pid, inverse in steps:
                next_state = row.get(label)
                if next_state is None:
                    continue
                neighbours = adjacency.get(nid)
                if not neighbours:
                    continue
                accepting = (finals_mask >> next_state) & 1
                for other in neighbours:
                    if forbid_nodes:
                        if other in used_nodes:
                            continue
                        if other == tid and accepting:
                            return True
                        used_nodes.add(other)
                        if dfs(other, next_state):
                            return True
                        used_nodes.discard(other)
                    else:
                        edge = (
                            (other, pid, nid) if inverse else (nid, pid, other)
                        )
                        if edge in used_edges:
                            continue
                        if other == tid and accepting:
                            return True
                        used_edges.add(edge)
                        if dfs(other, next_state):
                            return True
                        used_edges.discard(edge)
            return False

        return dfs(sid, 0)

    def _search_nfa(
        self, steps: List[_Step], sid: int, tid: int, forbid_nodes: bool
    ) -> bool:
        finals = self.finals_mask
        used_nodes = {sid}
        used_edges: Set[Tuple[int, int, int]] = set()
        step_mask = self._step_mask

        def dfs(nid: int, mask: int) -> bool:
            for label, delta, adjacency, pid, inverse in steps:
                next_mask = step_mask(label, delta, mask)
                if not next_mask:
                    continue
                neighbours = adjacency.get(nid)
                if not neighbours:
                    continue
                accepting = next_mask & finals
                for other in neighbours:
                    if forbid_nodes:
                        if other in used_nodes:
                            continue
                        if other == tid and accepting:
                            return True
                        used_nodes.add(other)
                        if dfs(other, next_mask):
                            return True
                        used_nodes.discard(other)
                    else:
                        edge = (
                            (other, pid, nid) if inverse else (nid, pid, other)
                        )
                        if edge in used_edges:
                            continue
                        if other == tid and accepting:
                            return True
                        used_edges.add(edge)
                        if dfs(other, next_mask):
                            return True
                        used_edges.discard(edge)
            return False

        return dfs(sid, self.start_mask)


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

_cache_lock = threading.Lock()
_plan_cache: "OrderedDict[Tuple, CompiledRPQ]" = OrderedDict()
_plan_cache_maxsize = 256
_plan_cache_hits = 0
_plan_cache_misses = 0


def compile_rpq(expr: Regex) -> CompiledRPQ:
    """The compiled plan for ``expr``, from the LRU cache when possible.

    Plans are store-independent (the alphabet restriction is resolved
    per evaluation), so one cached plan serves every graph.
    """
    global _plan_cache_hits, _plan_cache_misses
    key = ast_key(expr)
    with _cache_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _plan_cache.move_to_end(key)
            _plan_cache_hits += 1
            return plan
    plan = CompiledRPQ(expr)
    with _cache_lock:
        _plan_cache_misses += 1
        _plan_cache[key] = plan
        while len(_plan_cache) > _plan_cache_maxsize:
            _plan_cache.popitem(last=False)
    return plan


def configure_plan_cache(maxsize: int) -> None:
    """Set the plan cache bound (evicting LRU entries if shrinking)."""
    global _plan_cache_maxsize
    if maxsize < 1:
        raise ValueError("plan cache needs room for at least one plan")
    with _cache_lock:
        _plan_cache_maxsize = maxsize
        while len(_plan_cache) > _plan_cache_maxsize:
            _plan_cache.popitem(last=False)


def clear_plan_cache() -> None:
    global _plan_cache_hits, _plan_cache_misses
    with _cache_lock:
        _plan_cache.clear()
        _plan_cache_hits = 0
        _plan_cache_misses = 0


def plan_cache_info() -> Dict[str, int]:
    with _cache_lock:
        return {
            "hits": _plan_cache_hits,
            "misses": _plan_cache_misses,
            "size": len(_plan_cache),
            "maxsize": _plan_cache_maxsize,
        }
