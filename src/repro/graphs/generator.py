"""Synthetic graph-data generators — structural analogues of the data
sets in the practical studies (DESIGN.md §2, Table 1).

Each generator mirrors one of the domain classes of Maniu et al.:

* :func:`road_network` — a grid with perturbations (HongKong, Paris):
  planar-ish, low degree, moderate treewidth that grows with grid size;
* :func:`web_graph` — preferential attachment (Wikipedia-like): heavy
  tail, dense core, huge treewidth relative to size;
* :func:`p2p_network` — sparse uniform random graph (Gnutella-like);
* :func:`hierarchy_graph` — a genealogy: a tree plus a few marriage
  edges (Royal), treewidth barely above 1;
* :func:`foaf_rdf` — an edge-labeled FOAF-like RDF data set with
  power-law degrees and near-constant predicate lists, feeding the
  Section 7 metrics.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional as Opt, Set, Tuple

from .rdf import TripleStore
from .treewidth import Adjacency, make_graph


def road_network(
    width: int, height: int, rng: Opt[random.Random] = None,
    extra_edge_rate: float = 0.05, missing_edge_rate: float = 0.05,
) -> Adjacency:
    """A width × height grid with a few diagonals added and a few street
    segments removed — the structure of real road networks.

    Treewidth of an intact n × n grid is exactly n, so the generated
    family has the moderate-but-growing treewidth Table 1 reports for
    HongKong and Paris.
    """
    rng = rng or random.Random()
    edges: List[Tuple[int, int]] = []

    def node(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                edges.append((node(x, y), node(x + 1, y)))
            if y + 1 < height:
                edges.append((node(x, y), node(x, y + 1)))
            if (
                x + 1 < width
                and y + 1 < height
                and rng.random() < extra_edge_rate
            ):
                edges.append((node(x, y), node(x + 1, y + 1)))
    kept = [edge for edge in edges if rng.random() >= missing_edge_rate]
    graph = make_graph(kept)
    for y in range(height):
        for x in range(width):
            graph.setdefault(node(x, y), set())
    return graph


def web_graph(
    num_nodes: int, attachments: int = 3, rng: Opt[random.Random] = None
) -> Adjacency:
    """Barabási–Albert preferential attachment: each new node attaches to
    ``attachments`` existing nodes chosen proportionally to degree.
    Produces the power-law degree distributions and dense cores of
    web-like data (Wikipedia in Table 1)."""
    rng = rng or random.Random()
    if num_nodes < attachments + 1:
        raise ValueError("need more nodes than attachments")
    edges: List[Tuple[int, int]] = []
    # seed clique
    seeds = list(range(attachments + 1))
    for i in seeds:
        for j in seeds[i + 1 :]:
            edges.append((i, j))
    # repeated-endpoint list implements proportional sampling
    endpoint_pool: List[int] = [n for edge in edges for n in edge]
    for new in range(attachments + 1, num_nodes):
        chosen: Set[int] = set()
        while len(chosen) < attachments:
            chosen.add(rng.choice(endpoint_pool))
        for target in chosen:
            edges.append((new, target))
            endpoint_pool.extend((new, target))
    return make_graph(edges)


def p2p_network(
    num_nodes: int, num_edges: int, rng: Opt[random.Random] = None
) -> Adjacency:
    """A sparse uniform random graph (Erdős–Rényi G(n, m)), the shape of
    unstructured peer-to-peer overlays like Gnutella."""
    rng = rng or random.Random()
    edges: Set[Tuple[int, int]] = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 20 * num_edges:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    graph = make_graph(edges)
    for node in range(num_nodes):
        graph.setdefault(node, set())
    return graph


def hierarchy_graph(
    num_nodes: int,
    rng: Opt[random.Random] = None,
    marriage_rate: float = 0.08,
    max_children: int = 4,
) -> Adjacency:
    """A genealogy: a random tree plus a few 'marriage' cross edges
    between nodes at the same depth.  Treewidth stays tiny (Royal in
    Table 1)."""
    rng = rng or random.Random()
    edges: List[Tuple[int, int]] = []
    depth: Dict[int, int] = {0: 0}
    frontier = [0]
    next_id = 1
    while next_id < num_nodes and frontier:
        parent = frontier.pop(0)
        for _ in range(rng.randint(1, max_children)):
            if next_id >= num_nodes:
                break
            edges.append((parent, next_id))
            depth[next_id] = depth[parent] + 1
            frontier.append(next_id)
            next_id += 1
    by_depth: Dict[int, List[int]] = {}
    for node, d in depth.items():
        by_depth.setdefault(d, []).append(node)
    for nodes in by_depth.values():
        for node in nodes:
            if len(nodes) > 1 and rng.random() < marriage_rate:
                partner = rng.choice(nodes)
                if partner != node:
                    edges.append((node, partner))
    graph = make_graph(edges)
    for node in range(num_nodes):
        graph.setdefault(node, set())
    return graph


def foaf_rdf(
    num_people: int,
    rng: Opt[random.Random] = None,
    knows_attachments: int = 2,
) -> TripleStore:
    """A FOAF-like RDF data set: every person has the same predicate list
    (name, mbox, knows*), and the 'knows' graph is preferential-attachment
    so in-degrees are heavy-tailed — reproducing both headline findings
    of Section 7 (predicate-list concentration and power-law degrees)."""
    rng = rng or random.Random()
    store = TripleStore()
    people = [f"person{i}" for i in range(num_people)]
    for i, person in enumerate(people):
        store.add(person, "rdf:type", "foaf:Person")
        store.add(person, "foaf:name", f'"Name {i}"')
        store.add(person, "foaf:mbox", f"mailto:user{i}@example.org")
    endpoint_pool: List[int] = [0]
    for i in range(1, num_people):
        chosen: Set[int] = set()
        want = min(knows_attachments, i)
        while len(chosen) < want:
            chosen.add(rng.choice(endpoint_pool))
        for target in chosen:
            store.add(people[i], "foaf:knows", people[target])
            endpoint_pool.extend((i, target))
        endpoint_pool.append(i)
    return store


def rdf_from_graph(
    graph: Adjacency, predicate: str = "edge"
) -> TripleStore:
    """Wrap an unlabeled graph as single-predicate RDF (both directions
    are materialized as separate triples only once: u -> v for u < v to
    keep the store the same size as the graph)."""
    store = TripleStore()
    for u, neighbours in graph.items():
        for v in neighbours:
            if str(u) <= str(v):
                store.add(str(u), predicate, str(v))
    return store
