"""Graph-structured data: the RDF substrate of Sections 7–10.

Public surface:

* Store: :class:`TripleStore`
* Generators: :func:`road_network`, :func:`web_graph`, :func:`p2p_network`,
  :func:`hierarchy_graph`, :func:`foaf_rdf`, :func:`rdf_from_graph`
* Treewidth: :func:`treewidth_interval`, upper/lower bound heuristics,
  :class:`TreeDecomposition`, :func:`is_valid_decomposition`
* Power laws: :func:`fit_power_law`, :func:`ccdf`, :func:`looks_heavy_tailed`
* Path queries: :func:`evaluate_rpq`, :func:`exists_simple_path`,
  :func:`exists_trail`, :func:`exists_simple_path_smart`
* Compiled plans: :class:`CompiledRPQ`, :func:`compile_rpq`,
  :func:`configure_plan_cache`, :func:`plan_cache_info`,
  :func:`clear_plan_cache`
"""

from .engine import (
    CompiledRPQ,
    clear_plan_cache,
    compile_rpq,
    configure_plan_cache,
    plan_cache_info,
)
from .generator import (
    foaf_rdf,
    hierarchy_graph,
    p2p_network,
    rdf_from_graph,
    road_network,
    web_graph,
)
from .paths import (
    count_walk_answers,
    evaluate_rpq,
    exists_simple_path,
    exists_simple_path_smart,
    exists_trail,
    reachable_by_rpq,
)
from .powerlaw import (
    PowerLawFit,
    ccdf,
    degree_histogram,
    fit_power_law,
    looks_heavy_tailed,
)
from .rdf import Triple, TripleStore
from .treewidth import (
    TreeDecomposition,
    TreewidthInterval,
    exact_treewidth_small,
    is_valid_decomposition,
    lower_bound_degeneracy,
    lower_bound_mmd_plus,
    make_graph,
    treewidth_interval,
    upper_bound_min_degree,
    upper_bound_min_fill,
)

__all__ = [
    "CompiledRPQ",
    "clear_plan_cache",
    "compile_rpq",
    "configure_plan_cache",
    "plan_cache_info",
    "foaf_rdf",
    "hierarchy_graph",
    "p2p_network",
    "rdf_from_graph",
    "road_network",
    "web_graph",
    "count_walk_answers",
    "evaluate_rpq",
    "exists_simple_path",
    "exists_simple_path_smart",
    "exists_trail",
    "reachable_by_rpq",
    "PowerLawFit",
    "ccdf",
    "degree_histogram",
    "fit_power_law",
    "looks_heavy_tailed",
    "Triple",
    "TripleStore",
    "TreeDecomposition",
    "TreewidthInterval",
    "exact_treewidth_small",
    "is_valid_decomposition",
    "lower_bound_degeneracy",
    "lower_bound_mmd_plus",
    "make_graph",
    "treewidth_interval",
    "upper_bound_min_degree",
    "upper_bound_min_fill",
]
