"""An RDF triple store and the dataset metrics of Section 7.

An RDF data set is a set of triples ``(s, p, o)``.  The store keeps the
three classical permutation indexes (SPO, POS, OSP) so that any triple
pattern with constants in any positions is answered by index lookup —
the substrate the SPARQL evaluator (:mod:`repro.sparql.evaluation`) and
the RPQ engine (:mod:`repro.graphs.paths`) run on.

The analysis methods reproduce the practical-study metrics:

* :meth:`TripleStore.predicate_subject_overlap` /
  :meth:`predicate_object_overlap` — the ratios
  ``|P ∩ S| / |P ∪ S|`` and ``|P ∩ O| / |P ∪ O|`` of Fernandez et al.,
  which are ~0 in real data (justifying the edge-labeled-graph
  abstraction);
* :meth:`predicate_lists` — the per-subject predicate sets ``L_s``; in
  real data ~99% of subjects share one of few lists;
* :meth:`out_degrees` / :meth:`in_degrees` — the degree distributions in
  which power laws were observed (Ding & Finin, Bachlechner & Strang);
* :meth:`sp_multiplicities` / :meth:`po_multiplicities` — how many
  objects a (s, p) pair relates to, and how many subjects a (p, o) pair.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional as Opt, Set, Tuple

from ..core.hashing import accumulate, accumulator_hex, item_digest

Triple = Tuple[str, str, str]


class TripleStore:
    """An in-memory RDF store with SPO / POS / OSP indexes.

    Alongside the classical string-keyed permutation indexes the store
    maintains an *interning layer*: every node (subject or object) and
    every predicate is assigned a dense integer id on first sight, and
    per-predicate forward/backward adjacency is kept as ``{node id:
    [successor ids]}`` dicts.  The compiled RPQ engine
    (:mod:`repro.graphs.engine`) runs entirely on these integer indexes;
    the string-keyed API stays the source of truth for everything else.
    """

    def __init__(self, triples: Opt[Iterable[Triple]] = None):
        self._spo: Dict[str, Dict[str, Set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: Dict[str, Dict[str, Set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: Dict[str, Dict[str, Set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        # interning layer ---------------------------------------------------
        self._node_ids: Dict[str, int] = {}
        self._node_names: List[str] = []
        self._pred_ids: Dict[str, int] = {}
        # _fwd[pid][nid] = successor node ids, _bwd[pid][nid] = predecessors
        self._fwd: List[Dict[int, List[int]]] = []
        self._bwd: List[Dict[int, List[int]]] = []
        self._version = 0
        # order-independent content accumulator (sum of per-triple
        # digests): fingerprint() derives from it in O(1)
        self._content_acc = 0
        # memoized frozensets handed out by successors()/predecessors()
        self._succ_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self._pred_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        if triples:
            for s, p, o in triples:
                self.add(s, p, o)

    def _intern_node(self, name: str) -> int:
        nid = self._node_ids.get(name)
        if nid is None:
            nid = len(self._node_names)
            self._node_ids[name] = nid
            self._node_names.append(name)
        return nid

    def _intern_predicate(self, name: str) -> int:
        pid = self._pred_ids.get(name)
        if pid is None:
            pid = len(self._fwd)
            self._pred_ids[name] = pid
            self._fwd.append({})
            self._bwd.append({})
        return pid

    def add(self, s: str, p: str, o: str) -> bool:
        """Insert a triple; returns False when it was already present."""
        if o in self._spo[s][p]:
            return False
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        sid = self._intern_node(s)
        oid = self._intern_node(o)
        pid = self._intern_predicate(p)
        self._fwd[pid].setdefault(sid, []).append(oid)
        self._bwd[pid].setdefault(oid, []).append(sid)
        self._version += 1
        self._content_acc = accumulate(
            self._content_acc, item_digest([s, p, o])
        )
        self._succ_cache.pop((s, p), None)
        self._pred_cache.pop((o, p), None)
        return True

    def __len__(self) -> int:
        return self._size

    def __reduce__(self):
        # the defaultdict-of-lambda indexes are not picklable; ship the
        # triple list and rebuild on the other side.  The content
        # fingerprint is order-independent, so the copy reports the
        # same fingerprint as the original (the mutation counter resets
        # — it is per-process by design).  Mapped stores override this
        # to ship only their image path.
        return (TripleStore, (sorted(self.triples()),))

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, set())

    def triples(
        self,
        s: Opt[str] = None,
        p: Opt[str] = None,
        o: Opt[str] = None,
    ) -> Iterator[Triple]:
        """All triples matching the (possibly wildcarded) pattern.

        The best index for the bound positions is chosen automatically.
        """
        if s is not None:
            by_predicate = self._spo.get(s, {})
            predicates = [p] if p is not None else list(by_predicate)
            for predicate in predicates:
                objects = by_predicate.get(predicate, set())
                if o is not None:
                    if o in objects:
                        yield (s, predicate, o)
                else:
                    for obj in objects:
                        yield (s, predicate, obj)
            return
        if o is not None:
            by_subject = self._osp.get(o, {})
            for subject, predicates in by_subject.items():
                for predicate in predicates:
                    if p is None or predicate == p:
                        yield (subject, predicate, o)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subject in subjects:
                    yield (subject, p, obj)
            return
        for subject, by_predicate in self._spo.items():
            for predicate, objects in by_predicate.items():
                for obj in objects:
                    yield (subject, predicate, obj)

    # -- basic sets ---------------------------------------------------------------

    def subjects(self) -> FrozenSet[str]:
        return frozenset(
            s for s, by_p in self._spo.items() if any(by_p.values())
        )

    def predicates(self) -> FrozenSet[str]:
        return frozenset(
            p for p, by_o in self._pos.items() if any(by_o.values())
        )

    def objects(self) -> FrozenSet[str]:
        return frozenset(
            o for o, by_s in self._osp.items() if any(by_s.values())
        )

    def nodes(self) -> FrozenSet[str]:
        """Subjects and objects — the nodes of the edge-labeled graph."""
        return frozenset(self._node_names)

    # -- edge-labeled-graph navigation (used by the RPQ engine) ---------------------

    def successors(self, node: str, predicate: str) -> FrozenSet[str]:
        key = (node, predicate)
        cached = self._succ_cache.get(key)
        if cached is None:
            cached = frozenset(self._spo.get(node, {}).get(predicate, ()))
            self._succ_cache[key] = cached
        return cached

    def predecessors(self, node: str, predicate: str) -> FrozenSet[str]:
        key = (node, predicate)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = frozenset(self._pos.get(predicate, {}).get(node, ()))
            self._pred_cache[key] = cached
        return cached

    # -- integer interning layer (the compiled engine's substrate) -------------------

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped on every successful add)."""
        return self._version

    def fingerprint(self) -> str:
        """The persistent content fingerprint of the store's data.

        Derived in O(1) from an incrementally maintained accumulator
        (sum of per-triple SHA-256 digests, see
        :mod:`repro.core.hashing`), so it is *order-independent* and
        *portable*: two stores holding the same triples report the same
        fingerprint regardless of insertion order, process, or machine,
        and a :class:`~repro.store.mmapstore.MappedTripleStore` opened
        from an image reports the fingerprint of the store that was
        frozen.  Any successful :meth:`add` changes it (up to SHA-256
        collisions), so result caches keyed on it are invalidated by
        mutation exactly as they were under the old session counter —
        but now the keys also survive restarts and agree across
        processes.
        """
        return f"c{accumulator_hex(self._content_acc, self._size)}-t{self._size:x}"

    def save(self, path) -> str:
        """Freeze the store into an on-disk mmap image (see
        :mod:`repro.store.mmapstore` for the format); returns the
        written fingerprint.  Open it with
        :meth:`repro.store.mmapstore.MappedTripleStore.load`."""
        from ..store.mmapstore import write_image

        return write_image(self, path)

    def node_count(self) -> int:
        return len(self._node_names)

    def node_id(self, name: str) -> Opt[int]:
        """Dense integer id of a node, or None if it never occurred."""
        return self._node_ids.get(name)

    def node_name(self, nid: int) -> str:
        return self._node_names[nid]

    def node_names(self) -> List[str]:
        """All node names indexed by their dense ids (do not mutate)."""
        return self._node_names

    def predicate_id(self, name: str) -> Opt[int]:
        """Dense integer id of a predicate, or None if absent."""
        return self._pred_ids.get(name)

    def predicate_names(self) -> List[str]:
        """All predicate names indexed by their dense ids."""
        names: List[str] = [""] * len(self._pred_ids)
        for name, pid in self._pred_ids.items():
            names[pid] = name
        return names

    def forward_adjacency(self, pid: int) -> Dict[int, List[int]]:
        """``{subject id: [object ids]}`` for one predicate (do not mutate)."""
        return self._fwd[pid]

    def backward_adjacency(self, pid: int) -> Dict[int, List[int]]:
        """``{object id: [subject ids]}`` for one predicate (do not mutate)."""
        return self._bwd[pid]

    def out_edges(self, node: str) -> Iterator[Tuple[str, str]]:
        """(predicate, object) pairs leaving ``node``."""
        for predicate, objects in self._spo.get(node, {}).items():
            for obj in objects:
                yield predicate, obj

    def in_edges(self, node: str) -> Iterator[Tuple[str, str]]:
        """(predicate, subject) pairs entering ``node``."""
        for subject, predicates in self._osp.get(node, {}).items():
            for predicate in predicates:
                yield predicate, subject

    # -- Fernandez et al. metrics (Section 7) ----------------------------------------

    def predicate_subject_overlap(self) -> float:
        """``|P ∩ S| / |P ∪ S|`` — near zero in real data, which is what
        licenses the edge-labeled directed graph abstraction."""
        predicates, subjects = self.predicates(), self.subjects()
        union = predicates | subjects
        if not union:
            return 0.0
        return len(predicates & subjects) / len(union)

    def predicate_object_overlap(self) -> float:
        """``|P ∩ O| / |P ∪ O|``."""
        predicates, objects = self.predicates(), self.objects()
        union = predicates | objects
        if not union:
            return 0.0
        return len(predicates & objects) / len(union)

    def predicate_lists(self) -> Dict[str, FrozenSet[str]]:
        """``L_s`` for every subject: the set of outgoing predicates."""
        return {
            s: frozenset(by_p)
            for s, by_p in self._spo.items()
            if any(by_p.values())
        }

    def predicate_list_concentration(self) -> float:
        """Fraction of subjects covered by the most common predicate
        lists needed to reach 99% coverage would be a study choice; we
        report the fraction of subjects whose list equals one of the top
        few distinct lists — concretely, the share of the single most
        common list (1.0 means every subject has the same list)."""
        lists = Counter(self.predicate_lists().values())
        total = sum(lists.values())
        if not total:
            return 0.0
        return lists.most_common(1)[0][1] / total

    def distinct_predicate_lists(self) -> int:
        return len(set(self.predicate_lists().values()))

    def out_degrees(self) -> Dict[str, int]:
        """Number of triples per subject (the out-degree distribution)."""
        return {
            s: sum(len(objs) for objs in by_p.values())
            for s, by_p in self._spo.items()
            if any(by_p.values())
        }

    def in_degrees(self) -> Dict[str, int]:
        """Number of triples per object (the in-degree distribution)."""
        return {
            o: sum(len(preds) for preds in by_s.values())
            for o, by_s in self._osp.items()
            if any(by_s.values())
        }

    def sp_multiplicities(self) -> List[int]:
        """|{o : (s,p,o) ∈ G}| per (s, p) pair — mostly 1 in real data."""
        return [
            len(objects)
            for by_p in self._spo.values()
            for objects in by_p.values()
            if objects
        ]

    def po_multiplicities(self) -> List[int]:
        """|{s : (s,p,o) ∈ G}| per (p, o) pair — mean near 1 but with a
        heavy tail (high standard deviation) in real data."""
        return [
            len(subjects)
            for by_o in self._pos.values()
            for subjects in by_o.values()
            if subjects
        ]

    def dataset_report(self) -> Dict[str, float]:
        """The headline metrics of a Fernandez-style characterization."""
        sp = self.sp_multiplicities()
        po = self.po_multiplicities()

        def mean(values: List[int]) -> float:
            return sum(values) / len(values) if values else 0.0

        def std(values: List[int]) -> float:
            if not values:
                return 0.0
            mu = mean(values)
            return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5

        in_deg = list(self.in_degrees().values())
        out_deg = list(self.out_degrees().values())
        return {
            "triples": float(len(self)),
            "subjects": float(len(self.subjects())),
            "predicates": float(len(self.predicates())),
            "objects": float(len(self.objects())),
            "ps_overlap": self.predicate_subject_overlap(),
            "po_overlap": self.predicate_object_overlap(),
            "distinct_predicate_lists": float(
                self.distinct_predicate_lists()
            ),
            "sp_mean": mean(sp),
            "sp_std": std(sp),
            "po_mean": mean(po),
            "po_std": std(po),
            "max_in_degree": float(max(in_deg, default=0)),
            "mean_in_degree": mean(in_deg),
            "max_out_degree": float(max(out_deg, default=0)),
            "mean_out_degree": mean(out_deg),
        }

    # -- projection to an unlabeled undirected graph (for treewidth) ------------------

    def undirected_adjacency(self) -> Dict[str, Set[str]]:
        adjacency: Dict[str, Set[str]] = defaultdict(set)
        for s, _p, o in self.triples():
            if s != o:
                adjacency[s].add(o)
                adjacency[o].add(s)
            else:
                adjacency.setdefault(s, set())
        return dict(adjacency)
