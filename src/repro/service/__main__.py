"""``python -m repro.service`` — run a server from the command line.

Registers a demo FOAF store (preferential-attachment ``knows`` graph)
so the server is immediately queryable::

    python -m repro.service --port 7411 --demo-people 2000

then from any asyncio program::

    client = await repro.service.connect("127.0.0.1", 7411)
    await client.rpq("foaf", "knows knows*")
"""

from __future__ import annotations

import argparse
import asyncio
import random
import tempfile
from pathlib import Path

from ..graphs.generator import foaf_rdf
from ..graphs.rdf import TripleStore
from .server import ReproServer, ServiceConfig
from .shard import shard_store


def demo_store(num_people: int) -> TripleStore:
    """The FOAF generator's graph with bare predicate names: colons
    are not multi-char atoms in the RPQ grammar, so ``foaf:knows``
    would be unqueryable — ``knows`` is."""
    store = TripleStore()
    for s, p, o in foaf_rdf(num_people, random.Random(2022)).triples():
        store.add(s, p.rsplit(":", 1)[-1], o)
    return store


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve RPQ / SPARQL / log-battery requests over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7411)
    parser.add_argument(
        "--workers", type=int, default=4, help="worker threads"
    )
    parser.add_argument(
        "--queue", type=int, default=64, help="admission queue bound"
    )
    parser.add_argument(
        "--cache-entries", type=int, default=4096, help="result-cache LRU size"
    )
    parser.add_argument(
        "--demo-people",
        type=int,
        default=1000,
        help="size of the demo 'foaf' store (0 disables it)",
    )
    parser.add_argument(
        "--store",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help=(
            "register a frozen store (repeatable): NAME=path to an image "
            "written by TripleStore.save() (opened memory-mapped, "
            "read-only, instantly) or to a shard directory written by "
            "shard_store() (served scatter-gather by worker processes)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "shard the demo store into N per-predicate-hash images "
            "(under a temp directory) and serve it scatter-gather "
            "across N worker processes (0 = serve in-process)"
        ),
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="R",
        help="worker attachments per shard (failover targets)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="ping shard workers this often, respawning dead ones",
    )
    return parser


async def _run(args: argparse.Namespace) -> None:
    stores = {}
    if args.demo_people:
        demo = demo_store(args.demo_people)
        if args.shards:
            shard_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
            shard_store(demo, shard_dir, shards=args.shards)
            print(
                f"demo store sharded {args.shards} ways under {shard_dir}"
            )
            stores["foaf"] = shard_dir
        else:
            stores["foaf"] = demo
    for spec in args.store:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            raise SystemExit(f"--store expects NAME=PATH, got {spec!r}")
        stores[name] = path  # image or shard dir; ServiceCore resolves
    config = ServiceConfig(
        max_workers=args.workers,
        max_queue=args.queue,
        cache_entries=args.cache_entries,
        shard_replicas=args.replicas,
        health_check_interval=args.health_interval,
    )
    async with ReproServer(
        stores, config, host=args.host, port=args.port
    ) as server:
        host, port = server.address
        names = ", ".join(sorted(stores)) or "none"
        print(f"repro.service listening on {host}:{port} (stores: {names})")
        await asyncio.Event().wait()  # until interrupted


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_run(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
