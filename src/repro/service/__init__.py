"""The async query-serving layer (the ROADMAP's traffic-facing front).

The paper's studies are batch jobs; this package turns the same
engines — RPQ evaluation, SPARQL parse+analysis, the log battery —
into a served API: an asyncio TCP server speaking a length-prefixed
JSON protocol, with admission control (bounded queue, load shedding),
per-request deadlines, single-flight deduplication of identical
in-flight requests, a content-addressed result cache, and per-endpoint
metrics with latency percentiles.

Stores can be served from memory, from one frozen mmap image, or from
a *sharded deployment*: a directory of per-shard images written by
:func:`shard_store`, attached zero-copy by a pool of worker processes
and evaluated scatter-gather by :class:`ShardGroup` — with label-pruned,
pipelined frontier exchange for multi-shard RPQs and owners()-routed
SPARQL evaluation (the ``query`` op) against the shard images.  All
messages are typed wire-v2 dataclasses (:class:`RpqRequest` …
:class:`StatsResponse`); the pre-typed v1 dict encoding is rejected
with an upgrade hint.

Public surface:

* Opening: :func:`open_service` — one factory for every deployment
  shape (stores dict → embedded, ``"host:port"`` or tuple → TCP)
* Serving: :class:`ReproServer`, :func:`serve`, :class:`ServiceCore`,
  :class:`ServiceConfig`, :class:`EmbeddedService` (in-process, same
  caller API)
* Calling: :class:`ServiceClient`, :func:`connect`, :class:`RequestAPI`
* Sharding: :func:`shard_store`, :class:`ShardGroup`,
  :class:`ShardManifest`
* Scheduling: :class:`Scheduler`
* Caching: :class:`ResultCache`, :func:`result_key`
* Metrics: :class:`ServiceMetrics`, :class:`LatencyHistogram`
* Protocol: :mod:`repro.service.protocol` — ``WIRE_VERSION``, the
  typed :class:`Request` / :class:`Response` families
* Typed errors (re-exported from :mod:`repro.errors`):
  :class:`ServiceError`, :class:`ServiceOverloaded`,
  :class:`DeadlineExceeded`, :class:`BadRequest`,
  :class:`ProtocolError`, :class:`StoreFrozenError`,
  :class:`StoreUnavailableError`, :class:`ShardError`

Run a demo server with ``python -m repro.service --port 7411``
(add ``--shards 4`` to serve the demo store sharded).
"""

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceOverloaded,
    ShardError,
    StoreFrozenError,
    StoreUnavailableError,
)
from .client import RequestAPI, ServiceClient, connect
from .metrics import EndpointMetrics, LatencyHistogram, ServiceMetrics
from .protocol import (
    WIRE_VERSION,
    BatteryRequest,
    BatteryResponse,
    ErrorResponse,
    LogBatteryRequest,
    LogBatteryResponse,
    MutateRequest,
    MutateResponse,
    PingRequest,
    PingResponse,
    QueryRequest,
    QueryResponse,
    Request,
    Response,
    RpqRequest,
    RpqResponse,
    SparqlRequest,
    SparqlResponse,
    StatsRequest,
    StatsResponse,
    ValidateRequest,
    ValidateResponse,
    parse_response,
)
from .resultcache import ResultCache, result_key
from .scheduler import Scheduler
from .server import (
    COMPUTE_OPS,
    EmbeddedService,
    ReproServer,
    ServiceConfig,
    ServiceCore,
    open_service,
    serve,
)
from .shard import ShardGroup, ShardManifest, shard_store

__all__ = [
    "BadRequest",
    "BatteryRequest",
    "BatteryResponse",
    "COMPUTE_OPS",
    "DeadlineExceeded",
    "EmbeddedService",
    "EndpointMetrics",
    "ErrorResponse",
    "LatencyHistogram",
    "LogBatteryRequest",
    "LogBatteryResponse",
    "MutateRequest",
    "MutateResponse",
    "PingRequest",
    "PingResponse",
    "ProtocolError",
    "QueryRequest",
    "QueryResponse",
    "ReproServer",
    "Request",
    "RequestAPI",
    "Response",
    "ResultCache",
    "RpqRequest",
    "RpqResponse",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceCore",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloaded",
    "ShardError",
    "ShardGroup",
    "ShardManifest",
    "SparqlRequest",
    "SparqlResponse",
    "StatsRequest",
    "StatsResponse",
    "StoreFrozenError",
    "StoreUnavailableError",
    "ValidateRequest",
    "ValidateResponse",
    "WIRE_VERSION",
    "connect",
    "open_service",
    "parse_response",
    "result_key",
    "serve",
    "shard_store",
]
