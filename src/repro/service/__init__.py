"""The async query-serving layer (the ROADMAP's traffic-facing front).

The paper's studies are batch jobs; this package turns the same
engines — RPQ evaluation, SPARQL parse+analysis, the log battery —
into a served API: an asyncio TCP server speaking a length-prefixed
JSON protocol, with admission control (bounded queue, load shedding),
per-request deadlines, single-flight deduplication of identical
in-flight requests, a content-addressed result cache, and per-endpoint
metrics with latency percentiles.

Public surface:

* Serving: :class:`ReproServer`, :func:`serve`, :class:`ServiceCore`,
  :class:`ServiceConfig`, :class:`EmbeddedService` (in-process, same
  caller API)
* Calling: :class:`ServiceClient`, :func:`connect`, :class:`RequestAPI`
* Scheduling: :class:`Scheduler`
* Caching: :class:`ResultCache`, :func:`result_key`
* Metrics: :class:`ServiceMetrics`, :class:`LatencyHistogram`
* Protocol: :mod:`repro.service.protocol`
* Typed errors (re-exported from :mod:`repro.errors`):
  :class:`ServiceError`, :class:`ServiceOverloaded`,
  :class:`DeadlineExceeded`, :class:`BadRequest`, :class:`ProtocolError`

Run a demo server with ``python -m repro.service --port 7411``.
"""

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceOverloaded,
)
from .client import RequestAPI, ServiceClient, connect
from .metrics import EndpointMetrics, LatencyHistogram, ServiceMetrics
from .resultcache import ResultCache, result_key
from .scheduler import Scheduler
from .server import (
    COMPUTE_OPS,
    EmbeddedService,
    ReproServer,
    ServiceConfig,
    ServiceCore,
    serve,
)

__all__ = [
    "BadRequest",
    "COMPUTE_OPS",
    "DeadlineExceeded",
    "EmbeddedService",
    "EndpointMetrics",
    "LatencyHistogram",
    "ProtocolError",
    "ReproServer",
    "RequestAPI",
    "ResultCache",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceCore",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloaded",
    "connect",
    "result_key",
    "serve",
]
