"""The wire protocol: length-prefixed JSON frames and typed messages.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object.  Length-prefixing (rather
than newline-delimited JSON) keeps the framing independent of payload
content, lets the reader allocate exactly once per message, and gives a
hard, checkable bound (:data:`MAX_FRAME_BYTES`) before any payload byte
is read — a malformed or hostile peer cannot make the server buffer an
unbounded line.

Wire version 2 (current) speaks *typed messages*: each operation has a
frozen request dataclass (:class:`RpqRequest`, :class:`SparqlRequest`,
:class:`QueryRequest`, :class:`LogBatteryRequest`,
:class:`BatteryRequest`, :class:`MutateRequest`, :class:`StatsRequest`,
:class:`PingRequest`) and a matching response type, all carrying
``to_wire()`` / ``from_wire()``.  On the wire a v2 request is::

    {"v": 2, "id": str, "op": str, "params": {...}, "deadline_ms"?: num}

and a v2 response is the version-stamped envelope of
:class:`OkResponse` / :class:`ErrorResponse`::

    {"v": 2, "id": str, "ok": true,  "result": {...}, "served_from"?: str}
    {"v": 2, "id": str, "ok": false, "error": {"code": str, "message": str}}

``served_from`` (``cache`` | ``engine``) is set for compute operations
so every answer is traceable to how it was produced; ``code`` is the
stable identifier of one of the typed
:class:`~repro.errors.ServiceError` subclasses.

**Removed — version 1**: requests without a ``"v"`` field were the
pre-typed encoding, accepted alongside v2 for one deprecation release.
That window is over: the server now rejects a version-less request with
a typed :class:`~repro.errors.BadRequest` carrying an upgrade hint, and
counts the attempt in ``metrics.legacy_requests`` (the counter survives
as a rejected-v1 signal, so operators can see stragglers before they
page).  Construct typed requests (or use the
:class:`~.client.RequestAPI` wrappers, which do).

Responses may arrive in any order; the ``id`` is the correlation key
(the server handles requests of one connection concurrently, and the
client demultiplexes by id).
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, List, Optional as Opt, Tuple, Type

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceOverloaded,
    ShardError,
    StoreFrozenError,
    StoreUnavailableError,
)

#: Hard bound on one frame's JSON payload (requests *and* responses).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Current wire encoding version.  Version 1 (no ``"v"`` field) was the
#: pre-typed dict encoding; its deprecation window has closed and the
#: server now rejects it — see the module docstring.
WIRE_VERSION = 2

_LENGTH = struct.Struct(">I")

#: ``code`` -> exception type, for reconstructing typed errors client-side.
ERROR_TYPES: Dict[str, type] = {
    cls.code: cls
    for cls in (
        ServiceError,
        ServiceOverloaded,
        DeadlineExceeded,
        BadRequest,
        ProtocolError,
        ShardError,
        StoreFrozenError,
        StoreUnavailableError,
    )
}


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as wire bytes (length prefix + compact JSON)."""
    payload = json.dumps(
        message, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_FRAME_BYTES,
) -> Opt[Dict[str, Any]]:
    """The next message from ``reader``, or ``None`` on a clean EOF
    (connection closed between frames).

    Raises :class:`~repro.errors.ProtocolError` for a declared length
    over ``max_bytes``, a connection cut mid-frame, or a payload that is
    not a JSON object — all cases where the stream can no longer be
    trusted and the connection should be dropped.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header")
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {max_bytes}-byte bound"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


# -- typed messages (wire version 2) ----------------------------------------


@dataclass(frozen=True, kw_only=True)
class Request:
    """Base of the typed request types.

    Subclasses declare the operation name as the ``op`` class attribute
    and the operation's parameters as dataclass fields; ``id`` and
    ``deadline_ms`` live on the envelope, everything else goes into
    ``params``.  ``None``-valued optional fields are omitted from the
    wire form, so a round-trip through :meth:`to_wire` /
    :meth:`from_wire` is exact.
    """

    op: ClassVar[str] = ""
    id: Opt[str] = None
    deadline_ms: Opt[float] = None

    def params(self) -> Dict[str, Any]:
        """The operation parameters as the dispatch-layer dict."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            if spec.name in ("id", "deadline_ms"):
                continue
            value = getattr(self, spec.name)
            if value is not None:
                out[spec.name] = value
        return out

    def to_wire(self) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "id": self.id,
            "op": self.op,
            "params": self.params(),
        }
        if self.deadline_ms is not None:
            message["deadline_ms"] = self.deadline_ms
        return message

    @classmethod
    def from_wire(cls, message: Dict[str, Any]) -> "Request":
        """The typed request a v2 wire message encodes.  Unknown
        parameters are rejected — the typed encoding is strict where
        the legacy one silently ignored extras."""
        params = message.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequest("'params' must be an object")
        known = {
            spec.name for spec in fields(cls)
        } - {"id", "deadline_ms"}
        unknown = sorted(set(params) - known)
        if unknown:
            raise BadRequest(
                f"unknown parameter(s) for {cls.op!r}: {', '.join(unknown)}"
            )
        request_id = message.get("id")
        if request_id is not None and not isinstance(request_id, str):
            request_id = str(request_id)
        try:
            return cls(
                id=request_id,
                deadline_ms=message.get("deadline_ms"),
                **params,
            )
        except TypeError as exc:
            raise BadRequest(f"bad parameters for {cls.op!r}: {exc}")

    @staticmethod
    def parse(message: Dict[str, Any]) -> "Request":
        """Dispatch a v2 wire message to its request type."""
        op = message.get("op")
        if not isinstance(op, str) or not op:
            raise BadRequest("request has no 'op' string")
        request_type = REQUEST_TYPES.get(op)
        if request_type is None:
            raise BadRequest(f"unknown operation {op!r}")
        return request_type.from_wire(message)


@dataclass(frozen=True, kw_only=True)
class PingRequest(Request):
    op: ClassVar[str] = "ping"


@dataclass(frozen=True, kw_only=True)
class StatsRequest(Request):
    op: ClassVar[str] = "stats"


@dataclass(frozen=True, kw_only=True)
class RpqRequest(Request):
    op: ClassVar[str] = "rpq"
    store: str = ""
    expr: str = ""
    semantics: str = "walk"
    source: Opt[str] = None
    target: Opt[str] = None
    sources: Opt[List[str]] = None
    targets: Opt[List[str]] = None


@dataclass(frozen=True, kw_only=True)
class SparqlRequest(Request):
    op: ClassVar[str] = "sparql"
    query: str = ""


@dataclass(frozen=True, kw_only=True)
class QueryRequest(Request):
    """Evaluate a SPARQL query against a named store (operation
    ``query``) — full evaluation, unlike :class:`SparqlRequest` which
    only parses and analyzes the text.  On a sharded store the pattern
    accesses are owners()-routed through the shard images."""

    op: ClassVar[str] = "query"
    store: str = ""
    query: str = ""


@dataclass(frozen=True, kw_only=True)
class LogBatteryRequest(Request):
    """One query through the full log battery (operation name ``log``)."""

    op: ClassVar[str] = "log"
    query: str = ""


@dataclass(frozen=True, kw_only=True)
class BatteryRequest(Request):
    """A whole list of query texts through the battery, merged into one
    corpus-level report (scattered over shard workers when the service
    is sharded)."""

    op: ClassVar[str] = "battery"
    queries: List[str] = field(default_factory=list)
    source: str = "service"
    #: a *sharded* store whose worker processes should run the analysis;
    #: None (or an unsharded store) computes on the coordinator
    store: Opt[str] = None


@dataclass(frozen=True, kw_only=True)
class ValidateRequest(Request):
    """Stream-validate a document against a tree schema (operation
    ``validate``).

    ``schema_kind`` selects the formalism (``dtd``, ``edtd`` or
    ``bonxai``); ``rules``/``start``/``mu`` are the textual schema in
    the same shape the ``from_rules`` constructors take.  The document
    is either ``document`` text in ``format`` (``xml`` or ``json``) or
    an explicit ``events`` list.  The server compiles the schema to an
    NFTA once (LRU-cached by schema fingerprint) and runs it in a
    single streaming pass — results are cached by (schema fingerprint,
    document digest), and the op is store-less so it serves identically
    on embedded and sharded deployments."""

    op: ClassVar[str] = "validate"
    schema_kind: str = "dtd"
    rules: Dict[str, str] = field(default_factory=dict)
    start: Opt[List[str]] = None
    mu: Opt[Dict[str, str]] = None
    document: Opt[str] = None
    format: str = "xml"
    events: Opt[List[List[str]]] = None


@dataclass(frozen=True, kw_only=True)
class MutateRequest(Request):
    op: ClassVar[str] = "mutate"
    store: str = ""
    triples: List[List[str]] = field(default_factory=list)


#: operation name -> typed request class (v2 parse dispatch)
REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.op: cls
    for cls in (
        PingRequest,
        StatsRequest,
        RpqRequest,
        SparqlRequest,
        QueryRequest,
        LogBatteryRequest,
        BatteryRequest,
        ValidateRequest,
        MutateRequest,
    )
}


@dataclass(frozen=True, kw_only=True)
class Response:
    """Base of the typed success responses: dataclass fields are the
    result payload, ``id``/``served_from`` are envelope metadata."""

    id: Opt[str] = None
    served_from: Opt[str] = None

    @property
    def ok(self) -> bool:
        return True

    def result(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for spec in fields(self):
            if spec.name in ("id", "served_from"):
                continue
            value = getattr(self, spec.name)
            if value is not None:
                out[spec.name] = value
        return out

    def to_wire(self) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "id": self.id,
            "ok": True,
            "result": self.result(),
        }
        if self.served_from is not None:
            message["served_from"] = self.served_from
        return message

    @classmethod
    def from_wire(cls, message: Dict[str, Any]):
        """The typed response a wire envelope encodes; failure envelopes
        come back as :class:`ErrorResponse` whichever type parses them.
        Unknown result fields are ignored (responses are lenient where
        requests are strict: an older client must survive a newer
        server's additions)."""
        if not message.get("ok"):
            return ErrorResponse.from_wire(message)
        payload = message.get("result")
        payload = payload if isinstance(payload, dict) else {}
        known = {spec.name for spec in fields(cls)} - {"id", "served_from"}
        return cls(
            id=message.get("id"),
            served_from=message.get("served_from"),
            **{name: payload[name] for name in known if name in payload},
        )


@dataclass(frozen=True, kw_only=True)
class PingResponse(Response):
    pong: bool = True


@dataclass(frozen=True, kw_only=True)
class StatsResponse(Response):
    metrics: Opt[Dict[str, Any]] = None
    cache: Opt[Dict[str, Any]] = None
    scheduler: Opt[Dict[str, Any]] = None
    stores: Opt[Dict[str, Any]] = None
    shards: Opt[Dict[str, Any]] = None


@dataclass(frozen=True, kw_only=True)
class RpqResponse(Response):
    semantics: str = "walk"
    pairs: Opt[List[List[str]]] = None
    count: Opt[int] = None
    exists: Opt[bool] = None


@dataclass(frozen=True, kw_only=True)
class SparqlResponse(Response):
    valid: bool = False
    canonical: Opt[str] = None
    query_type: Opt[str] = None
    triples: Opt[int] = None
    features: Opt[List[str]] = None
    operators: Opt[List[str]] = None
    reason: Opt[str] = None


@dataclass(frozen=True, kw_only=True)
class QueryResponse(Response):
    """A full SPARQL evaluation: ``kind`` is ``select`` (``rows`` +
    ``count``), ``ask`` (``boolean``) or ``graph`` (``triples``); an
    unparseable or unsupported query answers ``valid=False`` with a
    ``reason`` instead of an error envelope (the query was understood
    well enough to be judged, like the ``sparql`` analysis op)."""

    valid: bool = False
    kind: Opt[str] = None
    rows: Opt[List[Dict[str, str]]] = None
    count: Opt[int] = None
    boolean: Opt[bool] = None
    triples: Opt[List[List[str]]] = None
    reason: Opt[str] = None


@dataclass(frozen=True, kw_only=True)
class LogBatteryResponse(Response):
    valid: bool = False
    record: Opt[Dict[str, Any]] = None
    reason: Opt[str] = None

    def result(self) -> Dict[str, Any]:
        # ``record`` is meaningful even when None (an invalid query has
        # no record) — keep the legacy payload shape exactly
        out = super().result()
        out.setdefault("record", None)
        return out


@dataclass(frozen=True, kw_only=True)
class BatteryResponse(Response):
    report: Opt[Dict[str, Any]] = None


@dataclass(frozen=True, kw_only=True)
class ValidateResponse(Response):
    """A streaming validation verdict: ``valid`` plus a ``reason`` when
    rejected; ``stack_depth`` is the validator's high-water frame count
    (the memory bound actually observed) and ``states`` the compiled
    automaton size.  An unparseable document answers ``valid=False``
    with a reason, like the ``sparql`` analysis op; only a broken
    *schema* is a ``bad_request`` error."""

    valid: bool = False
    reason: Opt[str] = None
    stack_depth: Opt[int] = None
    states: Opt[int] = None


@dataclass(frozen=True, kw_only=True)
class MutateResponse(Response):
    added: int = 0
    size: int = 0
    fingerprint: str = ""


@dataclass(frozen=True, kw_only=True)
class ErrorResponse:
    """A typed failure envelope; :meth:`to_exception` reconstructs the
    original :class:`~repro.errors.ServiceError` subclass."""

    id: Opt[str] = None
    code: str = ServiceError.code
    message: str = "service error"

    @property
    def ok(self) -> bool:
        return False

    def to_wire(self) -> Dict[str, Any]:
        return {
            "v": WIRE_VERSION,
            "id": self.id,
            "ok": False,
            "error": {"code": self.code, "message": self.message},
        }

    @classmethod
    def from_wire(cls, message: Dict[str, Any]) -> "ErrorResponse":
        error = message.get("error") or {}
        return cls(
            id=message.get("id"),
            code=error.get("code", ServiceError.code),
            message=error.get("message", "service error"),
        )

    def to_exception(self) -> ServiceError:
        return ERROR_TYPES.get(self.code, ServiceError)(self.message)


#: operation name -> typed response class
RESPONSE_TYPES: Dict[str, Type[Response]] = {
    "ping": PingResponse,
    "stats": StatsResponse,
    "rpq": RpqResponse,
    "sparql": SparqlResponse,
    "query": QueryResponse,
    "log": LogBatteryResponse,
    "battery": BatteryResponse,
    "validate": ValidateResponse,
    "mutate": MutateResponse,
}


def parse_response(op: str, message: Dict[str, Any]):
    """The typed response for an ``op`` request's reply envelope
    (success or :class:`ErrorResponse`)."""
    if not message.get("ok"):
        return ErrorResponse.from_wire(message)
    response_type = RESPONSE_TYPES.get(op)
    if response_type is None:
        raise ProtocolError(f"no response type for operation {op!r}")
    return response_type.from_wire(message)


# -- message constructors ---------------------------------------------------


def request(
    request_id: str,
    op: str,
    params: Opt[Dict[str, Any]] = None,
    deadline_ms: Opt[float] = None,
) -> Dict[str, Any]:
    """A v2 request envelope from loose parts (the typed dataclasses'
    ``to_wire()`` is the first-class constructor; this is the escape
    hatch for ops without a dataclass yet, and it stamps the version
    so it never produces a rejected v1 frame)."""
    message: Dict[str, Any] = {
        "v": WIRE_VERSION,
        "id": request_id,
        "op": op,
        "params": params or {},
    }
    if deadline_ms is not None:
        message["deadline_ms"] = deadline_ms
    return message


def ok_response(
    request_id: Opt[str],
    result: Any,
    served_from: Opt[str] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if served_from is not None:
        message["served_from"] = served_from
    return message


def error_response(
    request_id: Opt[str], code: str, message: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def error_from_response(response: Dict[str, Any]) -> ServiceError:
    """The typed exception a failure response encodes (used by the
    client to re-raise server-side failures under their original
    types)."""
    error = response.get("error") or {}
    code = error.get("code", ServiceError.code)
    exc_type = ERROR_TYPES.get(code, ServiceError)
    exc = exc_type(error.get("message", "service error"))
    return exc
