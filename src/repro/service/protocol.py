"""The wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object.  Length-prefixing (rather
than newline-delimited JSON) keeps the framing independent of payload
content, lets the reader allocate exactly once per message, and gives a
hard, checkable bound (:data:`MAX_FRAME_BYTES`) before any payload byte
is read — a malformed or hostile peer cannot make the server buffer an
unbounded line.

Requests and responses are plain dicts:

* request — ``{"id": str, "op": str, "params": {...}}`` plus an
  optional ``"deadline_ms"`` (a per-request budget in milliseconds,
  measured from admission on the server);
* success — ``{"id": str, "ok": true, "result": {...}}`` plus, for the
  compute operations, ``"served_from": "cache" | "engine"`` so every
  answer is traceable to how it was produced;
* failure — ``{"id": str, "ok": false, "error": {"code": str,
  "message": str}}`` where ``code`` is the stable identifier of one of
  the typed :class:`~repro.errors.ServiceError` subclasses.

Responses may arrive in any order; the ``id`` is the correlation key
(the server handles requests of one connection concurrently, and the
client demultiplexes by id).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional as Opt

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceOverloaded,
    StoreFrozenError,
)

#: Hard bound on one frame's JSON payload (requests *and* responses).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: ``code`` -> exception type, for reconstructing typed errors client-side.
ERROR_TYPES: Dict[str, type] = {
    cls.code: cls
    for cls in (
        ServiceError,
        ServiceOverloaded,
        DeadlineExceeded,
        BadRequest,
        ProtocolError,
        StoreFrozenError,
    )
}


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as wire bytes (length prefix + compact JSON)."""
    payload = json.dumps(
        message, ensure_ascii=False, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound"
        )
    return _LENGTH.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_FRAME_BYTES,
) -> Opt[Dict[str, Any]]:
    """The next message from ``reader``, or ``None`` on a clean EOF
    (connection closed between frames).

    Raises :class:`~repro.errors.ProtocolError` for a declared length
    over ``max_bytes``, a connection cut mid-frame, or a payload that is
    not a JSON object — all cases where the stream can no longer be
    trusted and the connection should be dropped.
    """
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header")
    (length,) = _LENGTH.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {max_bytes}-byte bound"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed inside a frame payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return message


# -- message constructors ---------------------------------------------------


def request(
    request_id: str,
    op: str,
    params: Opt[Dict[str, Any]] = None,
    deadline_ms: Opt[float] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"id": request_id, "op": op, "params": params or {}}
    if deadline_ms is not None:
        message["deadline_ms"] = deadline_ms
    return message


def ok_response(
    request_id: Opt[str],
    result: Any,
    served_from: Opt[str] = None,
) -> Dict[str, Any]:
    message: Dict[str, Any] = {"id": request_id, "ok": True, "result": result}
    if served_from is not None:
        message["served_from"] = served_from
    return message


def error_response(
    request_id: Opt[str], code: str, message: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def error_from_response(response: Dict[str, Any]) -> ServiceError:
    """The typed exception a failure response encodes (used by the
    client to re-raise server-side failures under their original
    types)."""
    error = response.get("error") or {}
    code = error.get("code", ServiceError.code)
    exc_type = ERROR_TYPES.get(code, ServiceError)
    exc = exc_type(error.get("message", "service error"))
    return exc
