"""Per-endpoint service metrics: counters and latency histograms.

The serving layer must answer "what is this process doing" without a
profiler attached, so every request updates an
:class:`EndpointMetrics`: outcome counters (ok / error-by-code / shed /
timed out), cache accounting (hit / miss / coalesced into an in-flight
execution), and a latency histogram.

The histogram is fixed-memory: geometric buckets from 10 µs to ~100 s
(ratio 1.3, ~150 ints) rather than a sample reservoir, so recording is
O(1), memory is bounded for any traffic volume, and quantiles are
monotone.  Quantiles interpolate within the bucket that contains the
requested rank; the relative error is bounded by the bucket ratio
(≤ 30%), which is the right trade for serving dashboards — the study
benchmarks record exact wall-clock timings separately.

All updates happen on the event-loop thread (the scheduler's worker
threads never touch metrics), so no locking is needed.  The one
exception is the sharded exchange accounting (``scatter_bytes`` /
``gather_bytes`` / ``shard_rounds`` / ``pruned_entries``), which a
:class:`~repro.service.shard.ShardGroup` folds in from a scheduler
worker thread under its own coordinator lock — observability counters
whose reads are snapshots anyway.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import Counter
from typing import Any, Dict, List, Optional as Opt

_BUCKET_RATIO = 1.3
_FIRST_BOUND = 1e-5  # 10 µs
_LAST_BOUND = 100.0  # 100 s


def _bounds() -> List[float]:
    bounds = [_FIRST_BOUND]
    while bounds[-1] < _LAST_BOUND:
        bounds.append(bounds[-1] * _BUCKET_RATIO)
    return bounds


#: shared upper bounds of the finite buckets (one overflow bucket after)
BUCKET_BOUNDS: List[float] = _bounds()


class LatencyHistogram:
    """Geometric-bucket latency histogram with interpolated quantiles."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Opt[float] = None
        self.max: Opt[float] = None

    def record(self, seconds: float) -> None:
        seconds = max(0.0, seconds)
        self.counts[bisect_left(BUCKET_BOUNDS, seconds)] += 1
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """The latency at rank ``q`` (0 < q <= 1), interpolated within
        its bucket; 0.0 when nothing was recorded."""
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else (self.max or BUCKET_BOUNDS[-1])
                )
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                fraction = (rank - seen) / bucket_count
                value = lower + (upper - lower) * fraction
                # exact extremes beat bucket edges when they are tighter
                if self.max is not None:
                    value = min(value, self.max)
                if self.min is not None:
                    value = max(value, self.min)
                return value
            seen += bucket_count
        return self.max or 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000.0, 4),
            "min_ms": round((self.min or 0.0) * 1000.0, 4),
            "max_ms": round((self.max or 0.0) * 1000.0, 4),
            "p50_ms": round(self.quantile(0.50) * 1000.0, 4),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 4),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 4),
        }


class EndpointMetrics:
    """Counters and latency for one operation name."""

    __slots__ = (
        "requests",
        "ok",
        "errors",
        "shed",
        "timeouts",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "latency",
    )

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.errors: Counter = Counter()  # by error code
        self.shed = 0
        self.timeouts = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.latency = LatencyHistogram()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": dict(sorted(self.errors.items())),
            "shed": self.shed,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced": self.coalesced,
            "latency": self.latency.snapshot(),
        }


class ServiceMetrics:
    """The service-wide registry: one :class:`EndpointMetrics` per op,
    plus connection-level counters the endpoints cannot see."""

    def __init__(self):
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self.started = time.monotonic()
        self.connections = 0
        self.disconnects = 0  #: responses dropped on a gone connection
        self.protocol_errors = 0
        #: *rejected* requests in the removed pre-typed (v1) wire
        #: encoding — each one answered with a typed BadRequest carrying
        #: an upgrade hint; a non-zero count means a straggler client
        self.legacy_requests = 0
        # sharded frontier-exchange accounting, mirrored from every
        # mounted ShardGroup (estimated wire payload — deterministic
        # across hosts, see repro.service.shard)
        self.scatter_bytes = 0
        self.gather_bytes = 0
        self.shard_rounds = 0
        self.pruned_entries = 0

    def endpoint(self, op: str) -> EndpointMetrics:
        metrics = self._endpoints.get(op)
        if metrics is None:
            metrics = self._endpoints[op] = EndpointMetrics()
        return metrics

    def record(
        self,
        op: str,
        started: float,
        outcome: str,
        error_code: Opt[str] = None,
    ) -> None:
        """Fold one finished request into the registry.  ``outcome`` is
        ``ok`` / ``error`` / ``shed`` / ``timeout``; latency is recorded
        for every outcome (a shed request's latency is its queue time,
        which is exactly what an overload investigation needs)."""
        metrics = self.endpoint(op)
        metrics.requests += 1
        metrics.latency.record(time.monotonic() - started)
        if outcome == "ok":
            metrics.ok += 1
        elif outcome == "shed":
            metrics.shed += 1
            metrics.errors[error_code or "overloaded"] += 1
        elif outcome == "timeout":
            metrics.timeouts += 1
            metrics.errors[error_code or "deadline_exceeded"] += 1
        else:
            metrics.errors[error_code or "service_error"] += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "connections": self.connections,
            "disconnects": self.disconnects,
            "protocol_errors": self.protocol_errors,
            "legacy_requests": self.legacy_requests,
            "scatter_bytes": self.scatter_bytes,
            "gather_bytes": self.gather_bytes,
            "shard_rounds": self.shard_rounds,
            "pruned_entries": self.pruned_entries,
            "endpoints": {
                op: metrics.snapshot()
                for op, metrics in sorted(self._endpoints.items())
            },
        }
