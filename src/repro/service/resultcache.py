"""The in-memory result cache of the serving layer.

Entries are content-addressed by ``(endpoint, store fingerprint,
canonical query text, semantics)`` — hashed with the same SHA-256
discipline the persistent log cache uses
(:func:`repro.core.hashing.text_key`), so the two caching layers share
one key derivation and cannot drift.

* The *store fingerprint* (:meth:`repro.graphs.rdf.TripleStore.fingerprint`)
  is monotone under mutation, so any write to a store silently
  invalidates every cached answer over it: the next identical query
  derives a different key and misses.  Stale entries are never served;
  they age out of the LRU.
* The *canonical text* absorbs formatting noise: whitespace-normalized
  query text for the SPARQL endpoints (the corpus dedup key), the
  structural AST key for RPQ expressions (rendered text is ambiguous in
  academic union-``+`` notation, the AST key is not).
* The *semantics* component separates walk / simple-path / trail
  answers for one expression, and the endpoint name separates the
  namespaces of unrelated operations.

The cache is a bounded LRU.  It stores only JSON-able result payloads
(never ASTs or live objects), so a cached response is byte-identical to
the engine response it memoizes.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Optional as Opt, Tuple

from ..core.hashing import text_key

#: default bound on resident entries
DEFAULT_MAX_ENTRIES = 4096


def result_key(
    endpoint: str,
    store_fingerprint: str,
    canonical_text: str,
    semantics: str,
) -> str:
    """The content address of one serving-layer answer."""
    payload = json.dumps(
        [endpoint, store_fingerprint, canonical_text, semantics],
        ensure_ascii=False,
        separators=(",", ":"),
    )
    return text_key(payload)


class ResultCache:
    """Bounded LRU over content-addressed result payloads."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0 (0 disables caching)")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, payload)`` — the payload may legitimately be falsy,
        which is why the hit flag exists (same contract as the log
        cache)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True, self._entries[key]
        self.misses += 1
        return False, None

    def put(self, key: str, payload: Any) -> None:
        if not self.max_entries:
            return  # caching disabled: every lookup stays a miss
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = payload
            return
        self._entries[key] = payload
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
        }
