"""The serving layer: dispatch core, embedded service, and TCP server.

:class:`ServiceCore` owns everything a deployment needs — the store
registry, the admission-controlled :class:`~.scheduler.Scheduler`, the
content-addressed :class:`~.resultcache.ResultCache`, and the
:class:`~.metrics.ServiceMetrics` registry — and exposes exactly one
entry point, :meth:`ServiceCore.handle`, mapping a request dict to a
response dict.  :class:`ReproServer` frames that entry point over an
asyncio TCP socket (length-prefixed JSON, concurrent per-connection
requests); :class:`EmbeddedService` mounts the same core in-process
with the same caller API as the network client, so every test and
differential oracle exercises the identical dispatch, scheduling, and
caching code paths with no socket in between.

Operations
----------

* ``rpq`` — regular-path-query evaluation over a registered store via
  the compiled engine (walk semantics all-pairs or filtered; simple /
  trail existence between two nodes);
* ``sparql`` — parse + structural analysis of one SPARQL query
  (canonical text via :func:`~repro.sparql.serialize.serialize_query`,
  features, operator set, triple count);
* ``query`` — *full evaluation* of one SPARQL query against a
  registered store (SELECT rows, ASK boolean, CONSTRUCT/DESCRIBE
  triples).  On a sharded store the evaluator's pattern accesses run
  through the :class:`~repro.service.shard.ShardPatternExecutor`:
  concrete-predicate patterns read their owner shard's image directly
  (``ShardManifest.owners()`` routing) instead of gathering a union
  store;
* ``log`` — the full per-query log-battery record
  (:func:`~repro.logs.battery.analyze_query_fused`, shipped in its
  JSON-able :func:`~repro.logs.analyzer.encode_analysis` form — the
  same record the persistent log cache stores);
* ``battery`` — a whole list of raw query texts through the log
  battery, deduplicated first and merged into one corpus-level
  :class:`~repro.logs.analyzer.LogReport` (shipped via
  :func:`~repro.logs.analyzer.encode_report`); on a sharded store the
  chunks scatter over the shard worker processes and the counter
  partials merge via :func:`~repro.logs.analyzer.combine_reports`;
* ``validate`` — stream-validate an XML/JSON document (or an explicit
  event list) against a DTD / EDTD / BonXai schema shipped as textual
  rules.  The schema compiles once into a
  :class:`~repro.trees.automata.TreeAutomaton` (LRU-cached by schema
  fingerprint) and runs in a single constant-memory pass; results are
  cached by (schema fingerprint, document digest).  Store-less, so it
  serves identically on embedded and sharded deployments;
* ``mutate`` — add triples to a registered store (admitted through the
  scheduler like any other work; a per-store read-write gate excludes
  it from running concurrently with engine reads);
* ``stats`` — metrics snapshot, cache/scheduler accounting, per-store
  fingerprints;
* ``ping`` — liveness.

Only version-2 typed messages are accepted (see
:mod:`repro.service.protocol`); a version-less pre-typed (v1) request —
whose deprecation window has closed — is rejected with a typed
``bad_request`` carrying an upgrade hint and counted in
``metrics.legacy_requests``.  Every response is stamped with the wire
version.

Sharded deployments
-------------------

A store registered as a *shard directory* (or ``manifest.json`` path —
see :func:`repro.service.shard.shard_store`) mounts as a
:class:`~repro.service.shard.ShardGroup`: N worker processes attach the
per-shard images zero-copy and run the engines locally, the core
scatter-gathers multi-shard evaluation on its scheduler threads, and
single-shard-routable requests go to their owner worker directly.  The
admission-control / deadline / single-flight machinery is identical for
sharded and local stores, and because the manifest records the *source*
store's content fingerprint, so are the result-cache keys.

Caching and consistency
-----------------------

Compute results are cached under ``(endpoint, store fingerprint,
canonical text, semantics)``.  The store fingerprint is a persistent
*content* digest (order-independent, identical across processes — see
:meth:`~repro.graphs.rdf.TripleStore.fingerprint`): a mutation
invalidates by *changing the key* of every later identical request, so
entries computed against superseded data can never be addressed again
and age out of the LRU — and because the fingerprint is derived from
content rather than a session counter, a service restarted over the
same data (in particular, over a memory-mapped store image) addresses
exactly the keys its predecessor populated.  Store reads run under a
readers-writer gate (readers concurrent, mutations exclusive), so an
engine execution never observes a half-applied mutation.  Responses
always carry the request id and — for compute operations —
``served_from: cache | engine``.

Stores may be registered as live :class:`~repro.graphs.rdf.TripleStore`
objects or as *paths to frozen images* (see
:mod:`repro.store.mmapstore`), which are opened memory-mapped:
instant startup, pages shared with any other process serving the same
image, and ``mutate`` against them failing with the typed
``store_frozen`` error.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional as Opt, Tuple, Union

from ..errors import (
    BadRequest,
    DeadlineExceeded,
    DTDParseError,
    JSONParseError,
    RegexParseError,
    SchemaError,
    ServiceError,
    ServiceOverloaded,
    SPARQLParseError,
    StoreFrozenError,
    StoreImageError,
    StoreUnavailableError,
    UnsupportedFeatureError,
    XMLParseError,
)
from ..graphs.engine import ast_key
from ..graphs.paths import evaluate_rpq, exists_simple_path, exists_trail
from ..graphs.rdf import TripleStore
from ..logs.analyzer import encode_analysis, encode_report
from ..logs.battery import analyze_query_fused
from ..logs.cache import battery_fingerprint
from ..logs.corpus import normalize_text
from ..logs.pipeline import run_study
from ..regex.parser import parse as parse_regex
from ..sparql.features import (
    count_triple_patterns,
    operator_set,
    query_features,
)
from ..sparql.evaluation import Evaluator, _as_node
from ..sparql.parser import parse_query
from ..sparql.serialize import serialize_query
from .client import RequestAPI, connect
from .metrics import ServiceMetrics
from .protocol import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    Request,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
)
from .resultcache import DEFAULT_MAX_ENTRIES, ResultCache, result_key
from .scheduler import DEFAULT_MAX_QUEUE, DEFAULT_MAX_WORKERS, Scheduler
from .shard import MANIFEST_NAME, ShardGroup

#: operations that go through cache + scheduler
COMPUTE_OPS = ("rpq", "sparql", "query", "log", "battery", "validate")

#: what may be registered as a store: a live store, an already-mounted
#: shard group, a path to a frozen image, or a path to a shard
#: directory / manifest (mounted as a :class:`ShardGroup`)
StoreSpec = Union[TripleStore, ShardGroup, str, Path]


def _resolve_store(
    spec: StoreSpec, replicas: int = 1
) -> Union[TripleStore, ShardGroup]:
    if isinstance(spec, TripleStore):
        return spec
    if isinstance(spec, ShardGroup):
        return spec
    if isinstance(spec, (str, Path)):
        path = Path(spec)
        if path.is_dir() or path.name == MANIFEST_NAME:
            return ShardGroup(path, replicas=replicas)
        from ..store.mmapstore import MappedTripleStore

        try:
            return MappedTripleStore.load(path)
        except FileNotFoundError:
            raise StoreUnavailableError(f"no store image at {path}")
        except (StoreImageError, OSError, ValueError) as exc:
            raise StoreUnavailableError(
                f"cannot open store image {path}: {exc}"
            )
    raise BadRequest(
        f"a store must be a TripleStore, a ShardGroup, or a path to an "
        f"image or shard directory, not {type(spec).__name__}"
    )

#: version folded into the sparql endpoint's cache fingerprint; bump
#: when the endpoint's result payload changes shape
SPARQL_RESULT_VERSION = "sparql-1"

#: same role for the query (full SPARQL evaluation) endpoint
QUERY_RESULT_VERSION = "query-1"

#: same role for the validate (streaming tree-schema validation)
#: endpoint; also folded into the compiled-automaton LRU key
VALIDATE_RESULT_VERSION = "validate-1"

#: compiled NFTA cache bound (schemas are tiny next to results, but the
#: compile is the expensive step worth reusing across documents)
VALIDATE_AUTOMATA_CACHE = 64

_SEMANTICS = ("walk", "simple", "trail")


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    max_workers: int = DEFAULT_MAX_WORKERS
    max_queue: int = DEFAULT_MAX_QUEUE
    #: result-cache LRU bound; 0 disables caching entirely
    cache_entries: int = DEFAULT_MAX_ENTRIES
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: applied when a request carries no ``deadline_ms`` (None: no limit)
    default_deadline_ms: Opt[float] = None
    #: worker-process attachments per shard of a sharded store (>1
    #: gives each shard hot replicas for failover)
    shard_replicas: int = 1
    #: seconds between background shard health checks (ping + respawn
    #: of dead workers) run by :class:`ReproServer`; None disables them
    health_check_interval: Opt[float] = None


class _StoreGate:
    """A readers-writer gate over one store, acquired *inside* worker
    threads (both engine reads and mutations execute on the pool, so
    threading primitives are the right tool and the event loop never
    blocks on it).  Readers are concurrent; a mutation waits for
    in-flight readers to drain and excludes new ones while it runs.
    Writers are not prioritized — acceptable at this scale, and starving
    writers is impossible once admission control bounds the read queue.
    """

    __slots__ = ("_cond", "_readers", "_writing")

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    def read(self, fn):
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            return fn()
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    def write(self, fn):
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            return fn()
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class ServiceCore:
    """Dispatch, scheduling, caching, and metrics for one deployment."""

    def __init__(
        self,
        stores: Opt[Dict[str, StoreSpec]] = None,
        config: Opt[ServiceConfig] = None,
        executor=None,
    ):
        self.config = config or ServiceConfig()
        self.stores: Dict[str, Union[TripleStore, ShardGroup]] = {
            name: _resolve_store(spec, self.config.shard_replicas)
            for name, spec in (stores or {}).items()
        }
        self._gates: Dict[str, _StoreGate] = {
            name: _StoreGate() for name in self.stores
        }
        self.scheduler = Scheduler(
            max_workers=self.config.max_workers,
            max_queue=self.config.max_queue,
            executor=executor,
        )
        self.cache = ResultCache(self.config.cache_entries)
        self.metrics = ServiceMetrics()
        #: schema fingerprint -> compiled TreeAutomaton (LRU)
        self._automata: "OrderedDict[str, Any]" = OrderedDict()
        for store in self.stores.values():
            if isinstance(store, ShardGroup):
                store.service_metrics = self.metrics

    def add_store(self, name: str, store: StoreSpec) -> None:
        """Register a live store, a frozen-image path, or a shard
        directory under ``name``."""
        resolved = _resolve_store(store, self.config.shard_replicas)
        if isinstance(resolved, ShardGroup):
            resolved.service_metrics = self.metrics
        self.stores[name] = resolved
        self._gates[name] = _StoreGate()

    @property
    def shard_groups(self) -> Dict[str, ShardGroup]:
        """The sharded stores of the registry (possibly empty)."""
        return {
            name: store
            for name, store in self.stores.items()
            if isinstance(store, ShardGroup)
        }

    def close(self) -> None:
        self.scheduler.close()
        for group in self.shard_groups.values():
            group.close()

    # -- request entry point ----------------------------------------------------

    async def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request dict in, one response dict out.  Never raises:
        every failure becomes a typed error response.

        Only the typed v2 encoding is accepted (strictly parsed through
        :class:`~repro.service.protocol.Request` — unknown parameters
        are rejected); a version-less v1 request is rejected with an
        upgrade hint and counted in ``metrics.legacy_requests``.  Every
        response carries the wire version stamp."""
        started = time.monotonic()
        request_id = message.get("id")
        if request_id is not None and not isinstance(request_id, str):
            request_id = str(request_id)

        def finish(response: Dict[str, Any]) -> Dict[str, Any]:
            response["v"] = WIRE_VERSION
            return response

        if "v" not in message:
            self.metrics.legacy_requests += 1
            self.metrics.record("?", started, "error", BadRequest.code)
            return finish(
                error_response(
                    request_id,
                    BadRequest.code,
                    "the version-less (v1) wire encoding is no longer "
                    f'accepted; send typed v2 requests with "v": '
                    f"{WIRE_VERSION} — see repro.service.protocol or use "
                    "the repro.service.client.RequestAPI wrappers",
                )
            )
        if message.get("v") != WIRE_VERSION:
            self.metrics.record("?", started, "error", BadRequest.code)
            return finish(
                error_response(
                    request_id,
                    BadRequest.code,
                    f"unsupported wire version {message.get('v')!r} "
                    f"(this server speaks {WIRE_VERSION})",
                )
            )
        op = message.get("op")
        if not isinstance(op, str) or not op:
            self.metrics.record("?", started, "error", BadRequest.code)
            return finish(
                error_response(
                    request_id, BadRequest.code, "request has no 'op' string"
                )
            )
        try:
            params = Request.parse(message).params()
            deadline = self._deadline_of(message)
            if op == "ping":
                response = ok_response(request_id, {"pong": True})
            elif op == "stats":
                response = ok_response(request_id, self._stats_payload())
            elif op == "mutate":
                response = ok_response(
                    request_id, await self._mutate(params, deadline)
                )
            elif op in COMPUTE_OPS:
                result, served_from = await self._compute(
                    op, params, deadline
                )
                response = ok_response(request_id, result, served_from)
            else:
                raise BadRequest(f"unknown operation {op!r}")
        except ServiceOverloaded as exc:
            self.metrics.record(op, started, "shed", exc.code)
            return finish(error_response(request_id, exc.code, str(exc)))
        except DeadlineExceeded as exc:
            self.metrics.record(op, started, "timeout", exc.code)
            return finish(error_response(request_id, exc.code, str(exc)))
        except ServiceError as exc:
            self.metrics.record(op, started, "error", exc.code)
            return finish(error_response(request_id, exc.code, str(exc)))
        except Exception as exc:  # engine bug: report, don't drop the link
            self.metrics.record(op, started, "error", "internal")
            return finish(
                error_response(
                    request_id,
                    "internal",
                    f"{type(exc).__name__}: {exc}",
                )
            )
        self.metrics.record(op, started, "ok")
        return finish(response)

    def _deadline_of(self, message: Dict[str, Any]) -> Opt[float]:
        deadline_ms = message.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        if deadline_ms is None:
            return None
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise BadRequest("'deadline_ms' must be a positive number")
        return asyncio.get_running_loop().time() + deadline_ms / 1000.0

    # -- compute operations -----------------------------------------------------

    async def _compute(
        self, op: str, params: Dict[str, Any], deadline: Opt[float]
    ) -> Tuple[Any, str]:
        """Cache lookup -> single-flight scheduled execution -> cache
        fill.  Returns ``(result payload, served_from)``."""
        endpoint = self.metrics.endpoint(op)
        if op == "rpq":
            key, fn = self._prepare_rpq(params)
        elif op == "sparql":
            key, fn = self._prepare_sparql(params)
        elif op == "query":
            key, fn = self._prepare_query(params)
        elif op == "battery":
            key, fn = self._prepare_battery(params)
        elif op == "validate":
            key, fn = self._prepare_validate(params)
        else:
            key, fn = self._prepare_log(params)
        hit, payload = self.cache.get(key)
        if hit:
            endpoint.cache_hits += 1
            return payload, "cache"
        endpoint.cache_misses += 1
        # the cache fill rides on execution completion, not on this
        # request returning: a computation that outlives its caller's
        # deadline still pays off for the next asker
        payload, coalesced = await self.scheduler.run(
            key, fn, deadline, on_result=lambda p: self.cache.put(key, p)
        )
        if coalesced:
            endpoint.coalesced += 1
        return payload, "engine"

    def _store_of(self, params: Dict[str, Any]) -> Tuple[str, TripleStore]:
        name = params.get("store")
        if not isinstance(name, str):
            raise BadRequest("'store' must name a registered store")
        store = self.stores.get(name)
        if store is None:
            raise BadRequest(
                f"unknown store {name!r} "
                f"(registered: {sorted(self.stores) or 'none'})"
            )
        return name, store

    @staticmethod
    def _string_list(params: Dict[str, Any], field: str) -> Opt[List[str]]:
        value = params.get(field)
        if value is None:
            return None
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise BadRequest(f"'{field}' must be a list of strings")
        return value

    def _prepare_rpq(self, params: Dict[str, Any]):
        name, store = self._store_of(params)
        expr_text = params.get("expr")
        if not isinstance(expr_text, str):
            raise BadRequest("'expr' must be an RPQ expression string")
        try:
            expr = parse_regex(expr_text, multi_char=True)
        except RegexParseError as exc:
            raise BadRequest(f"unparseable expression: {exc}")
        semantics = params.get("semantics", "walk")
        if semantics not in _SEMANTICS:
            raise BadRequest(
                f"'semantics' must be one of {', '.join(_SEMANTICS)}"
            )
        sharded = isinstance(store, ShardGroup)
        gate = self._gates[name]
        # the canonical form is the structural AST key — rendered text
        # is ambiguous under academic union-'+' notation — plus every
        # parameter the answer depends on
        if semantics == "walk":
            sources = self._string_list(params, "sources")
            targets = self._string_list(params, "targets")
            canonical = json.dumps(
                [
                    repr(ast_key(expr)),
                    sorted(set(sources)) if sources is not None else None,
                    sorted(set(targets)) if targets is not None else None,
                ],
                ensure_ascii=False,
            )

            def fn() -> Dict[str, Any]:
                if sharded:
                    pairs = store.evaluate_walk(expr_text, sources, targets)
                else:
                    pairs = gate.read(
                        lambda: evaluate_rpq(store, expr, sources, targets)
                    )
                return {
                    "semantics": "walk",
                    "pairs": sorted(list(pair) for pair in pairs),
                    "count": len(pairs),
                }

        else:
            source, target = params.get("source"), params.get("target")
            if not isinstance(source, str) or not isinstance(target, str):
                raise BadRequest(
                    f"{semantics} semantics needs 'source' and 'target' "
                    f"strings"
                )
            decide = (
                exists_simple_path
                if semantics == "simple"
                else exists_trail
            )
            canonical = json.dumps(
                [repr(ast_key(expr)), source, target], ensure_ascii=False
            )

            def fn() -> Dict[str, Any]:
                if sharded:
                    exists = store.exists(expr_text, source, target, semantics)
                else:
                    exists = gate.read(
                        lambda: decide(store, expr, source, target)
                    )
                return {"semantics": semantics, "exists": bool(exists)}

        # a ShardGroup's fingerprint is the *source* store's content
        # digest, so sharded and single-process deployments over the
        # same data share cache keys
        key = result_key("rpq", store.fingerprint(), canonical, semantics)
        return key, fn

    @staticmethod
    def _query_text(params: Dict[str, Any]) -> str:
        text = params.get("query")
        if not isinstance(text, str):
            raise BadRequest("'query' must be a SPARQL string")
        return text

    def _prepare_sparql(self, params: Dict[str, Any]):
        text = self._query_text(params)
        key = result_key(
            "sparql", SPARQL_RESULT_VERSION, normalize_text(text), "sparql"
        )

        def fn() -> Dict[str, Any]:
            try:
                query = parse_query(text)
            except (SPARQLParseError, RecursionError) as exc:
                return {"valid": False, "reason": str(exc)}
            return {
                "valid": True,
                "canonical": serialize_query(query),
                "query_type": query.query_type,
                "triples": count_triple_patterns(query),
                "features": sorted(query_features(query)),
                "operators": sorted(operator_set(query)),
            }

        return key, fn

    def _schema_automaton(self, kind: str, rules, start, mu, fingerprint: str):
        """Compile (or fetch from the LRU) the NFTA for a wire schema.
        A broken schema is the *requester's* fault -> ``BadRequest``."""
        from ..trees.automata import TreeAutomaton, compile_schema
        from ..trees.bonxai import PatternSchema
        from ..trees.dtd import DTD
        from ..trees.edtd import EDTD

        cached = self._automata.get(fingerprint)
        if cached is not None:
            self._automata.move_to_end(fingerprint)
            return cached
        try:
            if kind == "dtd":
                automaton = TreeAutomaton.from_dtd(
                    DTD.from_rules(rules, start=start or [])
                )
            elif kind == "edtd":
                automaton = TreeAutomaton.from_edtd(
                    EDTD.from_rules(rules, start=start or [], mu=mu)
                )
            else:
                automaton = compile_schema(PatternSchema.from_rules(rules))
        except (DTDParseError, RegexParseError, SchemaError, ValueError) as exc:
            raise BadRequest(f"invalid {kind} schema: {exc}")
        self._automata[fingerprint] = automaton
        while len(self._automata) > VALIDATE_AUTOMATA_CACHE:
            self._automata.popitem(last=False)
        return automaton

    def _prepare_validate(self, params: Dict[str, Any]):
        """Streaming tree-schema validation.  Store-less (works the same
        on embedded and sharded deployments); cached by
        (schema fingerprint, document digest)."""
        from ..core.hashing import text_key
        from ..trees.automata import StreamingTreeValidator
        from ..trees.streaming import events_of

        kind = params.get("schema_kind", "dtd")
        if kind not in ("dtd", "edtd", "bonxai"):
            raise BadRequest(f"unknown schema kind {kind!r}")
        rules = params.get("rules")
        if not isinstance(rules, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in rules.items()
        ):
            raise BadRequest("'rules' must map labels to content-model strings")
        start = params.get("start")
        if start is not None and not (
            isinstance(start, list) and all(isinstance(s, str) for s in start)
        ):
            raise BadRequest("'start' must be a list of labels")
        mu = params.get("mu")
        if mu is not None and not (
            isinstance(mu, dict)
            and all(
                isinstance(k, str) and isinstance(v, str) for k, v in mu.items()
            )
        ):
            raise BadRequest("'mu' must map types to labels")
        document = params.get("document")
        events = params.get("events")
        fmt = params.get("format", "xml")
        if fmt not in ("xml", "json"):
            raise BadRequest(f"unknown document format {fmt!r}")
        if (document is None) == (events is None):
            raise BadRequest("exactly one of 'document' and 'events' is required")
        if document is not None and not isinstance(document, str):
            raise BadRequest("'document' must be a string")
        if events is not None and not isinstance(events, list):
            raise BadRequest("'events' must be a list of [kind, payload] pairs")

        schema_fingerprint = text_key(
            json.dumps(
                [
                    VALIDATE_RESULT_VERSION,
                    kind,
                    sorted(rules.items()),
                    sorted(start or []),
                    sorted((mu or {}).items()),
                ],
                ensure_ascii=False,
                separators=(",", ":"),
            )
        )
        document_digest = text_key(
            json.dumps(
                [fmt, document] if document is not None else ["events", events],
                ensure_ascii=False,
                separators=(",", ":"),
            )
        )
        key = result_key("validate", schema_fingerprint, document_digest, "validate")
        automaton = self._schema_automaton(kind, rules, start, mu, schema_fingerprint)

        def fn() -> Dict[str, Any]:
            validator = StreamingTreeValidator(automaton)
            payload: Dict[str, Any] = {"states": automaton.state_count()}
            try:
                stream = (
                    iter(events)
                    if events is not None
                    else events_of(document, format=fmt)
                )
                for event in stream:
                    if not validator.feed(event):
                        break
            except (XMLParseError, JSONParseError) as exc:
                # an unparseable document is a verdict, not a fault
                payload.update(valid=False, reason=str(exc))
                payload["stack_depth"] = validator.max_stack_depth
                return payload
            valid = validator.finish()
            payload["valid"] = valid
            payload["stack_depth"] = validator.max_stack_depth
            if not valid:
                payload["reason"] = (
                    validator.failure
                    or "stream ended before the document closed"
                )
            return payload

        return key, fn

    def _prepare_query(self, params: Dict[str, Any]):
        """Full SPARQL evaluation against a registered store.  Sharded
        stores evaluate through the group's owners()-routed
        :class:`~repro.service.shard.ShardPatternExecutor`; local stores
        evaluate under the store's read gate.  SELECT rows are shipped
        in canonical (sorted-JSON) order *after* solution modifiers, so
        the payload is deterministic and cache keys are deployment-
        independent."""
        name, store = self._store_of(params)
        text = self._query_text(params)
        sharded = isinstance(store, ShardGroup)
        gate = self._gates[name]
        key = result_key(
            "query",
            store.fingerprint(),
            json.dumps(
                [QUERY_RESULT_VERSION, normalize_text(text)],
                ensure_ascii=False,
            ),
            "query",
        )

        def fn() -> Dict[str, Any]:
            try:
                query = parse_query(text)
            except (SPARQLParseError, RecursionError) as exc:
                return {"valid": False, "reason": str(exc)}

            def run():
                if sharded:
                    evaluator = Evaluator(None, executor=store.executor())
                else:
                    evaluator = Evaluator(store)
                return evaluator.evaluate(query)

            try:
                result = run() if sharded else gate.read(run)
            except UnsupportedFeatureError as exc:
                return {"valid": False, "reason": str(exc)}
            if query.query_type == "SELECT":
                rows = [
                    {
                        var: _as_node(value)
                        for var, value in solution.items()
                        if not var.startswith("_bnode_")
                    }
                    for solution in result
                ]
                rows.sort(
                    key=lambda row: json.dumps(
                        row, sort_keys=True, ensure_ascii=False
                    )
                )
                return {
                    "valid": True,
                    "kind": "select",
                    "rows": rows,
                    "count": len(rows),
                }
            if query.query_type == "ASK":
                return {
                    "valid": True,
                    "kind": "ask",
                    "boolean": bool(result),
                }
            return {
                "valid": True,
                "kind": "graph",
                "triples": sorted(list(triple) for triple in result.triples()),
            }

        return key, fn

    def _prepare_log(self, params: Dict[str, Any]):
        text = self._query_text(params)
        # the battery fingerprint versions the record exactly as the
        # persistent log cache does: a battery change invalidates here too
        key = result_key(
            "log", battery_fingerprint(), normalize_text(text), "battery"
        )

        def fn() -> Dict[str, Any]:
            try:
                query = parse_query(text)
            except (SPARQLParseError, RecursionError) as exc:
                return {"valid": False, "record": None, "reason": str(exc)}
            return {
                "valid": True,
                "record": encode_analysis(analyze_query_fused(query)),
            }

        return key, fn

    def _prepare_battery(self, params: Dict[str, Any]):
        queries = params.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(text, str) for text in queries
        ):
            raise BadRequest("'queries' must be a list of SPARQL strings")
        source = params.get("source", "service")
        if not isinstance(source, str):
            raise BadRequest("'source' must be a string")
        group: Opt[ShardGroup] = None
        store_name = params.get("store")
        if store_name is not None:
            _, store = self._store_of(params)
            if isinstance(store, ShardGroup):
                group = store
            # an unsharded store has no worker processes to scatter to:
            # the battery is store-free analysis, so compute locally
        key = result_key(
            "battery",
            battery_fingerprint(),
            json.dumps([source, queries], ensure_ascii=False),
            "battery",
        )

        def fn() -> Dict[str, Any]:
            if group is not None:
                report = group.battery(source, queries)
            else:
                report = run_study(source, queries)
            return {"report": encode_report(report)}

        return key, fn

    # -- mutation ---------------------------------------------------------------

    async def _mutate(
        self, params: Dict[str, Any], deadline: Opt[float]
    ) -> Dict[str, Any]:
        name, store = self._store_of(params)
        if isinstance(store, ShardGroup):
            raise StoreFrozenError(
                f"store {name!r} is a sharded deployment of frozen "
                f"images; re-shard to mutate"
            )
        triples = params.get("triples")
        if not isinstance(triples, list):
            raise BadRequest("'triples' must be a list of [s, p, o]")
        cleaned: List[Tuple[str, str, str]] = []
        for item in triples:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 3
                or not all(isinstance(part, str) for part in item)
            ):
                raise BadRequest(
                    f"not an [s, p, o] string triple: {item!r}"
                )
            cleaned.append((item[0], item[1], item[2]))
        gate = self._gates[name]

        def fn() -> Dict[str, Any]:
            def apply() -> int:
                return sum(store.add(s, p, o) for s, p, o in cleaned)

            added = gate.write(apply)
            return {
                "added": added,
                "size": len(store),
                "fingerprint": store.fingerprint(),
            }

        # no single-flight key: mutations are never deduplicated
        result, _ = await self.scheduler.run(None, fn, deadline)
        return result

    # -- stats ------------------------------------------------------------------

    def _stats_payload(self) -> Dict[str, Any]:
        payload = {
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.stats(),
            "scheduler": self.scheduler.stats(),
            "stores": {
                name: {
                    "triples": len(store),
                    "fingerprint": store.fingerprint(),
                    "frozen": hasattr(store, "path")
                    or isinstance(store, ShardGroup),
                    "sharded": isinstance(store, ShardGroup),
                }
                for name, store in sorted(self.stores.items())
            },
        }
        groups = self.shard_groups
        if groups:
            payload["shards"] = {
                name: group.stats() for name, group in sorted(groups.items())
            }
        return payload


class EmbeddedService(RequestAPI):
    """The serving layer mounted in-process: the same
    :class:`ServiceCore` the TCP server fronts, behind the same caller
    API as :class:`~repro.service.client.ServiceClient` — requests go
    through identical dispatch, admission control, single-flight, and
    caching, just without a socket.  The instance belongs to the event
    loop it is first used on."""

    def __init__(
        self,
        stores: Opt[Dict[str, StoreSpec]] = None,
        config: Opt[ServiceConfig] = None,
        executor=None,
    ):
        self.core = ServiceCore(stores, config, executor)
        self._ids = itertools.count(1)

    async def request_message(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        if message.get("id") is None:
            message = {**message, "id": f"e{next(self._ids)}"}
        return await self.core.handle(message)

    async def close(self) -> None:
        self.core.close()

    async def __aenter__(self) -> "EmbeddedService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class ReproServer:
    """The asyncio TCP front-end.

    One server wraps one :class:`ServiceCore`.  Each connection reads
    length-prefixed frames and handles every request as its own task —
    responses go back as each finishes (out of order; the id is the
    correlation key) under a per-connection write lock.  A client that
    disconnects mid-request costs nothing but the already-admitted
    work: the handler task finishes, its result still lands in the
    result cache, and the unsendable response is counted, not raised.
    """

    def __init__(
        self,
        stores: Opt[Dict[str, StoreSpec]] = None,
        config: Opt[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        core: Opt[ServiceCore] = None,
    ):
        self.core = core or ServiceCore(stores, config)
        self.host = host
        self.port = port
        self._server: Opt[asyncio.base_events.Server] = None
        self._health_task: Opt[asyncio.Task] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound (host, port) — useful with ``port=0``."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self.address[1]
        interval = self.core.config.health_check_interval
        if interval and self.core.shard_groups:
            self._health_task = asyncio.ensure_future(
                self._health_loop(interval)
            )
        return self

    async def _health_loop(self, interval: float) -> None:
        """Periodic shard lifecycle management: ping every worker
        attachment and respawn dead ones, off-loop so a hung worker
        never stalls serving."""
        while True:
            await asyncio.sleep(interval)
            for group in self.core.shard_groups.values():
                try:
                    await asyncio.to_thread(group.check_health)
                except Exception:
                    # health checking is best-effort; the per-request
                    # failover path still covers whatever it missed
                    continue

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except (asyncio.CancelledError, Exception):
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.core.close()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.core.metrics.connections += 1
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def respond(message: Dict[str, Any]) -> None:
            response = await self.core.handle(message)
            try:
                async with write_lock:
                    writer.write(encode_frame(response))
                    await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                # peer left before its answer; the work is done and
                # cached, only the delivery failed
                self.core.metrics.disconnects += 1

        try:
            while True:
                try:
                    message = await read_frame(
                        reader, self.core.config.max_frame_bytes
                    )
                except ServiceError:
                    self.core.metrics.protocol_errors += 1
                    break
                except ConnectionError:
                    self.core.metrics.protocol_errors += 1
                    break
                if message is None:
                    break
                task = asyncio.ensure_future(respond(message))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                # the peer left while requests were still in flight:
                # finish the admitted work anyway (its results populate
                # the cache) and count the unread answers
                self.core.metrics.disconnects += 1
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            # close without awaiting the transport: the handler task may
            # itself be cancelled at loop teardown, and the transport
            # cleans up on its own
            writer.close()


async def serve(
    stores: Opt[Dict[str, StoreSpec]] = None,
    config: Opt[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ReproServer:
    """Start a server and return it (mostly for the CLI and benchmarks)."""
    return await ReproServer(stores, config, host, port).start()


#: what :func:`open_service` accepts: a store registry (embedded), a
#: ``"host:port"`` string, or a ``(host, port)`` pair (TCP)
ServiceTarget = Union[Dict[str, StoreSpec], str, Tuple[str, int]]


async def open_service(
    target: ServiceTarget,
    *,
    config: Opt[ServiceConfig] = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> RequestAPI:
    """One construction path for every deployment shape.

    * a dict of stores/images/shard directories mounts an
      :class:`EmbeddedService` (``config`` tunes it);
    * a ``"host:port"`` string or ``(host, port)`` tuple connects a
      :class:`~repro.service.client.ServiceClient` over TCP
      (``max_frame_bytes`` bounds its frames; ``config`` does not apply
      — the server owns its own).

    Both results implement :class:`~repro.service.client.RequestAPI`,
    so calling code is deployment-agnostic.  ``EmbeddedService(...)``
    and ``connect(...)`` remain as thin entry points over the same two
    shapes.
    """
    if isinstance(target, dict):
        return EmbeddedService(target, config)
    if isinstance(target, str):
        host, separator, port_text = target.rpartition(":")
        if not separator or not host or not port_text.isdigit():
            raise ValueError(
                f"a TCP target must look like 'host:port', got {target!r}"
            )
        return await connect(host, int(port_text), max_frame_bytes)
    if isinstance(target, tuple) and len(target) == 2:
        host, port = target
        return await connect(host, int(port), max_frame_bytes)
    raise TypeError(
        f"open_service expects a store dict, 'host:port', or (host, port), "
        f"not {type(target).__name__}"
    )
