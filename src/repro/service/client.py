"""The asyncio client and the caller API shared with the embedded service.

:class:`RequestAPI` is the surface every caller programs against —
typed requests through :meth:`~RequestAPI.send`, convenience wrappers
per operation, and the legacy ``request``/``call`` dict entry points —
implemented over a single abstract :meth:`~RequestAPI.request_message`
(one raw message dict in, one response envelope out).
:class:`ServiceClient` implements that primitive over a TCP connection;
:class:`~repro.service.server.EmbeddedService` implements it over an
in-process core.  Code written against the API runs unchanged on
either, which is what the differential oracles and the degradation
tests rely on.

The convenience wrappers construct typed v2 requests (see
:mod:`repro.service.protocol`), so ordinary callers are on the current
wire encoding without thinking about it; ``request(op, params)`` now
stamps the v2 version on its loose dicts too — the version-less (v1)
encoding is rejected by current servers.

The client multiplexes: requests are written as they are made, a
single reader task dispatches responses to per-id futures, so any
number of requests can be in flight on one connection and responses
may return in any order.  Server-side failures are re-raised under
their original :class:`~repro.errors.ServiceError` types.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional as Opt, Sequence, Tuple

from ..errors import ServiceError
from .protocol import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    BatteryRequest,
    LogBatteryRequest,
    MutateRequest,
    PingRequest,
    QueryRequest,
    Request,
    RpqRequest,
    SparqlRequest,
    StatsRequest,
    ValidateRequest,
    encode_frame,
    error_from_response,
    parse_response,
    read_frame,
)


class RequestAPI:
    """The operation surface of the service, over one abstract
    :meth:`request_message`."""

    async def request_message(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Send one raw message dict; return the full response
        envelope.  Implementations assign a correlation id when the
        message carries none."""
        raise NotImplementedError

    async def send(self, request: Request):
        """Send one typed request; return the typed response
        (:class:`~repro.service.protocol.Response` subclass on success,
        :class:`~repro.service.protocol.ErrorResponse` on failure)."""
        envelope = await self.request_message(request.to_wire())
        return parse_response(request.op, envelope)

    async def request(
        self,
        op: str,
        params: Opt[Dict[str, Any]] = None,
        *,
        deadline_ms: Opt[float] = None,
    ) -> Dict[str, Any]:
        """Send one loose-dict request (stamped with the current wire
        version — servers reject version-less v1 frames); return the
        full response envelope.  New code should construct typed
        requests and :meth:`send` them (the convenience wrappers below
        already do)."""
        message: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "op": op,
            "params": params or {},
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self.request_message(message)

    async def call(
        self,
        op: str,
        params: Opt[Dict[str, Any]] = None,
        *,
        deadline_ms: Opt[float] = None,
    ) -> Any:
        """Send one request; return its result payload, raising the
        typed :class:`~repro.errors.ServiceError` on failure."""
        response = await self.request(op, params, deadline_ms=deadline_ms)
        if not response.get("ok"):
            raise error_from_response(response)
        return response["result"]

    async def _result_of(self, request: Request) -> Any:
        """Typed-encoding send returning the raw result payload (what
        the wrappers have always returned), raising typed errors."""
        envelope = await self.request_message(request.to_wire())
        if not envelope.get("ok"):
            raise error_from_response(envelope)
        return envelope["result"]

    # -- typed wrappers ---------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self._result_of(PingRequest())

    async def stats(self) -> Dict[str, Any]:
        return await self._result_of(StatsRequest())

    async def rpq(
        self,
        store: str,
        expr: str,
        semantics: str = "walk",
        *,
        source: Opt[str] = None,
        target: Opt[str] = None,
        sources: Opt[Sequence[str]] = None,
        targets: Opt[Sequence[str]] = None,
        deadline_ms: Opt[float] = None,
    ) -> Dict[str, Any]:
        return await self._result_of(
            RpqRequest(
                store=store,
                expr=expr,
                semantics=semantics,
                source=source,
                target=target,
                sources=list(sources) if sources is not None else None,
                targets=list(targets) if targets is not None else None,
                deadline_ms=deadline_ms,
            )
        )

    async def sparql(
        self, query: str, *, deadline_ms: Opt[float] = None
    ) -> Dict[str, Any]:
        return await self._result_of(
            SparqlRequest(query=query, deadline_ms=deadline_ms)
        )

    async def query(
        self, store: str, query: str, *, deadline_ms: Opt[float] = None
    ) -> Dict[str, Any]:
        """Full SPARQL evaluation against a registered store (owners()-
        routed on sharded stores)."""
        return await self._result_of(
            QueryRequest(store=store, query=query, deadline_ms=deadline_ms)
        )

    async def log_battery(
        self, query: str, *, deadline_ms: Opt[float] = None
    ) -> Dict[str, Any]:
        return await self._result_of(
            LogBatteryRequest(query=query, deadline_ms=deadline_ms)
        )

    async def battery(
        self,
        queries: Sequence[str],
        *,
        source: str = "service",
        store: Opt[str] = None,
        deadline_ms: Opt[float] = None,
    ) -> Dict[str, Any]:
        return await self._result_of(
            BatteryRequest(
                queries=list(queries),
                source=source,
                store=store,
                deadline_ms=deadline_ms,
            )
        )

    async def validate(
        self,
        rules: Dict[str, str],
        *,
        schema_kind: str = "dtd",
        start: Opt[Sequence[str]] = None,
        mu: Opt[Dict[str, str]] = None,
        document: Opt[str] = None,
        format: str = "xml",
        events: Opt[Sequence[Sequence[str]]] = None,
        deadline_ms: Opt[float] = None,
    ) -> Dict[str, Any]:
        """Stream-validate one document (or event list) against a
        DTD/EDTD/BonXai schema shipped as textual rules."""
        return await self._result_of(
            ValidateRequest(
                schema_kind=schema_kind,
                rules=dict(rules),
                start=list(start) if start is not None else None,
                mu=dict(mu) if mu is not None else None,
                document=document,
                format=format,
                events=[list(e) for e in events] if events is not None else None,
                deadline_ms=deadline_ms,
            )
        )

    async def mutate(
        self,
        store: str,
        triples: Sequence[Tuple[str, str, str]],
        *,
        deadline_ms: Opt[float] = None,
    ) -> Dict[str, Any]:
        return await self._result_of(
            MutateRequest(
                store=store,
                triples=[list(t) for t in triples],
                deadline_ms=deadline_ms,
            )
        )


class ServiceClient(RequestAPI):
    """A multiplexing TCP client for one server connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        self._pending: Dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame_bytes)

    async def request_message(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionError("client is closed")
        request_id = message.get("id")
        if request_id is None:
            request_id = f"c{next(self._ids)}"
            message = {**message, "id": request_id}
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(encode_frame(message))
            await self._writer.drain()
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return await future

    async def _read_loop(self) -> None:
        failure: BaseException = ConnectionError(
            "connection closed by the server"
        )
        try:
            while True:
                response = await read_frame(
                    self._reader, self._max_frame_bytes
                )
                if response is None:
                    break
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ServiceError, ConnectionError, OSError) as exc:
            failure = exc
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    async def close(self) -> None:
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def connect(
    host: str, port: int, max_frame_bytes: int = MAX_FRAME_BYTES
) -> ServiceClient:
    """Open one client connection (module-level convenience)."""
    return await ServiceClient.connect(host, port, max_frame_bytes)
