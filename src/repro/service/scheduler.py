"""Admission control, deadlines, and single-flight deduplication.

The scheduler is the gate between the asyncio front-end and the
synchronous engines (RPQ evaluation, SPARQL parsing, the analysis
battery).  Engine work runs on a bounded thread pool; the event loop
only frames, routes, and accounts.  Three policies, in order:

* **Single-flight** — concurrent requests with the same content key
  collapse onto one engine execution: the first becomes the *leader*
  and runs, the rest become *followers* awaiting the leader's future.
  Followers bypass admission control entirely (they consume no queue
  slot and no worker), which is what makes a thundering herd of one
  hot query cost one execution.
* **Admission control** — at most ``max_queue`` leaders may wait for a
  worker slot; a leader arriving beyond that is shed immediately with
  a typed :class:`~repro.errors.ServiceOverloaded`.  Failing fast at
  admission beats queueing into timeout collapse: every accepted
  request still gets a correct answer.
* **Deadlines** — a request's deadline is enforced *around* worker
  execution: checked after the queue wait (a request that spent its
  budget queueing is failed before it wastes a worker) and awaited
  with a timeout during execution.  A timed-out request returns a
  structured :class:`~repro.errors.DeadlineExceeded` immediately, but
  the worker thread is never interrupted mid-computation — it runs to
  completion, releases its slot, resolves any followers, and its
  result still populates the result cache.  Cooperative overrun, not a
  poisoned pool.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional as Opt, Tuple

from ..errors import DeadlineExceeded, ServiceOverloaded

#: default worker-slot and queue bounds
DEFAULT_MAX_WORKERS = 4
DEFAULT_MAX_QUEUE = 64


class Scheduler:
    """The admission-controlled bridge onto a worker pool.

    One scheduler belongs to one event loop (its semaphore binds to the
    loop on first use).  ``executor`` may be an externally managed
    :class:`~concurrent.futures.Executor` shared across services; by
    default the scheduler owns a thread pool sized to ``max_workers``
    and shuts it down on :meth:`close`.
    """

    def __init__(
        self,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        executor: Opt[Executor] = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._slots = asyncio.Semaphore(max_workers)
        self._waiting = 0
        self._inflight: Dict[str, asyncio.Future] = {}
        self.executed = 0  #: engine executions actually started
        self.overruns = 0  #: executions that outlived their request

    # -- observability ----------------------------------------------------------

    @property
    def waiting(self) -> int:
        """Leaders currently waiting for a worker slot."""
        return self._waiting

    @property
    def inflight(self) -> int:
        """Distinct keys currently executing or queued."""
        return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        return {
            "max_workers": self.max_workers,
            "max_queue": self.max_queue,
            "waiting": self._waiting,
            "inflight": len(self._inflight),
            "executed": self.executed,
            "overruns": self.overruns,
        }

    # -- the scheduling core ----------------------------------------------------

    async def run(
        self,
        key: Opt[str],
        fn: Callable[[], Any],
        deadline: Opt[float] = None,
        on_result: Opt[Callable[[Any], None]] = None,
    ) -> Tuple[Any, bool]:
        """Execute ``fn`` on the pool under all three policies.

        ``key`` is the single-flight identity (``None`` disables
        deduplication for this call); ``deadline`` is an absolute
        ``loop.time()`` instant.  ``on_result`` runs on the event loop
        when the *execution* succeeds — even if this request already
        gave up on its deadline — which is how a timed-out computation
        still lands in the result cache.  Returns ``(result,
        coalesced)`` where ``coalesced`` is True when this call was a
        follower of an already-in-flight execution.  Raises ``fn``'s
        own exception, or :class:`ServiceOverloaded` /
        :class:`DeadlineExceeded`.
        """
        loop = asyncio.get_running_loop()
        if key is not None:
            existing = self._inflight.get(key)
            if existing is not None:
                return await self._await_deadline(existing, deadline), True

        future: asyncio.Future = loop.create_future()
        # a leader that times out abandons the future; swallow the
        # eventual exception so the loop never logs "never retrieved"
        future.add_done_callback(_retrieve_exception)
        if key is not None:
            self._inflight[key] = future

        try:
            # the queue bound applies only when every worker is busy:
            # max_queue=0 means "run if a slot is free, never wait"
            if self._slots.locked() and self._waiting >= self.max_queue:
                raise ServiceOverloaded(
                    f"admission queue full "
                    f"({self._waiting} waiting, bound {self.max_queue})"
                )
            self._waiting += 1
            try:
                await self._slots.acquire()
            finally:
                self._waiting -= 1
            if deadline is not None and loop.time() >= deadline:
                self._slots.release()
                raise DeadlineExceeded(
                    "deadline expired while queued for a worker"
                )
        except BaseException as exc:
            self._settle(key, future, exc)
            raise

        # slot held: hand the computation to the pool.  The slot is
        # released when the *thread* finishes — not when the awaiting
        # request gives up — so concurrency never exceeds max_workers.
        self.executed += 1
        task = loop.run_in_executor(self._executor, fn)
        task.add_done_callback(
            lambda done: self._finish(key, future, done, on_result)
        )
        try:
            return await self._await_deadline(future, deadline), False
        except DeadlineExceeded:
            self.overruns += 1
            raise

    async def _await_deadline(
        self, future: asyncio.Future, deadline: Opt[float]
    ) -> Any:
        """Await a shared future without cancelling it, bounded by the
        caller's deadline."""
        loop = asyncio.get_running_loop()
        if deadline is None:
            return await asyncio.shield(future)
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise DeadlineExceeded("deadline expired before execution")
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), remaining
            )
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"no result within the {remaining * 1000.0:.0f} ms budget"
            ) from None

    def _finish(
        self,
        key: Opt[str],
        future: asyncio.Future,
        done: asyncio.Future,
        on_result: Opt[Callable[[Any], None]] = None,
    ) -> None:
        """Thread completion (runs on the event loop): release the
        slot, run the completion hook, resolve the shared future,
        retire the single-flight entry."""
        self._slots.release()
        exc = done.exception()
        result = None if exc else done.result()
        if exc is None and on_result is not None:
            try:
                on_result(result)
            except BaseException as hook_exc:
                exc, result = hook_exc, None
        self._settle(key, future, exc, result)

    def _settle(
        self,
        key: Opt[str],
        future: asyncio.Future,
        exc: Opt[BaseException],
        result: Any = None,
    ) -> None:
        if key is not None and self._inflight.get(key) is future:
            del self._inflight[key]
        if future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)

    def close(self) -> None:
        """Shut down an owned pool without waiting for stragglers
        (overrunning threads finish on their own)."""
        if self._own_executor:
            self._executor.shutdown(wait=False)


def _retrieve_exception(future: asyncio.Future) -> None:
    if not future.cancelled():
        future.exception()
