"""The sharded store tier: partitioned images, worker processes, and
the scatter-gather coordinator.

One GIL bounds the single-process service however many threads it runs
— real parallelism needs processes, and PR 6's memory-mapped images
were built so processes could share triple data zero-copy.  This module
closes the loop:

* :func:`shard_store` partitions a :class:`~repro.graphs.rdf.TripleStore`
  **by predicate** over a consistent-hash ring (:class:`ShardRing`) into
  N frozen per-shard images plus a ``manifest.json``
  (:class:`ShardManifest`) recording the layout, the per-shard
  fingerprints, and — crucially — the *source store's* content
  fingerprint, so a sharded deployment addresses exactly the result-cache
  keys the single-process deployment over the same data would.
* :class:`ShardWorker` is one worker process (a single-slot
  :class:`~concurrent.futures.ProcessPoolExecutor`) attached to one
  shard image.  Workers attach via :func:`repro.store.mmapstore.attach`
  (per-process memoized), so each holds its shard's pages mapped once
  and keeps its own compiled-plan and specialization caches across
  requests.
* :class:`ShardGroup` is the coordinator: it routes whole queries to a
  single shard when every predicate of the expression lives there
  (consistent-hash routing, the fast path), and otherwise runs the RPQ
  product BFS as a **name-level frontier exchange** — each round the
  frontier ``(source token, node name, NFA state mask)`` entries are
  scattered to every owning shard, advanced one edge level against the
  shard-local adjacency (:meth:`~repro.graphs.engine.CompiledRPQ.frontier_step`),
  and the partial frontiers merged by the coordinator, which alone
  decides which state bits are new.  Log batteries scatter
  ``(key, text, multiplicity)`` chunks over the workers and merge the
  counter partials via :func:`~repro.logs.analyzer.combine_reports`.

Partitioning by predicate makes single-predicate reads (and any
expression whose alphabet maps to one shard) local to one worker, while
multi-predicate expressions degrade gracefully to the frontier
exchange.  Masks crossing the process boundary are always *NFA* masks:
Glushkov state numbering is canonical per expression, so masks produced
by independent worker processes compose; DFA state numbers are a
process-local artifact and never leave a worker.

Failure handling: every shard may have several *attachments*
(``replicas``).  A worker that dies mid-call surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool`; the coordinator
fails over to the next live attachment, respawns the broken one, and
only raises the typed :class:`~repro.errors.ShardError` when a shard
has no live attachment even after a respawn.  All coordinator methods
are blocking and run on the service scheduler's worker threads, so the
existing admission-control / deadline / single-flight machinery wraps
the scatter path unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from bisect import bisect_right
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional as Opt,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ShardError, StoreUnavailableError
from ..graphs.engine import compile_rpq
from ..graphs.rdf import TripleStore
from ..logs.analyzer import LogReport, combine_reports
from ..logs.corpus import normalize_text
from ..logs.pipeline import _study_worker
from ..regex.parser import parse as parse_regex

#: manifest format version (bump on incompatible layout changes)
MANIFEST_FORMAT = 1

#: manifest file name inside a shard directory
MANIFEST_NAME = "manifest.json"

#: virtual ring points per shard — enough that predicate load spreads
#: evenly for realistic predicate counts without making routing lookups
#: measurably slower
RING_POINTS = 64

#: battery scatter chunk bound (payload size only; fan-out is decided
#: by the worker count, same discipline as repro.core.parallelism)
BATTERY_CHUNK_SIZE = 256

#: union-store LRU entries kept per group for multi-shard simple/trail
#: decisions (keyed by the expression's predicate set; shard images are
#: frozen, so entries never go stale)
_UNION_CACHE_ENTRIES = 8


def _point(value: str) -> int:
    """A 64-bit hash position on the ring (sha256-based: stable across
    processes, runs, and machines — routing must never depend on
    ``PYTHONHASHSEED``)."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class ShardRing:
    """Consistent-hash ring mapping predicate names to shard indexes."""

    __slots__ = ("shards", "_points", "_owners")

    def __init__(self, shards: int, points: int = RING_POINTS):
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        self.shards = shards
        marks: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(points):
                marks.append((_point(f"shard:{shard}:{replica}"), shard))
        marks.sort()
        self._points = [mark for mark, _ in marks]
        self._owners = [shard for _, shard in marks]

    def shard_of(self, predicate: str) -> int:
        """The shard owning ``predicate`` (first ring mark clockwise)."""
        position = bisect_right(self._points, _point(predicate))
        if position == len(self._points):
            position = 0
        return self._owners[position]


@dataclass
class ShardManifest:
    """The on-disk description of one sharded layout."""

    directory: Path
    shards: int
    ring_points: int
    images: List[str]
    #: content fingerprint of the *source* store — the cache-key
    #: identity of the sharded deployment
    source_fingerprint: str
    total_triples: int
    shard_triples: List[int]
    shard_fingerprints: List[str]
    #: predicate name -> owning shard, for every predicate the source
    #: store actually contained (authoritative for routing; the ring is
    #: only consulted at write time)
    predicates: Dict[str, int] = field(default_factory=dict)

    def image_path(self, shard: int) -> Path:
        return self.directory / self.images[shard]

    def owners(self, predicates: Iterable[str]) -> List[int]:
        """The shards holding at least one of ``predicates`` (sorted;
        predicates the store never contained own nothing)."""
        return sorted(
            {
                self.predicates[predicate]
                for predicate in predicates
                if predicate in self.predicates
            }
        )

    def save(self) -> Path:
        path = self.directory / MANIFEST_NAME
        payload = {
            "format": MANIFEST_FORMAT,
            "shards": self.shards,
            "ring_points": self.ring_points,
            "images": self.images,
            "source_fingerprint": self.source_fingerprint,
            "total_triples": self.total_triples,
            "shard_triples": self.shard_triples,
            "shard_fingerprints": self.shard_fingerprints,
            "predicates": self.predicates,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, ensure_ascii=False, sort_keys=True),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, target: Any) -> "ShardManifest":
        """Open a manifest from a shard directory or a manifest path,
        raising the typed ``store_unavailable`` error on anything
        missing or malformed (callers registered the path; the failure
        must reach remote clients reconstructably)."""
        path = Path(target)
        if path.is_dir():
            path = path / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreUnavailableError(f"no shard manifest at {path}")
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreUnavailableError(
                f"unreadable shard manifest {path}: {exc}"
            )
        if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
            raise StoreUnavailableError(
                f"{path} is not a format-{MANIFEST_FORMAT} shard manifest"
            )
        try:
            manifest = cls(
                directory=path.parent,
                shards=payload["shards"],
                ring_points=payload["ring_points"],
                images=list(payload["images"]),
                source_fingerprint=payload["source_fingerprint"],
                total_triples=payload["total_triples"],
                shard_triples=list(payload["shard_triples"]),
                shard_fingerprints=list(payload["shard_fingerprints"]),
                predicates=dict(payload["predicates"]),
            )
        except (KeyError, TypeError) as exc:
            raise StoreUnavailableError(
                f"shard manifest {path} is missing fields: {exc}"
            )
        for image in manifest.images:
            if not (manifest.directory / image).exists():
                raise StoreUnavailableError(
                    f"shard image {image} named by {path} does not exist"
                )
        return manifest


def shard_store(
    store: TripleStore,
    directory: Any,
    shards: int,
    ring_points: int = RING_POINTS,
) -> ShardManifest:
    """Partition ``store`` by predicate into ``shards`` frozen images
    under ``directory`` and write the manifest.

    Every triple lands on exactly one shard (its predicate's ring
    owner), so shard edge sets are disjoint and their union is the
    source store; a shard that receives no predicate still gets a
    (valid, empty) image so the worker topology is uniform.
    """
    from ..store.mmapstore import write_image

    ring = ShardRing(shards, ring_points)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    parts = [TripleStore() for _ in range(shards)]
    predicates: Dict[str, int] = {}
    for predicate in store.predicate_names():
        predicates[predicate] = ring.shard_of(predicate)
    for s, p, o in store.triples():
        parts[predicates[p]].add(s, p, o)
    images: List[str] = []
    fingerprints: List[str] = []
    for index, part in enumerate(parts):
        name = f"shard-{index:04d}.img"
        write_image(part, directory / name)
        images.append(name)
        fingerprints.append(part.fingerprint())
    manifest = ShardManifest(
        directory=directory,
        shards=shards,
        ring_points=ring_points,
        images=images,
        source_fingerprint=store.fingerprint(),
        total_triples=len(store),
        shard_triples=[len(part) for part in parts],
        shard_fingerprints=fingerprints,
        predicates=predicates,
    )
    manifest.save()
    return manifest


# -- worker-side task functions ---------------------------------------------
#
# Module-level so they pickle by reference.  Every store-touching task
# takes the image path and goes through attach() — memoized per process,
# so after the first call the worker holds its shard mapped and every
# compiled plan / specialization cache it builds persists across calls.


@lru_cache(maxsize=256)
def _compiled(expr_text: str):
    """Parse + compile, memoized per process by raw expression text
    (the per-shard plan cache; compile_rpq adds structural dedup)."""
    return compile_rpq(parse_regex(expr_text, multi_char=True))


def _shard(image: str):
    from ..store.mmapstore import attach

    return attach(image)


def _task_ping(image: str) -> Dict[str, Any]:
    store = _shard(image)
    return {"pid": os.getpid(), "triples": len(store)}


def _task_node_names(image: str) -> List[str]:
    return list(_shard(image).node_names())


def _task_productive_sources(image: str, expr_text: str) -> List[str]:
    return _compiled(expr_text).productive_source_names(_shard(image))


def _task_frontier_step(
    image: str, expr_text: str, entries: List[Tuple[str, str, int]]
) -> List[Tuple[str, str, int]]:
    return _compiled(expr_text).frontier_step(_shard(image), entries)


def _task_evaluate_full(
    image: str,
    expr_text: str,
    sources: Opt[List[str]],
    targets: Opt[List[str]],
) -> List[Tuple[str, str]]:
    pairs = _compiled(expr_text).evaluate(_shard(image), sources, targets)
    return sorted(pairs)


def _task_search(
    image: str, expr_text: str, source: str, target: str, forbid_nodes: bool
) -> bool:
    return bool(
        _compiled(expr_text).search(_shard(image), source, target, forbid_nodes)
    )


def _task_edges(
    image: str, predicates: List[str]
) -> List[Tuple[str, str, str]]:
    store = _shard(image)
    wanted = set(predicates)
    return [
        triple for triple in store.triples() if triple[1] in wanted
    ]


def _task_die() -> None:  # pragma: no cover - the worker never returns
    """Test/chaos hook: kill the worker process from inside (hard exit,
    so the coordinator sees BrokenProcessPool exactly as on a crash)."""
    os._exit(1)


class ShardWorker:
    """One worker process attached to one shard image.

    A single-slot :class:`ProcessPoolExecutor` *is* the process: calls
    serialize through it, a crash surfaces as
    :class:`BrokenProcessPool`, and :meth:`respawn` replaces the
    process while keeping this object (and its identity in the group)
    stable.
    """

    def __init__(self, shard: int, replica: int, image: str):
        self.shard = shard
        self.replica = replica
        self.image = image
        self.respawns = 0
        self.broken = False
        self._executor = ProcessPoolExecutor(max_workers=1)

    def submit(self, fn: Callable, *args):
        """Submit without waiting; raises :class:`BrokenProcessPool`
        immediately when the process is already known-dead."""
        return self._executor.submit(fn, *args)

    def call(self, fn: Callable, *args):
        return self.submit(fn, *args).result()

    def ping(self) -> Dict[str, Any]:
        return self.call(_task_ping, self.image)

    def respawn(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=1)
        self.respawns += 1
        self.broken = False

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


class ShardGroup:
    """The coordinator over one sharded layout: routing, scatter-gather
    evaluation, replica failover, and lifecycle.

    All public evaluation methods are blocking (they run on the service
    scheduler's worker threads) and return exactly what the
    single-process engine would for the same request — the
    ``sharded-service`` differential oracle holds them to it.
    """

    def __init__(self, target: Any, replicas: int = 1):
        if replicas < 1:
            raise ValueError("every shard needs at least one attachment")
        self.manifest = ShardManifest.load(target)
        self.replicas = replicas
        self.failovers = 0
        self._lock = threading.Lock()
        #: test/chaos instrumentation: called once per gather round
        self.gather_hook: Opt[Callable[[], None]] = None
        self.workers: List[List[ShardWorker]] = [
            [
                ShardWorker(shard, replica, str(self.manifest.image_path(shard)))
                for replica in range(replicas)
            ]
            for shard in range(self.manifest.shards)
        ]
        self._node_names: Opt[List[str]] = None
        self._union_cache: "OrderedDict[frozenset, TripleStore]" = OrderedDict()

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """The *source* store's content fingerprint: result-cache keys
        of a sharded deployment equal the single-process ones."""
        return self.manifest.source_fingerprint

    def __len__(self) -> int:
        return self.manifest.total_triples

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for attachments in self.workers:
            for worker in attachments:
                worker.close()

    def check_health(self) -> Dict[str, Any]:
        """Ping every attachment, respawning any that are broken.
        Returns a summary (used by the server's periodic health task
        and surfaced through ``stats``)."""
        healthy = 0
        respawned = 0
        for attachments in self.workers:
            for worker in attachments:
                try:
                    worker.ping()
                    healthy += 1
                except (BrokenProcessPool, RuntimeError):
                    with self._lock:
                        worker.respawn()
                    respawned += 1
                    try:
                        worker.ping()
                        healthy += 1
                    except (BrokenProcessPool, RuntimeError):
                        worker.broken = True
        return {
            "attachments": self.manifest.shards * self.replicas,
            "healthy": healthy,
            "respawned": respawned,
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "shards": self.manifest.shards,
            "replicas": self.replicas,
            "total_triples": self.manifest.total_triples,
            "shard_triples": list(self.manifest.shard_triples),
            "source_fingerprint": self.manifest.source_fingerprint,
            "failovers": self.failovers,
            "respawns": sum(
                worker.respawns
                for attachments in self.workers
                for worker in attachments
            ),
        }

    # -- calls with failover -----------------------------------------------------

    def call_shard(self, shard: int, fn: Callable, *args):
        """One call against ``shard``, trying each attachment in order
        and respawning the primary as a last resort."""
        attachments = self.workers[shard]
        for worker in attachments:
            if worker.broken:
                continue
            try:
                return worker.call(fn, *args)
            except BrokenProcessPool:
                worker.broken = True
                self.failovers += 1
        primary = attachments[0]
        with self._lock:
            if primary.broken:
                primary.respawn()
        try:
            return primary.call(fn, *args)
        except BrokenProcessPool:
            primary.broken = True
            raise ShardError(
                f"shard {shard} has no live worker (respawn failed)"
            )

    def _live_worker(self, shard: int) -> ShardWorker:
        for worker in self.workers[shard]:
            if not worker.broken:
                return worker
        return self.workers[shard][0]

    def scatter(self, jobs: Sequence[Tuple[int, Callable, Tuple]]) -> List[Any]:
        """Run ``(shard, fn, args)`` jobs concurrently — one in-flight
        call per job, gathered in order.  A job whose worker died fails
        over through :meth:`call_shard` (which respawns if needed); the
        gather hook fires once per round, after all results are in."""
        submitted: List[Tuple[int, Callable, Tuple, Opt[ShardWorker], Any]] = []
        for shard, fn, args in jobs:
            worker = self._live_worker(shard)
            try:
                future = worker.submit(fn, *args)
            except (BrokenProcessPool, RuntimeError):
                worker.broken = True
                submitted.append((shard, fn, args, None, None))
                continue
            submitted.append((shard, fn, args, worker, future))
        results: List[Any] = []
        for shard, fn, args, worker, future in submitted:
            if future is None:
                self.failovers += 1
                results.append(self.call_shard(shard, fn, *args))
                continue
            try:
                results.append(future.result())
            except BrokenProcessPool:
                worker.broken = True
                self.failovers += 1
                results.append(self.call_shard(shard, fn, *args))
        if self.gather_hook is not None:
            self.gather_hook()
        return results

    # -- node-name union ---------------------------------------------------------

    def node_names(self) -> List[str]:
        """All node names of the source store (union over shards —
        every node exists through some triple, and every triple lives on
        exactly one shard).  Shard images are frozen, so the union is
        computed once and cached for the group's lifetime."""
        if self._node_names is None:
            seen: Set[str] = set()
            for names in self.scatter(
                [
                    (shard, _task_node_names, (worker.image,))
                    for shard, worker in enumerate(
                        attachments[0] for attachments in self.workers
                    )
                ]
            ):
                seen.update(names)
            self._node_names = sorted(seen)
        return self._node_names

    # -- RPQ: walk semantics -----------------------------------------------------

    @staticmethod
    def _expr_predicates(plan) -> List[str]:
        """The store predicates an expression can read (inverse atoms
        use the same predicate's backward edges, which live wherever the
        predicate's triples do)."""
        return sorted(
            {
                atom[1:] if atom.startswith("^") else atom
                for atom in plan.atoms
            }
        )

    def evaluate_walk(
        self,
        expr_text: str,
        sources: Opt[List[str]],
        targets: Opt[List[str]],
    ) -> Set[Tuple[str, str]]:
        """All-pairs walk evaluation, identical to
        ``compile_rpq(expr).evaluate(store, sources, targets)`` on the
        unsharded store."""
        plan = _compiled(expr_text)
        target_filter = set(targets) if targets is not None else None
        owners = self.manifest.owners(self._expr_predicates(plan))
        answers: Set[Tuple[str, str]] = set()
        if plan.accepts_empty:
            diagonal = sources if sources is not None else self.node_names()
            for name in diagonal:
                if target_filter is None or name in target_filter:
                    answers.add((name, name))
        if not owners:
            return answers
        if len(owners) == 1:
            # every readable predicate lives on one shard: the whole
            # evaluation is local to it.  Its accepts_empty diagonal
            # covers only shard-local nodes — a subset of the full
            # diagonal added above, so the union stays exact.
            shard = owners[0]
            pairs = self.call_shard(
                shard,
                _task_evaluate_full,
                self.workers[shard][0].image,
                expr_text,
                sources,
                targets,
            )
            answers.update(tuple(pair) for pair in pairs)
            return answers
        return self._walk_frontier_exchange(
            plan, expr_text, owners, sources, target_filter, answers
        )

    def _walk_frontier_exchange(
        self,
        plan,
        expr_text: str,
        owners: List[int],
        sources: Opt[List[str]],
        target_filter: Opt[Set[str]],
        answers: Set[Tuple[str, str]],
    ) -> Set[Tuple[str, str]]:
        """The distributed product BFS: the coordinator owns the
        ``(source, node) -> state mask`` table and which bits are new;
        workers own the edges and advance the frontier one level."""
        if sources is not None:
            seeds = sorted(set(sources))
        else:
            seeds_set: Set[str] = set()
            for names in self.scatter(
                [
                    (
                        shard,
                        _task_productive_sources,
                        (self.workers[shard][0].image, expr_text),
                    )
                    for shard in owners
                ]
            ):
                seeds_set.update(names)
            seeds = sorted(seeds_set)
        if not seeds:
            return answers
        start_mask = plan.start_mask
        finals_mask = plan.finals_mask
        reached: Dict[Tuple[str, str], int] = {
            (name, name): start_mask for name in seeds
        }
        # seed entries carry the full start mask; hits are only ever
        # recorded off edge steps (the empty-walk diagonal is the
        # caller's, exactly as in the single-process engine)
        frontier: List[Tuple[str, str, int]] = [
            (name, name, start_mask) for name in seeds
        ]
        while frontier:
            partials = self.scatter(
                [
                    (
                        shard,
                        _task_frontier_step,
                        (self.workers[shard][0].image, expr_text, frontier),
                    )
                    for shard in owners
                ]
            )
            merged: Dict[Tuple[str, str], int] = {}
            for partial in partials:
                for token, name, mask in partial:
                    key = (token, name)
                    merged[key] = merged.get(key, 0) | mask
            frontier = []
            for (token, name), mask in merged.items():
                old = reached.get((token, name), 0)
                gained = mask & ~old
                if not gained:
                    continue
                reached[(token, name)] = old | gained
                frontier.append((token, name, gained))
                if gained & finals_mask and (
                    target_filter is None or name in target_filter
                ):
                    answers.add((token, name))
        return answers

    # -- RPQ: simple-path / trail semantics --------------------------------------

    def exists(
        self, expr_text: str, source: str, target: str, semantics: str
    ) -> bool:
        """Simple-path / trail existence, identical to the
        single-process :meth:`~repro.graphs.engine.CompiledRPQ.search`."""
        plan = _compiled(expr_text)
        forbid_nodes = semantics == "simple"
        if source == target and plan.accepts_empty:
            return True
        predicates = self._expr_predicates(plan)
        owners = self.manifest.owners(predicates)
        if not owners:
            return False
        if len(owners) == 1:
            # the DFS only ever walks expression-labeled edges, and they
            # are all on this shard; a source/target missing from the
            # shard has no such edge anywhere, which decides False in
            # both deployments
            shard = owners[0]
            return bool(
                self.call_shard(
                    shard,
                    _task_search,
                    self.workers[shard][0].image,
                    expr_text,
                    source,
                    target,
                    forbid_nodes,
                )
            )
        union = self._union_store(owners, predicates)
        return bool(plan.search(union, source, target, forbid_nodes))

    def _union_store(
        self, owners: List[int], predicates: List[str]
    ) -> TripleStore:
        """The expression-relevant edges gathered into one coordinator-
        side store (simple/trail DFS needs global used-node/used-edge
        state, which does not decompose over shards).  Shard edge sets
        are disjoint, so trail edge-multiplicity is preserved; the
        result is LRU-cached per predicate set — frozen shards never
        invalidate it."""
        key = frozenset(predicates)
        cached = self._union_cache.get(key)
        if cached is not None:
            self._union_cache.move_to_end(key)
            return cached
        union = TripleStore()
        for edges in self.scatter(
            [
                (
                    shard,
                    _task_edges,
                    (self.workers[shard][0].image, predicates),
                )
                for shard in owners
            ]
        ):
            for s, p, o in edges:
                union.add(s, p, o)
        self._union_cache[key] = union
        while len(self._union_cache) > _UNION_CACHE_ENTRIES:
            self._union_cache.popitem(last=False)
        return union

    # -- log battery -------------------------------------------------------------

    def battery(self, source: str, texts: List[str]) -> LogReport:
        """The corpus-level battery over raw query texts, scattered
        across the shard workers and merged counter-for-counter
        identical to ``analyze_corpus(QueryLogCorpus.from_texts(...))``.

        Dedup-first (no parsing on the coordinator): unique normalized
        texts ship once with their multiplicity, chunks round-robin over
        the shards, and the partial reports merge via
        :func:`combine_reports` with the Table 2 headers restored from
        the dedup accounting."""
        counts: Dict[str, int] = {}
        first_text: Dict[str, str] = {}
        order: List[str] = []
        for text in texts:
            key = normalize_text(text)
            if key in counts:
                counts[key] += 1
            else:
                counts[key] = 1
                first_text[key] = text
                order.append(key)
        entries = [(key, first_text[key], counts[key]) for key in order]
        chunks: List[List[Tuple[str, str, int]]] = []
        if entries:
            size = max(
                1,
                min(
                    BATTERY_CHUNK_SIZE,
                    -(-len(entries) // max(1, self.manifest.shards)),
                ),
            )
            chunks = [
                entries[start : start + size]
                for start in range(0, len(entries), size)
            ]
        partials = self.scatter(
            [
                (index % self.manifest.shards, _study_worker, ((source, chunk),))
                for index, chunk in enumerate(chunks)
            ]
        )
        invalid = sum(partial[1] for partial in partials)
        invalid_unique = sum(partial[2] for partial in partials)
        report = combine_reports(
            [partial[0] for partial in partials], name=source
        )
        report.total = len(texts)
        report.valid = len(texts) - invalid
        report.unique = len(order) - invalid_unique
        return report
