"""The sharded store tier: partitioned images, worker processes, and
the scatter-gather coordinator.

One GIL bounds the single-process service however many threads it runs
— real parallelism needs processes, and PR 6's memory-mapped images
were built so processes could share triple data zero-copy.  This module
closes the loop:

* :func:`shard_store` partitions a :class:`~repro.graphs.rdf.TripleStore`
  **by predicate** over a consistent-hash ring (:class:`ShardRing`) into
  N frozen per-shard images plus a ``manifest.json``
  (:class:`ShardManifest`) recording the layout, the per-shard
  fingerprints, and — crucially — the *source store's* content
  fingerprint, so a sharded deployment addresses exactly the result-cache
  keys the single-process deployment over the same data would.
* :class:`ShardWorker` is one worker process (a single-slot
  :class:`~concurrent.futures.ProcessPoolExecutor`) attached to one
  shard image.  Workers attach via :func:`repro.store.mmapstore.attach`
  (per-process memoized), so each holds its shard's pages mapped once
  and keeps its own compiled-plan and specialization caches across
  requests.
* :class:`ShardGroup` is the coordinator: it routes whole queries to a
  single shard when every predicate of the expression lives there
  (consistent-hash routing, the fast path), and otherwise runs the RPQ
  product BFS as a **name-level frontier exchange** — frontier
  ``(source token, node name, NFA state mask)`` entries are scattered
  to owning shards, advanced one edge level against the shard-local
  adjacency (:meth:`~repro.graphs.engine.CompiledRPQ.frontier_step`),
  and the partial frontiers merged by the coordinator, which alone
  decides which state bits are new.  Log batteries scatter
  ``(key, text, multiplicity)`` chunks over the workers and merge the
  counter partials via :func:`~repro.logs.analyzer.combine_reports`.
* :class:`ShardPatternExecutor` gives the SPARQL evaluator the same
  owners() routing: concrete-predicate triple patterns and path steps
  read the owner shard's image directly (coordinator-side zero-copy
  attach — the pages are already mapped by the shard's workers), and
  variable-predicate scans union per-predicate owner reads, so ``query``
  requests never fall back to a gathered union store.

The exchange is *payload-aware and pipelined*:

* **Label pruning** (``label_prune=True``) — the coordinator attaches
  each shard image itself and consults the per-node label summary
  written at :func:`shard_store` time (image format 2, see
  :mod:`repro.store.mmapstore`): a frontier entry ships to a shard only
  when its mask has a pending transition on a predicate the shard owns
  *and* the node actually has a matching local edge.  Skewed workloads
  stop paying broadcast cost; entries a broadcast would have shipped
  are counted in ``pruned_entries``.  Images without a summary
  (format 1, or > 63 predicates) degrade gracefully to shard-level
  predicate pruning plus node-existence pruning.
* **Pipelined rounds** (``pipelined=True``) — instead of a per-round
  barrier, a completion-driven loop keeps one frontier-step call in
  flight per shard: as each worker returns, its partial is merged and
  the next level is dispatched immediately to idle shards while
  stragglers drain.  The reached/newness bookkeeping stays coordinator-
  owned; the reached table is a monotone join over bitmasks, so the
  completion order cannot change the fixpoint and answers stay
  deterministic (the equivalence tests pin pipelined == barrier ==
  single-process).

``scatter_bytes`` / ``gather_bytes`` / ``rounds`` / ``pruned_entries``
counters (estimated wire payload: token + name UTF-8 bytes plus a
constant per entry, deterministic across hosts) accumulate on the group
and mirror into the service's :class:`~.metrics.ServiceMetrics` when
the group is mounted in a :class:`~.server.ServiceCore`.

Partitioning by predicate makes single-predicate reads (and any
expression whose alphabet maps to one shard) local to one worker, while
multi-predicate expressions degrade gracefully to the frontier
exchange.  Masks crossing the process boundary are always *NFA* masks:
Glushkov state numbering is canonical per expression, so masks produced
by independent worker processes compose; DFA state numbers are a
process-local artifact and never leave a worker.

Failure handling: every shard may have several *attachments*
(``replicas``).  A worker that dies mid-call surfaces as
:class:`~concurrent.futures.process.BrokenProcessPool`; the coordinator
fails over to the next live attachment, respawns the broken one, and
only raises the typed :class:`~repro.errors.ShardError` when a shard
has no live attachment even after a respawn.  All coordinator methods
are blocking and run on the service scheduler's worker threads, so the
existing admission-control / deadline / single-flight machinery wraps
the scatter path unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from bisect import bisect_right
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional as Opt,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ShardError, StoreUnavailableError
from ..graphs.engine import compile_rpq
from ..graphs.rdf import TripleStore
from ..logs.analyzer import LogReport, combine_reports
from ..logs.corpus import normalize_text
from ..logs.pipeline import _study_worker
from ..regex.parser import parse as parse_regex
from ..sparql.evaluation import PatternExecutor

#: manifest format version (bump on incompatible layout changes)
MANIFEST_FORMAT = 1

#: manifest file name inside a shard directory
MANIFEST_NAME = "manifest.json"

#: virtual ring points per shard — enough that predicate load spreads
#: evenly for realistic predicate counts without making routing lookups
#: measurably slower
RING_POINTS = 64

#: battery scatter chunk bound (payload size only; fan-out is decided
#: by the worker count, same discipline as repro.core.parallelism)
BATTERY_CHUNK_SIZE = 256

#: default union-store LRU entries kept per group for multi-shard
#: simple/trail decisions (a :class:`ShardGroup` parameter since the
#: capacity is workload-dependent)
_UNION_CACHE_ENTRIES = 8

#: estimated per-entry wire overhead of one frontier-exchange entry
#: beyond its token/name text: the 8-byte state mask plus framing.  The
#: byte counters exist to compare pruned against broadcast payload, so
#: the accounting must be deterministic and host-independent — it is an
#: estimate of serialized size, not a measurement of pickle output.
ENTRY_OVERHEAD_BYTES = 12


def _entries_bytes(entries: Iterable[Tuple[str, str, int]]) -> int:
    """Estimated scatter/gather payload of frontier entries."""
    total = 0
    for token, name, _mask in entries:
        total += (
            len(token.encode("utf-8"))
            + len(name.encode("utf-8"))
            + ENTRY_OVERHEAD_BYTES
        )
    return total


def _point(value: str) -> int:
    """A 64-bit hash position on the ring (sha256-based: stable across
    processes, runs, and machines — routing must never depend on
    ``PYTHONHASHSEED``)."""
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class ShardRing:
    """Consistent-hash ring mapping predicate names to shard indexes."""

    __slots__ = ("shards", "_points", "_owners")

    def __init__(self, shards: int, points: int = RING_POINTS):
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        self.shards = shards
        marks: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(points):
                marks.append((_point(f"shard:{shard}:{replica}"), shard))
        marks.sort()
        self._points = [mark for mark, _ in marks]
        self._owners = [shard for _, shard in marks]

    def shard_of(self, predicate: str) -> int:
        """The shard owning ``predicate`` (first ring mark clockwise)."""
        position = bisect_right(self._points, _point(predicate))
        if position == len(self._points):
            position = 0
        return self._owners[position]


@dataclass
class ShardManifest:
    """The on-disk description of one sharded layout."""

    directory: Path
    shards: int
    ring_points: int
    images: List[str]
    #: content fingerprint of the *source* store — the cache-key
    #: identity of the sharded deployment
    source_fingerprint: str
    total_triples: int
    shard_triples: List[int]
    shard_fingerprints: List[str]
    #: predicate name -> owning shard, for every predicate the source
    #: store actually contained (authoritative for routing; the ring is
    #: only consulted at write time)
    predicates: Dict[str, int] = field(default_factory=dict)

    def image_path(self, shard: int) -> Path:
        return self.directory / self.images[shard]

    def owners(self, predicates: Iterable[str]) -> List[int]:
        """The shards holding at least one of ``predicates`` (sorted;
        predicates the store never contained own nothing)."""
        return sorted(
            {
                self.predicates[predicate]
                for predicate in predicates
                if predicate in self.predicates
            }
        )

    def save(self) -> Path:
        path = self.directory / MANIFEST_NAME
        payload = {
            "format": MANIFEST_FORMAT,
            "shards": self.shards,
            "ring_points": self.ring_points,
            "images": self.images,
            "source_fingerprint": self.source_fingerprint,
            "total_triples": self.total_triples,
            "shard_triples": self.shard_triples,
            "shard_fingerprints": self.shard_fingerprints,
            "predicates": self.predicates,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, ensure_ascii=False, sort_keys=True),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, target: Any) -> "ShardManifest":
        """Open a manifest from a shard directory or a manifest path,
        raising the typed ``store_unavailable`` error on anything
        missing or malformed (callers registered the path; the failure
        must reach remote clients reconstructably)."""
        path = Path(target)
        if path.is_dir():
            path = path / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreUnavailableError(f"no shard manifest at {path}")
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreUnavailableError(
                f"unreadable shard manifest {path}: {exc}"
            )
        if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
            raise StoreUnavailableError(
                f"{path} is not a format-{MANIFEST_FORMAT} shard manifest"
            )
        try:
            manifest = cls(
                directory=path.parent,
                shards=payload["shards"],
                ring_points=payload["ring_points"],
                images=list(payload["images"]),
                source_fingerprint=payload["source_fingerprint"],
                total_triples=payload["total_triples"],
                shard_triples=list(payload["shard_triples"]),
                shard_fingerprints=list(payload["shard_fingerprints"]),
                predicates=dict(payload["predicates"]),
            )
        except (KeyError, TypeError) as exc:
            raise StoreUnavailableError(
                f"shard manifest {path} is missing fields: {exc}"
            )
        for image in manifest.images:
            if not (manifest.directory / image).exists():
                raise StoreUnavailableError(
                    f"shard image {image} named by {path} does not exist"
                )
        return manifest


def shard_store(
    store: TripleStore,
    directory: Any,
    shards: int,
    ring_points: int = RING_POINTS,
) -> ShardManifest:
    """Partition ``store`` by predicate into ``shards`` frozen images
    under ``directory`` and write the manifest.

    Every triple lands on exactly one shard (its predicate's ring
    owner), so shard edge sets are disjoint and their union is the
    source store; a shard that receives no predicate still gets a
    (valid, empty) image so the worker topology is uniform.
    """
    from ..store.mmapstore import write_image

    ring = ShardRing(shards, ring_points)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    parts = [TripleStore() for _ in range(shards)]
    predicates: Dict[str, int] = {}
    for predicate in store.predicate_names():
        predicates[predicate] = ring.shard_of(predicate)
    for s, p, o in store.triples():
        parts[predicates[p]].add(s, p, o)
    images: List[str] = []
    fingerprints: List[str] = []
    for index, part in enumerate(parts):
        name = f"shard-{index:04d}.img"
        write_image(part, directory / name)
        images.append(name)
        fingerprints.append(part.fingerprint())
    manifest = ShardManifest(
        directory=directory,
        shards=shards,
        ring_points=ring_points,
        images=images,
        source_fingerprint=store.fingerprint(),
        total_triples=len(store),
        shard_triples=[len(part) for part in parts],
        shard_fingerprints=fingerprints,
        predicates=predicates,
    )
    manifest.save()
    return manifest


# -- worker-side task functions ---------------------------------------------
#
# Module-level so they pickle by reference.  Every store-touching task
# takes the image path and goes through attach() — memoized per process,
# so after the first call the worker holds its shard mapped and every
# compiled plan / specialization cache it builds persists across calls.


@lru_cache(maxsize=256)
def _compiled(expr_text: str):
    """Parse + compile, memoized per process by raw expression text
    (the per-shard plan cache; compile_rpq adds structural dedup)."""
    return compile_rpq(parse_regex(expr_text, multi_char=True))


def _shard(image: str):
    from ..store.mmapstore import attach

    return attach(image)


def _task_ping(image: str) -> Dict[str, Any]:
    store = _shard(image)
    return {"pid": os.getpid(), "triples": len(store)}


def _task_node_names(image: str) -> List[str]:
    return list(_shard(image).node_names())


def _task_productive_sources(image: str, expr_text: str) -> List[str]:
    return _compiled(expr_text).productive_source_names(_shard(image))


def _task_frontier_step(
    image: str, expr_text: str, entries: List[Tuple[str, str, int]]
) -> List[Tuple[str, str, int]]:
    return _compiled(expr_text).frontier_step(_shard(image), entries)


def _task_evaluate_full(
    image: str,
    expr_text: str,
    sources: Opt[List[str]],
    targets: Opt[List[str]],
) -> List[Tuple[str, str]]:
    pairs = _compiled(expr_text).evaluate(_shard(image), sources, targets)
    return sorted(pairs)


def _task_search(
    image: str, expr_text: str, source: str, target: str, forbid_nodes: bool
) -> bool:
    return bool(
        _compiled(expr_text).search(_shard(image), source, target, forbid_nodes)
    )


def _task_edges(
    image: str, predicates: List[str]
) -> List[Tuple[str, str, str]]:
    store = _shard(image)
    wanted = set(predicates)
    return [
        triple for triple in store.triples() if triple[1] in wanted
    ]


def _task_die() -> None:  # pragma: no cover - the worker never returns
    """Test/chaos hook: kill the worker process from inside (hard exit,
    so the coordinator sees BrokenProcessPool exactly as on a crash)."""
    os._exit(1)


class ShardWorker:
    """One worker process attached to one shard image.

    A single-slot :class:`ProcessPoolExecutor` *is* the process: calls
    serialize through it, a crash surfaces as
    :class:`BrokenProcessPool`, and :meth:`respawn` replaces the
    process while keeping this object (and its identity in the group)
    stable.
    """

    def __init__(self, shard: int, replica: int, image: str):
        self.shard = shard
        self.replica = replica
        self.image = image
        self.respawns = 0
        self.broken = False
        self._executor = ProcessPoolExecutor(max_workers=1)

    def submit(self, fn: Callable, *args):
        """Submit without waiting; raises :class:`BrokenProcessPool`
        immediately when the process is already known-dead."""
        return self._executor.submit(fn, *args)

    def call(self, fn: Callable, *args):
        return self.submit(fn, *args).result()

    def ping(self) -> Dict[str, Any]:
        return self.call(_task_ping, self.image)

    def respawn(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=1)
        self.respawns += 1
        self.broken = False

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


class ShardGroup:
    """The coordinator over one sharded layout: routing, scatter-gather
    evaluation, replica failover, and lifecycle.

    All public evaluation methods are blocking (they run on the service
    scheduler's worker threads) and return exactly what the
    single-process engine would for the same request — the
    ``sharded-service`` differential oracle holds them to it.
    """

    def __init__(
        self,
        target: Any,
        replicas: int = 1,
        *,
        pipelined: bool = True,
        label_prune: bool = True,
        union_cache_entries: int = _UNION_CACHE_ENTRIES,
    ):
        if replicas < 1:
            raise ValueError("every shard needs at least one attachment")
        self.manifest = ShardManifest.load(target)
        self.replicas = replicas
        #: completion-driven frontier exchange (False: per-round barrier;
        #: the answers are identical either way — equivalence-tested)
        self.pipelined = pipelined
        #: label-pruned scatter (False: broadcast the frontier to every
        #: owner shard, the pre-pruning behaviour — kept for comparison
        #: benchmarks and equivalence tests)
        self.label_prune = label_prune
        self.failovers = 0
        # exchange payload accounting (see module docstring); mirrored
        # into the service metrics registry when mounted in a core
        self.scatter_bytes = 0
        self.gather_bytes = 0
        self.rounds = 0
        self.pruned_entries = 0
        self.scattered_entries = 0
        self.service_metrics: Opt[Any] = None
        self._lock = threading.Lock()
        #: test/chaos instrumentation: called once per gather round
        self.gather_hook: Opt[Callable[[], None]] = None
        self.workers: List[List[ShardWorker]] = [
            [
                ShardWorker(shard, replica, str(self.manifest.image_path(shard)))
                for replica in range(replicas)
            ]
            for shard in range(self.manifest.shards)
        ]
        self._node_names: Opt[List[str]] = None
        self._union_cache_entries = union_cache_entries
        self._union_cache: "OrderedDict[Tuple[str, frozenset], TripleStore]" = (
            OrderedDict()
        )
        self._mapped: List[Opt[Any]] = [None] * self.manifest.shards
        self._executor: Opt["ShardPatternExecutor"] = None

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """The *source* store's content fingerprint: result-cache keys
        of a sharded deployment equal the single-process ones."""
        return self.manifest.source_fingerprint

    def __len__(self) -> int:
        return self.manifest.total_triples

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for attachments in self.workers:
            for worker in attachments:
                worker.close()

    def check_health(self) -> Dict[str, Any]:
        """Ping every attachment, respawning any that are broken.
        Returns a summary (used by the server's periodic health task
        and surfaced through ``stats``)."""
        healthy = 0
        respawned = 0
        for attachments in self.workers:
            for worker in attachments:
                try:
                    worker.ping()
                    healthy += 1
                except (BrokenProcessPool, RuntimeError):
                    with self._lock:
                        worker.respawn()
                    respawned += 1
                    try:
                        worker.ping()
                        healthy += 1
                    except (BrokenProcessPool, RuntimeError):
                        worker.broken = True
        return {
            "attachments": self.manifest.shards * self.replicas,
            "healthy": healthy,
            "respawned": respawned,
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "shards": self.manifest.shards,
            "replicas": self.replicas,
            "total_triples": self.manifest.total_triples,
            "shard_triples": list(self.manifest.shard_triples),
            "source_fingerprint": self.manifest.source_fingerprint,
            "failovers": self.failovers,
            "respawns": sum(
                worker.respawns
                for attachments in self.workers
                for worker in attachments
            ),
            "pipelined": self.pipelined,
            "label_prune": self.label_prune,
            "scatter_bytes": self.scatter_bytes,
            "gather_bytes": self.gather_bytes,
            "rounds": self.rounds,
            "pruned_entries": self.pruned_entries,
            "scattered_entries": self.scattered_entries,
        }

    def _account(
        self,
        *,
        scatter: int = 0,
        gather: int = 0,
        rounds: int = 0,
        pruned: int = 0,
        entries: int = 0,
    ) -> None:
        """Fold one walk's exchange accounting into the group counters
        and, when mounted in a service core, the shared metrics
        registry (walks run concurrently on scheduler threads, hence
        the lock)."""
        with self._lock:
            self.scatter_bytes += scatter
            self.gather_bytes += gather
            self.rounds += rounds
            self.pruned_entries += pruned
            self.scattered_entries += entries
            metrics = self.service_metrics
            if metrics is not None:
                metrics.scatter_bytes += scatter
                metrics.gather_bytes += gather
                metrics.shard_rounds += rounds
                metrics.pruned_entries += pruned

    # -- coordinator-side image attach -------------------------------------------

    def _shard_mapped(self, shard: int):
        """The shard's image mapped into *this* process (zero-copy; the
        physical pages are shared with the shard's worker processes).
        Scatter pruning reads the per-node label summaries through it,
        and :class:`ShardPatternExecutor` serves owners()-routed SPARQL
        reads from it without an IPC round trip.

        The per-process :func:`~repro.store.mmapstore.attach` cache owns
        the mapping — several groups over one directory share it, so
        :meth:`close` deliberately leaves it attached."""
        mapped = self._mapped[shard]
        if mapped is None:
            from ..store.mmapstore import attach

            mapped = attach(self.manifest.image_path(shard))
            self._mapped[shard] = mapped
        return mapped

    def executor(self) -> "ShardPatternExecutor":
        """The group's owners()-routed SPARQL pattern executor (one per
        group; the underlying shard images are frozen)."""
        if self._executor is None:
            self._executor = ShardPatternExecutor(self)
        return self._executor

    # -- calls with failover -----------------------------------------------------

    def call_shard(self, shard: int, fn: Callable, *args):
        """One call against ``shard``, trying each attachment in order
        and respawning the primary as a last resort."""
        attachments = self.workers[shard]
        for worker in attachments:
            if worker.broken:
                continue
            try:
                return worker.call(fn, *args)
            except BrokenProcessPool:
                worker.broken = True
                self.failovers += 1
        primary = attachments[0]
        with self._lock:
            if primary.broken:
                primary.respawn()
        try:
            return primary.call(fn, *args)
        except BrokenProcessPool:
            primary.broken = True
            raise ShardError(
                f"shard {shard} has no live worker (respawn failed)"
            )

    def _live_worker(self, shard: int) -> ShardWorker:
        for worker in self.workers[shard]:
            if not worker.broken:
                return worker
        return self.workers[shard][0]

    def scatter(self, jobs: Sequence[Tuple[int, Callable, Tuple]]) -> List[Any]:
        """Run ``(shard, fn, args)`` jobs concurrently — one in-flight
        call per job, gathered in order.  A job whose worker died fails
        over through :meth:`call_shard` (which respawns if needed); the
        gather hook fires once per round, after all results are in."""
        submitted: List[Tuple[int, Callable, Tuple, Opt[ShardWorker], Any]] = []
        for shard, fn, args in jobs:
            worker = self._live_worker(shard)
            try:
                future = worker.submit(fn, *args)
            except (BrokenProcessPool, RuntimeError):
                worker.broken = True
                submitted.append((shard, fn, args, None, None))
                continue
            submitted.append((shard, fn, args, worker, future))
        results: List[Any] = []
        for shard, fn, args, worker, future in submitted:
            if future is None:
                self.failovers += 1
                results.append(self.call_shard(shard, fn, *args))
                continue
            try:
                results.append(future.result())
            except BrokenProcessPool:
                worker.broken = True
                self.failovers += 1
                results.append(self.call_shard(shard, fn, *args))
        if self.gather_hook is not None:
            self.gather_hook()
        return results

    # -- node-name union ---------------------------------------------------------

    def node_names(self) -> List[str]:
        """All node names of the source store (union over shards —
        every node exists through some triple, and every triple lives on
        exactly one shard).  Shard images are frozen, so the union is
        computed once and cached for the group's lifetime."""
        if self._node_names is None:
            seen: Set[str] = set()
            for names in self.scatter(
                [
                    (shard, _task_node_names, (worker.image,))
                    for shard, worker in enumerate(
                        attachments[0] for attachments in self.workers
                    )
                ]
            ):
                seen.update(names)
            self._node_names = sorted(seen)
        return self._node_names

    # -- RPQ: walk semantics -----------------------------------------------------

    @staticmethod
    def _expr_predicates(plan) -> List[str]:
        """The store predicates an expression can read (inverse atoms
        use the same predicate's backward edges, which live wherever the
        predicate's triples do)."""
        return sorted(
            {
                atom[1:] if atom.startswith("^") else atom
                for atom in plan.atoms
            }
        )

    def evaluate_walk(
        self,
        expr_text: str,
        sources: Opt[List[str]],
        targets: Opt[List[str]],
    ) -> Set[Tuple[str, str]]:
        """All-pairs walk evaluation, identical to
        ``compile_rpq(expr).evaluate(store, sources, targets)`` on the
        unsharded store."""
        plan = _compiled(expr_text)
        target_filter = set(targets) if targets is not None else None
        owners = self.manifest.owners(self._expr_predicates(plan))
        answers: Set[Tuple[str, str]] = set()
        if plan.accepts_empty:
            diagonal = sources if sources is not None else self.node_names()
            for name in diagonal:
                if target_filter is None or name in target_filter:
                    answers.add((name, name))
        if not owners:
            return answers
        if len(owners) == 1:
            # every readable predicate lives on one shard: the whole
            # evaluation is local to it.  Its accepts_empty diagonal
            # covers only shard-local nodes — a subset of the full
            # diagonal added above, so the union stays exact.
            shard = owners[0]
            pairs = self.call_shard(
                shard,
                _task_evaluate_full,
                self.workers[shard][0].image,
                expr_text,
                sources,
                targets,
            )
            answers.update(tuple(pair) for pair in pairs)
            return answers
        return self._walk_frontier_exchange(
            plan, expr_text, owners, sources, target_filter, answers
        )

    def _exchange_contexts(
        self, plan, owners: List[int]
    ) -> Dict[int, List[Tuple[str, List[int], bool, Opt[int]]]]:
        """Per owner shard, the NFA atoms whose predicate the shard owns
        as ``(label, delta, inverse, summary bit)``.  The summary bit is
        the predicate's position in the *shard image's* label bitmasks
        (``None`` when the image carries no summary — format-1 images or
        > 63 predicates — in which case node-level pruning degrades to
        node-existence pruning for that atom)."""
        contexts: Dict[int, List[Tuple[str, List[int], bool, Opt[int]]]] = {}
        for shard in owners:
            mapped = self._shard_mapped(shard)
            summarized = mapped.has_label_summary
            atoms: List[Tuple[str, List[int], bool, Opt[int]]] = []
            for label in plan.atoms:
                inverse = label.startswith("^")
                predicate = label[1:] if inverse else label
                if self.manifest.predicates.get(predicate) != shard:
                    continue
                bit: Opt[int] = None
                if summarized:
                    pid = mapped.predicate_id(predicate)
                    if pid is not None:
                        bit = 1 << pid
                atoms.append((label, plan.deltas[label], inverse, bit))
            contexts[shard] = atoms
        return contexts

    def _walk_frontier_exchange(
        self,
        plan,
        expr_text: str,
        owners: List[int],
        sources: Opt[List[str]],
        target_filter: Opt[Set[str]],
        answers: Set[Tuple[str, str]],
    ) -> Set[Tuple[str, str]]:
        """The distributed product BFS: the coordinator owns the
        ``(source, node) -> state mask`` table and which bits are new;
        workers own the edges and advance the frontier one level.

        Scatter is label-pruned (an entry ships to a shard only when
        its mask has a pending transition the shard's labels — and,
        with an image summary, the node's own labels — can serve) and
        the rounds are pipelined (completion-driven re-dispatch per
        shard) unless the group was built with those modes disabled.
        Both axes change payload and overlap, never the answer set: the
        reached table is a monotone bitmask join, so any completion
        order converges to the same fixpoint.
        """
        if sources is not None:
            seeds = sorted(set(sources))
        else:
            seeds_set: Set[str] = set()
            for names in self.scatter(
                [
                    (
                        shard,
                        _task_productive_sources,
                        (self.workers[shard][0].image, expr_text),
                    )
                    for shard in owners
                ]
            ):
                seeds_set.update(names)
            seeds = sorted(seeds_set)
        if not seeds:
            return answers
        start_mask = plan.start_mask
        finals_mask = plan.finals_mask
        step_mask = plan._step_mask
        # seed entries carry the full start mask; hits are only ever
        # recorded off edge steps (the empty-walk diagonal is the
        # caller's, exactly as in the single-process engine)
        reached: Dict[Tuple[str, str], int] = {
            (name, name): start_mask for name in seeds
        }
        contexts = (
            self._exchange_contexts(plan, owners) if self.label_prune else None
        )
        # (relevant, has unsummarized atom, pending out bits, in bits)
        # per (shard, mask) — masks repeat heavily across a frontier
        need_memo: Dict[Tuple[int, int], Tuple[bool, bool, int, int]] = {}
        pending: Dict[int, Dict[Tuple[str, str], int]] = {
            shard: {} for shard in owners
        }
        stats = {"scatter": 0, "gather": 0, "rounds": 0, "pruned": 0, "entries": 0}

        def needs(shard: int, mask: int) -> Tuple[bool, bool, int, int]:
            key = (shard, mask)
            got = need_memo.get(key)
            if got is None:
                relevant = False
                unsummarized = False
                out_bits = 0
                in_bits = 0
                for label, delta, inverse, bit in contexts[shard]:
                    if step_mask(label, delta, mask):
                        relevant = True
                        if bit is None:
                            unsummarized = True
                        elif inverse:
                            in_bits |= bit
                        else:
                            out_bits |= bit
                got = (relevant, unsummarized, out_bits, in_bits)
                need_memo[key] = got
            return got

        def enqueue(token: str, name: str, mask: int) -> None:
            """Buffer one gained entry towards every shard that can
            extend it (all owners when pruning is off)."""
            key = (token, name)
            for shard in owners:
                if contexts is None:
                    buffer = pending[shard]
                    buffer[key] = buffer.get(key, 0) | mask
                    continue
                ship = False
                relevant, unsummarized, out_bits, in_bits = needs(shard, mask)
                if relevant:
                    mapped = self._mapped[shard]
                    nid = mapped.node_id(name)
                    if nid is not None:
                        if unsummarized:
                            ship = True
                        elif (
                            out_bits and mapped.out_label_mask(nid) & out_bits
                        ) or (in_bits and mapped.in_label_mask(nid) & in_bits):
                            ship = True
                if ship:
                    buffer = pending[shard]
                    buffer[key] = buffer.get(key, 0) | mask
                else:
                    stats["pruned"] += 1

        def merge_partial(partial: List[Tuple[str, str, int]]) -> None:
            """Fold one worker's advanced frontier into the reached
            table; gained bits record hits and re-enter the buffers."""
            stats["gather"] += _entries_bytes(partial)
            for token, name, mask in partial:
                old = reached.get((token, name), 0)
                gained = mask & ~old
                if not gained:
                    continue
                reached[(token, name)] = old | gained
                if gained & finals_mask and (
                    target_filter is None or name in target_filter
                ):
                    answers.add((token, name))
                enqueue(token, name, gained)

        def drain(shard: int) -> Opt[List[Tuple[str, str, int]]]:
            """Take the shard's buffered entries for dispatch (None
            when it has nothing pending)."""
            buffer = pending[shard]
            if not buffer:
                return None
            entries = [(t, n, m) for (t, n), m in buffer.items()]
            pending[shard] = {}
            stats["scatter"] += _entries_bytes(entries)
            stats["entries"] += len(entries)
            stats["rounds"] += 1
            return entries

        for name in seeds:
            enqueue(name, name, start_mask)
        try:
            if self.pipelined:
                self._exchange_pipelined(
                    expr_text, owners, pending, drain, merge_partial
                )
            else:
                self._exchange_barrier(
                    expr_text, owners, pending, drain, merge_partial
                )
        finally:
            self._account(
                scatter=stats["scatter"],
                gather=stats["gather"],
                rounds=stats["rounds"],
                pruned=stats["pruned"],
                entries=stats["entries"],
            )
        return answers

    def _exchange_barrier(
        self, expr_text: str, owners: List[int], pending, drain, merge_partial
    ) -> None:
        """Round-barrier exchange: scatter every non-empty buffer,
        gather all partials, merge, repeat."""
        while True:
            jobs: List[Tuple[int, Callable, Tuple]] = []
            for shard in owners:
                entries = drain(shard)
                if entries is None:
                    continue
                jobs.append(
                    (
                        shard,
                        _task_frontier_step,
                        (self.workers[shard][0].image, expr_text, entries),
                    )
                )
            if not jobs:
                return
            for partial in self.scatter(jobs):
                merge_partial(partial)

    def _exchange_pipelined(
        self, expr_text: str, owners: List[int], pending, drain, merge_partial
    ) -> None:
        """Completion-driven exchange: at most one frontier-step call in
        flight per shard (the workers are single-slot); each completion
        merges immediately and idle shards re-dispatch while stragglers
        drain.  A worker that dies mid-call fails over synchronously
        through :meth:`call_shard` (which respawns as a last resort)."""
        inflight: Dict[Any, Tuple[int, ShardWorker, List]] = {}

        def fallback(shard: int, entries: List) -> None:
            self.failovers += 1
            merge_partial(
                self.call_shard(
                    shard,
                    _task_frontier_step,
                    self.workers[shard][0].image,
                    expr_text,
                    entries,
                )
            )

        def dispatch(shard: int) -> None:
            entries = drain(shard)
            if entries is None:
                return
            worker = self._live_worker(shard)
            try:
                future = worker.submit(
                    _task_frontier_step, worker.image, expr_text, entries
                )
            except (BrokenProcessPool, RuntimeError):
                worker.broken = True
                fallback(shard, entries)
                return
            inflight[future] = (shard, worker, entries)

        while True:
            busy = {shard for shard, _, _ in inflight.values()}
            for shard in owners:
                if shard not in busy:
                    dispatch(shard)
            if not inflight:
                if any(pending[shard] for shard in owners):
                    # every dispatch fell back synchronously (all
                    # workers broken) and refilled buffers; keep going
                    continue
                return
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                shard, worker, entries = inflight.pop(future)
                try:
                    partial = future.result()
                except BrokenProcessPool:
                    worker.broken = True
                    fallback(shard, entries)
                    continue
                merge_partial(partial)
            if self.gather_hook is not None:
                self.gather_hook()

    # -- RPQ: simple-path / trail semantics --------------------------------------

    def exists(
        self, expr_text: str, source: str, target: str, semantics: str
    ) -> bool:
        """Simple-path / trail existence, identical to the
        single-process :meth:`~repro.graphs.engine.CompiledRPQ.search`."""
        plan = _compiled(expr_text)
        forbid_nodes = semantics == "simple"
        if source == target and plan.accepts_empty:
            return True
        predicates = self._expr_predicates(plan)
        owners = self.manifest.owners(predicates)
        if not owners:
            return False
        if len(owners) == 1:
            # the DFS only ever walks expression-labeled edges, and they
            # are all on this shard; a source/target missing from the
            # shard has no such edge anywhere, which decides False in
            # both deployments
            shard = owners[0]
            return bool(
                self.call_shard(
                    shard,
                    _task_search,
                    self.workers[shard][0].image,
                    expr_text,
                    source,
                    target,
                    forbid_nodes,
                )
            )
        union = self._union_store(owners, predicates)
        return bool(plan.search(union, source, target, forbid_nodes))

    def _union_store(
        self, owners: List[int], predicates: List[str]
    ) -> TripleStore:
        """The expression-relevant edges gathered into one coordinator-
        side store (simple/trail DFS needs global used-node/used-edge
        state, which does not decompose over shards).  Shard edge sets
        are disjoint, so trail edge-multiplicity is preserved; the
        result is LRU-cached per ``(source fingerprint, predicate set)``
        — frozen shards never invalidate an entry, but a rebuilt group
        over a different source store can never collide with one."""
        key = (self.manifest.source_fingerprint, frozenset(predicates))
        cached = self._union_cache.get(key)
        if cached is not None:
            self._union_cache.move_to_end(key)
            return cached
        union = TripleStore()
        for edges in self.scatter(
            [
                (
                    shard,
                    _task_edges,
                    (self.workers[shard][0].image, predicates),
                )
                for shard in owners
            ]
        ):
            for s, p, o in edges:
                union.add(s, p, o)
        self._union_cache[key] = union
        while len(self._union_cache) > self._union_cache_entries:
            self._union_cache.popitem(last=False)
        return union

    # -- log battery -------------------------------------------------------------

    def battery(self, source: str, texts: List[str]) -> LogReport:
        """The corpus-level battery over raw query texts, scattered
        across the shard workers and merged counter-for-counter
        identical to ``analyze_corpus(QueryLogCorpus.from_texts(...))``.

        Dedup-first (no parsing on the coordinator): unique normalized
        texts ship once with their multiplicity, chunks round-robin over
        the shards, and the partial reports merge via
        :func:`combine_reports` with the Table 2 headers restored from
        the dedup accounting."""
        counts: Dict[str, int] = {}
        first_text: Dict[str, str] = {}
        order: List[str] = []
        for text in texts:
            key = normalize_text(text)
            if key in counts:
                counts[key] += 1
            else:
                counts[key] = 1
                first_text[key] = text
                order.append(key)
        entries = [(key, first_text[key], counts[key]) for key in order]
        chunks: List[List[Tuple[str, str, int]]] = []
        if entries:
            size = max(
                1,
                min(
                    BATTERY_CHUNK_SIZE,
                    -(-len(entries) // max(1, self.manifest.shards)),
                ),
            )
            chunks = [
                entries[start : start + size]
                for start in range(0, len(entries), size)
            ]
        partials = self.scatter(
            [
                (index % self.manifest.shards, _study_worker, ((source, chunk),))
                for index, chunk in enumerate(chunks)
            ]
        )
        invalid = sum(partial[1] for partial in partials)
        invalid_unique = sum(partial[2] for partial in partials)
        report = combine_reports(
            [partial[0] for partial in partials], name=source
        )
        report.total = len(texts)
        report.valid = len(texts) - invalid
        report.unique = len(order) - invalid_unique
        return report


class ShardPatternExecutor(PatternExecutor):
    """Owners()-routed SPARQL data surface over a :class:`ShardGroup`.

    Every concrete-predicate access goes straight to the shard that
    owns the predicate — through the coordinator-side zero-copy mapping
    of that shard's image, so pattern evaluation pays neither an IPC
    round trip nor the union-store gather the existence queries use.
    Variable-predicate accesses union over the owner shards in
    deterministic (shard, predicate) order.  Shard images partition the
    source store's triples exactly, so the union *is* the source store.
    """

    def __init__(self, group: "ShardGroup"):
        self.group = group
        # no single backing store — the base class attribute stays
        # unset on purpose so any accidental direct use fails loudly
        self.store = None

    def _owner_mapped(self, predicate: str):
        """The owner shard's coordinator-side mapping, or ``None`` for
        a predicate the source store never contained."""
        shard = self.group.manifest.predicates.get(predicate)
        if shard is None:
            return None
        return self.group._shard_mapped(shard)

    def _shards(self) -> List[int]:
        return list(range(self.group.manifest.shards))

    def scan(
        self, s: Opt[str], p: Opt[str], o: Opt[str]
    ) -> Iterator[Tuple[str, str, str]]:
        if p is None:
            for predicate in sorted(self.group.manifest.predicates):
                yield from self.scan(s, predicate, o)
            return
        mapped = self._owner_mapped(p)
        if mapped is None:
            return
        if s is not None:
            targets = mapped.successors(s, p)
            if o is not None:
                if o in targets:
                    yield (s, p, o)
                return
            for target in sorted(targets):
                yield (s, p, target)
            return
        if o is not None:
            for source in sorted(mapped.predecessors(o, p)):
                yield (source, p, o)
            return
        # both ends free: hydration-free CSR scan of the owner image
        yield from mapped.triples(None, p, None)

    def successors(self, node: str, predicate: str) -> FrozenSet[str]:
        mapped = self._owner_mapped(predicate)
        if mapped is None:
            return frozenset()
        return mapped.successors(node, predicate)

    def predecessors(self, node: str, predicate: str) -> FrozenSet[str]:
        mapped = self._owner_mapped(predicate)
        if mapped is None:
            return frozenset()
        return mapped.predecessors(node, predicate)

    def out_edges(self, node: str) -> Iterator[Tuple[str, str]]:
        for shard in self._shards():
            mapped = self.group._shard_mapped(shard)
            if mapped.node_id(node) is None:
                continue
            for predicate in mapped.predicate_names():
                for target in sorted(mapped.successors(node, predicate)):
                    yield (predicate, target)

    def in_edges(self, node: str) -> Iterator[Tuple[str, str]]:
        for shard in self._shards():
            mapped = self.group._shard_mapped(shard)
            if mapped.node_id(node) is None:
                continue
            for predicate in mapped.predicate_names():
                for source in sorted(mapped.predecessors(node, predicate)):
                    yield (predicate, source)

    def nodes(self) -> FrozenSet[str]:
        return frozenset(self.group.node_names())
