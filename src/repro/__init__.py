"""repro — a toolkit for empirical theory-of-data studies.

Open-source reproduction of the systems surveyed in Wim Martens,
"Towards Theory for Real-World Data" (PODS 2022).  Subpackages:

* :mod:`repro.regex` — regular expressions, automata, fragments,
  decision procedures (Sections 2, 4.2, Appendix A).
* :mod:`repro.trees` — tree-structured data: XML/JSON, DTDs, extended
  DTDs, pattern-based schemas, streaming validation, schema inference
  (Sections 3–6).
* :mod:`repro.graphs` — graph-structured data: RDF stores, dataset
  generators, treewidth estimation, regular path queries (Section 7).
* :mod:`repro.sparql` — the SPARQL fragment: parsing, evaluation and the
  structural analyses behind Tables 3–8 (Section 9).
* :mod:`repro.logs` — query-log corpora, calibrated workload generators,
  and the SHARQL-style analysis pipeline (Sections 9, 11).
* :mod:`repro.core` — the practical-study orchestration layer tying the
  pieces together.
* :mod:`repro.testing` — seedable differential fuzzing harness pitting
  the fast implementations against reference oracles.
"""

__version__ = "1.0.0"

from . import core, errors, graphs, logs, regex, sparql, testing, trees

__all__ = [
    "core",
    "errors",
    "graphs",
    "logs",
    "regex",
    "sparql",
    "testing",
    "trees",
    "__version__",
]
