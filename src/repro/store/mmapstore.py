"""Memory-mapped persistent triple-store images.

The paper's program is empirical theory over real-world *scale*, and
the process pool is how this toolkit reaches more than one core — but a
pool is only as cheap as what crosses it.  Shipping a pickled
:class:`~repro.graphs.rdf.TripleStore` to every worker costs a full
serialize/deserialize of the data per process and loses the store's
identity (and with it every fingerprint-keyed cache) at each hop.  This
module replaces that with an *artifact*: the store is frozen once into
an on-disk image, and every consumer — worker processes, the service
tier, the next session after a restart — attaches to the same image by
path and reads the same physical pages.

Image layout (format 2)
-----------------------

::

    magic        8 bytes   b"REPROIMG"
    header_len   8 bytes   unsigned little-endian
    header       JSON (UTF-8): format version, byte order, fingerprint,
                 content accumulator, triple/node counts, predicate
                 names, and a section table of [offset, length] pairs
    sections     8-byte-aligned raw arrays:
                 * node_blob / node_offsets — the interned string
                   table: UTF-8 bytes plus int64 offsets (offsets[i] ..
                   offsets[i+1] is node i's name)
                 * per predicate, forward and backward CSR adjacency:
                   keys (sorted node ids with at least one edge),
                   indptr (len(keys)+1 prefix offsets), targets
                   (neighbour ids, sorted per key)
                 * optional (format >= 2, <= 63 predicates):
                   label_out / label_in — one int64 bitmask per node,
                   bit ``pid`` set when the node has at least one
                   outgoing (resp. incoming) edge with predicate ``pid``

Format 2 adds the optional per-node label summary (the sharded tier's
frontier-exchange coordinator prunes scatter payload with it: an entry
ships to a shard only when the entry's pending NFA transitions can
actually read one of the node's local labels).  Images with more than
63 predicates omit the summary (a node bitmask must fit one int64), and
format-1 images predate it — readers treat both as "no summary" and
degrade to shard-level predicate pruning.  Format-1 images remain fully
loadable.

All arrays are little-endian int64.  The header carries the writing
store's content fingerprint (the same order-independent digest
:meth:`TripleStore.fingerprint` maintains incrementally), so a mapped
store reports the *identical* fingerprint as the live store it was
frozen from — fingerprint-keyed caches (the service result cache, the
log analysis cache) stay addressable across processes and restarts.

Zero-copy reads
---------------

:class:`MappedTripleStore` subclasses :class:`TripleStore` but never
materializes dict indexes for the hot path: the compiled RPQ engine
consumes ``forward_adjacency``/``backward_adjacency`` mappings, and
here those are :class:`_CSRAdjacency` views whose lookups bisect the
mapped ``keys`` array and return a ``memoryview`` slice of the mapped
``targets`` pages — no ids are copied, and N worker processes share one
set of physical pages.  The string-keyed API (the SPARQL evaluator, the
dataset metrics) hydrates lazily: the first string-index access builds
the classical SPO/POS/OSP dicts from the mapped arrays, so purely
integer workloads never pay for them.

Pickling a mapped store ships only its *path* (see
:meth:`MappedTripleStore.__reduce__`): a process-pool task that closes
over a mapped store costs a few hundred bytes on the wire, and the
receiving process re-attaches via the per-process :func:`attach` cache,
so many tasks in one worker share one mapping.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from bisect import bisect_left
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterator, List, Optional as Opt, Tuple, Union

from ..errors import StoreFrozenError, StoreImageError
from ..graphs.rdf import TripleStore

MAGIC = b"REPROIMG"
FORMAT_VERSION = 2
#: header formats this reader accepts (format 1 lacks the label-summary
#: sections; everything else is identical)
SUPPORTED_FORMATS = (1, 2)
#: per-node label bitmasks are one int64 each — predicate ids above 62
#: have no bit, so images with more predicates omit the summary
MAX_SUMMARY_PREDICATES = 63
_PREFIX = struct.Struct("<8sQ")  # magic + header length
_ITEM = struct.Struct("<q")


PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _csr_of(adjacency: Dict[int, List[int]]) -> Tuple[List[int], List[int], List[int]]:
    """(keys, indptr, targets) of one adjacency dict — keys sorted,
    targets sorted per key, so identical data yields identical bytes
    regardless of insertion order."""
    keys = sorted(adjacency)
    indptr = [0]
    targets: List[int] = []
    for key in keys:
        targets.extend(sorted(adjacency[key]))
        indptr.append(len(targets))
    return keys, indptr, targets


def _pack(values: List[int]) -> bytes:
    out = bytearray(len(values) * 8)
    pack_into = _ITEM.pack_into
    for index, value in enumerate(values):
        pack_into(out, index * 8, value)
    return bytes(out)


def write_image(
    store: TripleStore, path: PathLike, *, image_format: int = FORMAT_VERSION
) -> str:
    """Freeze ``store`` into an image at ``path`` (atomic: written to a
    sibling temp file, fsynced, then renamed over).  Returns the
    content fingerprint recorded in the header.

    ``image_format`` pins the written header format (tests and
    migration tooling write format-1 images to prove old images still
    load); format 2 — the default — adds the per-node label-summary
    sections when the store has few enough predicates to bitmask.
    """
    if isinstance(store, MappedTripleStore):
        raise StoreFrozenError(
            "store is already a mapped image; copy the file instead"
        )
    if image_format not in SUPPORTED_FORMATS:
        raise StoreImageError(
            f"cannot write unknown image format {image_format!r}"
        )
    path = Path(path)
    names = store.node_names()
    blob_parts: List[bytes] = []
    offsets = [0]
    position = 0
    for name in names:
        encoded = name.encode("utf-8")
        blob_parts.append(encoded)
        position += len(encoded)
        offsets.append(position)
    node_blob = b"".join(blob_parts)
    predicates = store.predicate_names()

    sections: List[Tuple[str, bytes]] = [
        ("node_blob", node_blob),
        ("node_offsets", _pack(offsets)),
    ]
    summarize = (
        image_format >= 2 and len(predicates) <= MAX_SUMMARY_PREDICATES
    )
    out_masks = [0] * len(names) if summarize else None
    in_masks = [0] * len(names) if summarize else None
    csr_table: List[List[str]] = []
    for pid in range(len(predicates)):
        entry: List[str] = []
        for direction, adjacency in (
            ("f", store.forward_adjacency(pid)),
            ("b", store.backward_adjacency(pid)),
        ):
            keys, indptr, targets = _csr_of(adjacency)
            if summarize:
                masks = out_masks if direction == "f" else in_masks
                bit = 1 << pid
                for key in keys:
                    masks[key] |= bit
            for part, values in (
                ("keys", keys),
                ("indptr", indptr),
                ("targets", targets),
            ):
                section_name = f"{direction}{part}_{pid}"
                sections.append((section_name, _pack(values)))
                entry.append(section_name)
        csr_table.append(entry)
    if summarize:
        sections.append(("label_out", _pack(out_masks)))
        sections.append(("label_in", _pack(in_masks)))

    header: Dict[str, Any] = {
        "format": image_format,
        "byteorder": "little",
        "fingerprint": store.fingerprint(),
        "content_acc": f"{store._content_acc:x}",
        "triples": len(store),
        "nodes": len(names),
        "predicates": predicates,
        "csr": csr_table,
        "label_summary": bool(summarize),
    }
    if image_format < 2:
        del header["label_summary"]
    # lay the sections out after the header, 8-byte aligned
    placed: Dict[str, Tuple[int, int]] = {}
    # two passes: the header's own length shifts the offsets, so fix the
    # header size first with placeholder offsets of the right magnitude
    def layout(header_bytes_len: int) -> int:
        base = _PREFIX.size + header_bytes_len
        base += (-base) % 8
        cursor = base
        for name, payload in sections:
            placed[name] = (cursor, len(payload))
            cursor += len(payload)
            cursor += (-cursor) % 8
        return base

    header["sections"] = {name: [0, 0] for name, _ in sections}
    provisional = json.dumps(header, ensure_ascii=False).encode("utf-8")
    # offsets rendered as fixed-width strings would complicate nothing;
    # instead iterate: recompute until the encoded length stabilizes
    # (it does after one extra round, since digit counts are bounded)
    for _ in range(4):
        layout(len(provisional))
        header["sections"] = {
            name: list(placed[name]) for name, _ in sections
        }
        encoded = json.dumps(header, ensure_ascii=False).encode("utf-8")
        if len(encoded) == len(provisional):
            provisional = encoded
            break
        provisional = encoded
    else:  # pragma: no cover - the loop converges in <= 2 rounds
        raise StoreImageError("header layout failed to converge")
    base = layout(len(provisional))
    header["sections"] = {name: list(placed[name]) for name, _ in sections}
    encoded = json.dumps(header, ensure_ascii=False).encode("utf-8")
    if len(encoded) != len(provisional):  # pragma: no cover
        raise StoreImageError("header layout failed to converge")

    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_PREFIX.pack(MAGIC, len(encoded)))
        handle.write(encoded)
        cursor = _PREFIX.size + len(encoded)
        padding = (-cursor) % 8
        handle.write(b"\x00" * padding)
        cursor += padding
        for name, payload in sections:
            offset, _length = placed[name]
            if offset != cursor:  # pragma: no cover - layout invariant
                raise StoreImageError("section layout drifted")
            handle.write(payload)
            cursor += len(payload)
            padding = (-cursor) % 8
            handle.write(b"\x00" * padding)
            cursor += padding
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return header["fingerprint"]


def freeze(store: TripleStore, path: PathLike) -> "MappedTripleStore":
    """Write ``store``'s image to ``path`` and open it mapped."""
    write_image(store, path)
    return MappedTripleStore.load(path)


# ---------------------------------------------------------------------------
# header peeking
# ---------------------------------------------------------------------------


def read_header(path: PathLike) -> Dict[str, Any]:
    """The image header as a dict — a plain read, no mmap, so callers
    can inspect fingerprints and counts without attaching."""
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size:
            raise StoreImageError(f"{path}: truncated image prefix")
        magic, header_len = _PREFIX.unpack(prefix)
        if magic != MAGIC:
            raise StoreImageError(
                f"{path}: not a repro store image (magic {magic!r})"
            )
        # bound the declared length by the actual file size before
        # allocating: a corrupt length field must be a typed error,
        # not a giant read() attempt
        remaining = os.fstat(handle.fileno()).st_size - _PREFIX.size
        if header_len < 0 or header_len > remaining:
            raise StoreImageError(
                f"{path}: image header declares {header_len} bytes but "
                f"only {remaining} follow the prefix"
            )
        encoded = handle.read(header_len)
    if len(encoded) < header_len:
        raise StoreImageError(f"{path}: truncated image header")
    try:
        header = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreImageError(f"{path}: corrupt image header: {exc}")
    if not isinstance(header, dict):
        raise StoreImageError(f"{path}: image header is not an object")
    if header.get("format") not in SUPPORTED_FORMATS:
        raise StoreImageError(
            f"{path}: unsupported image format {header.get('format')!r}"
        )
    if header.get("byteorder") != sys.byteorder:
        raise StoreImageError(
            f"{path}: image byte order {header.get('byteorder')!r} does "
            f"not match this host ({sys.byteorder})"
        )
    return header


def image_fingerprint(path: PathLike) -> str:
    """The content fingerprint recorded in an image's header."""
    return read_header(path)["fingerprint"]


# ---------------------------------------------------------------------------
# zero-copy adjacency views
# ---------------------------------------------------------------------------


class _CSRAdjacency:
    """A read-only ``{node id: neighbour ids}`` mapping over mapped CSR
    arrays.

    ``get`` bisects the sorted ``keys`` array and answers with a
    ``memoryview`` slice of the ``targets`` pages — the engine iterates
    it, folds it into sets, and never copies.  Implements exactly the
    mapping surface the compiled engine and the hydration pass use
    (``get``/``[]``/``in``/``keys``/``items``/``values``/len/bool/iter).
    """

    __slots__ = ("_keys", "_indptr", "_targets")

    def __init__(self, keys, indptr, targets):
        self._keys = keys
        self._indptr = indptr
        self._targets = targets

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return len(self._keys) > 0

    def __iter__(self):
        return iter(self._keys)

    def keys(self):
        return self._keys

    def __contains__(self, nid: int) -> bool:
        keys = self._keys
        index = bisect_left(keys, nid)
        return index < len(keys) and keys[index] == nid

    def get(self, nid: int, default=None):
        keys = self._keys
        index = bisect_left(keys, nid)
        if index == len(keys) or keys[index] != nid:
            return default
        indptr = self._indptr
        return self._targets[indptr[index] : indptr[index + 1]]

    def __getitem__(self, nid: int):
        row = self.get(nid)
        if row is None:
            raise KeyError(nid)
        return row

    def items(self):
        indptr, targets = self._indptr, self._targets
        for index, key in enumerate(self._keys):
            yield key, targets[indptr[index] : indptr[index + 1]]

    def values(self):
        indptr, targets = self._indptr, self._targets
        for index in range(len(self._keys)):
            yield targets[indptr[index] : indptr[index + 1]]

    def _release(self) -> None:
        for view in (self._keys, self._indptr, self._targets):
            view.release()


# ---------------------------------------------------------------------------
# the mapped store
# ---------------------------------------------------------------------------

#: per-process attach cache: many pool tasks, one mapping per image
_ATTACHED: Dict[str, "MappedTripleStore"] = {}


def attach(path: PathLike) -> "MappedTripleStore":
    """Open ``path`` mapped, memoized per process.  This is the unpickle
    target of :meth:`MappedTripleStore.__reduce__`: every task a worker
    receives for the same image resolves to the same store object (and
    therefore the same engine specialization caches)."""
    key = os.path.abspath(str(path))
    store = _ATTACHED.get(key)
    if store is None:
        store = MappedTripleStore(key)
        _ATTACHED[key] = store
    return store


def detach_all() -> None:
    """Drop the per-process attach cache (tests use this to simulate a
    fresh worker process)."""
    _ATTACHED.clear()


class MappedTripleStore(TripleStore):
    """A :class:`TripleStore` opened read-only from an on-disk image.

    The engine-facing integer API (``forward_adjacency`` /
    ``backward_adjacency`` / ``node_id`` / ``node_names`` /
    ``predicate_id`` / ``fingerprint``) is served straight from the
    mapped arrays; the string-keyed dict indexes hydrate lazily on
    first use.  Mutation raises :class:`~repro.errors.StoreFrozenError`.
    """

    def __init__(self, path: PathLike):
        # deliberately no super().__init__(): a mapped store has no
        # mutable dict indexes — the three string-keyed index attributes
        # are lazy properties below
        self._path = os.path.abspath(str(path))
        header = read_header(self._path)
        with open(self._path, "rb") as handle:
            self._mmap = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        self._mv = memoryview(self._mmap)
        sections = header.get("sections")
        if not isinstance(sections, dict):
            raise StoreImageError(f"{self._path}: header has no sections")

        def int64(name: str):
            try:
                offset, length = sections[name]
            except (KeyError, TypeError, ValueError):
                raise StoreImageError(
                    f"{self._path}: missing section {name!r}"
                )
            if offset + length > len(self._mv) or length % 8:
                raise StoreImageError(
                    f"{self._path}: section {name!r} out of bounds"
                )
            return self._mv[offset : offset + length].cast("q")

        blob_offset, blob_length = sections.get("node_blob", (0, 0))
        if blob_offset + blob_length > len(self._mv):
            raise StoreImageError(f"{self._path}: string table truncated")
        self._node_blob = self._mv[blob_offset : blob_offset + blob_length]
        self._node_offsets = int64("node_offsets")
        self._num_nodes = int(header["nodes"])
        if len(self._node_offsets) != self._num_nodes + 1:
            raise StoreImageError(
                f"{self._path}: string table offsets disagree with the "
                f"node count"
            )
        self._size = int(header["triples"])
        self._version = 0
        self._content_acc = int(header.get("content_acc", "0"), 16)
        self._header_fingerprint = header["fingerprint"]
        predicates = header.get("predicates")
        if not isinstance(predicates, list):
            raise StoreImageError(f"{self._path}: header has no predicates")
        self._pred_names: List[str] = [str(name) for name in predicates]
        self._pred_ids = {
            name: pid for pid, name in enumerate(self._pred_names)
        }
        csr = header.get("csr")
        if not isinstance(csr, list) or len(csr) != len(self._pred_names):
            raise StoreImageError(f"{self._path}: CSR table disagrees")
        self._fwd = []
        self._bwd = []
        for entry in csr:
            fk, fi, ft, bk, bi, bt = entry
            self._fwd.append(_CSRAdjacency(int64(fk), int64(fi), int64(ft)))
            self._bwd.append(_CSRAdjacency(int64(bk), int64(bi), int64(bt)))
        self._label_out = None
        self._label_in = None
        if header.get("label_summary") and "label_out" in sections:
            label_out = int64("label_out")
            label_in = int64("label_in")
            if (
                len(label_out) != self._num_nodes
                or len(label_in) != self._num_nodes
            ):
                raise StoreImageError(
                    f"{self._path}: label summary disagrees with the "
                    f"node count"
                )
            self._label_out = label_out
            self._label_in = label_in
        self._succ_cache = {}
        self._pred_cache = {}
        self._names: Opt[List[str]] = None
        self._ids_map: Opt[Dict[str, int]] = None
        self._string_indexes: Opt[Tuple[dict, dict, dict]] = None
        self._closed = False

    @classmethod
    def load(cls, path: PathLike) -> "MappedTripleStore":
        """Open an image written by :func:`write_image` /
        :meth:`TripleStore.save`.  The heavy data stays on the mapped
        pages; opening costs a header parse plus one memoryview per
        array, independent of triple count."""
        return cls(path)

    @property
    def path(self) -> str:
        """Absolute path of the backing image."""
        return self._path

    def close(self) -> None:
        """Release the mapping (best effort: views handed out by
        ``forward_adjacency`` rows stay valid only until this call)."""
        if self._closed:
            return
        self._closed = True
        for adjacency in (*self._fwd, *self._bwd):
            adjacency._release()
        if self._label_out is not None:
            self._label_out.release()
            self._label_in.release()
        self._node_offsets.release()
        self._node_blob.release()
        self._mv.release()
        self._mmap.close()
        _ATTACHED.pop(self._path, None)

    def __enter__(self) -> "MappedTripleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- pickling: the path is the payload --------------------------------------

    def __reduce__(self):
        return (attach, (self._path,))

    # -- frozen-ness -------------------------------------------------------------

    def add(self, s: str, p: str, o: str) -> bool:
        raise StoreFrozenError(
            f"store mapped from {self._path} is frozen; load the triples "
            f"into a TripleStore, mutate, and save a new image"
        )

    def fingerprint(self) -> str:
        """The content fingerprint recorded at freeze time — identical
        to the live store's at :func:`write_image` time, across every
        process that maps this image."""
        return self._header_fingerprint

    # -- per-node label summary (format >= 2) -------------------------------------

    @property
    def has_label_summary(self) -> bool:
        """Whether this image carries the per-node label bitmasks
        (format >= 2, few enough predicates)."""
        return self._label_out is not None

    def out_label_mask(self, nid: int) -> int:
        """Bitmask of predicate ids the node has outgoing edges under
        (0 when the image has no summary — callers must check
        :attr:`has_label_summary` before pruning on it)."""
        return self._label_out[nid] if self._label_out is not None else 0

    def in_label_mask(self, nid: int) -> int:
        """Bitmask of predicate ids the node has incoming edges under."""
        return self._label_in[nid] if self._label_in is not None else 0

    # -- engine-facing integer API ------------------------------------------------

    def node_count(self) -> int:
        return self._num_nodes

    def node_name(self, nid: int) -> str:
        names = self._names
        if names is not None:
            return names[nid]
        if not 0 <= nid < self._num_nodes:
            raise IndexError(nid)
        offsets = self._node_offsets
        return str(
            self._node_blob[offsets[nid] : offsets[nid + 1]], "utf-8"
        )

    def node_names(self) -> List[str]:
        names = self._names
        if names is None:
            blob = bytes(self._node_blob)
            offsets = self._node_offsets
            names = [
                blob[offsets[i] : offsets[i + 1]].decode("utf-8")
                for i in range(self._num_nodes)
            ]
            self._names = names
        return names

    def node_id(self, name: str) -> Opt[int]:
        ids_map = self._ids_map
        if ids_map is None:
            ids_map = {
                node: nid for nid, node in enumerate(self.node_names())
            }
            self._ids_map = ids_map
        return ids_map.get(name)

    def predicate_names(self) -> List[str]:
        return list(self._pred_names)

    # predicate_id / forward_adjacency / backward_adjacency / version
    # are inherited: _pred_ids, _fwd, _bwd, and _version are all set up
    # in __init__ with mapped-backed values

    # -- string-keyed fast paths (no hydration) -----------------------------------

    def __contains__(self, triple) -> bool:
        s, p, o = triple
        pid = self._pred_ids.get(p)
        if pid is None:
            return False
        sid, oid = self.node_id(s), self.node_id(o)
        if sid is None or oid is None:
            return False
        row = self._fwd[pid].get(sid)
        if row is None:
            return False
        index = bisect_left(row, oid)  # targets are sorted per key
        return index < len(row) and row[index] == oid

    def successors(self, node: str, predicate: str) -> FrozenSet[str]:
        key = (node, predicate)
        cached = self._succ_cache.get(key)
        if cached is None:
            cached = self._row_names(self._fwd, node, predicate)
            self._succ_cache[key] = cached
        return cached

    def predecessors(self, node: str, predicate: str) -> FrozenSet[str]:
        key = (node, predicate)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = self._row_names(self._bwd, node, predicate)
            self._pred_cache[key] = cached
        return cached

    def _row_names(self, side, node: str, predicate: str) -> FrozenSet[str]:
        pid = self._pred_ids.get(predicate)
        nid = self.node_id(node)
        if pid is None or nid is None:
            return frozenset()
        row = side[pid].get(nid)
        if not row:
            return frozenset()
        names = self.node_names()
        return frozenset(names[oid] for oid in row)

    def nodes(self) -> FrozenSet[str]:
        return frozenset(self.node_names())

    def predicates(self) -> FrozenSet[str]:
        # every predicate in an image has at least one triple (live
        # stores only intern predicates on successful add)
        return frozenset(self._pred_names)

    def subjects(self) -> FrozenSet[str]:
        names = self.node_names()
        return frozenset(
            names[nid]
            for adjacency in self._fwd
            for nid in adjacency.keys()
        )

    def objects(self) -> FrozenSet[str]:
        names = self.node_names()
        return frozenset(
            names[nid]
            for adjacency in self._bwd
            for nid in adjacency.keys()
        )

    # -- lazy hydration of the classical dict indexes -----------------------------

    def _hydrate(self) -> Tuple[dict, dict, dict]:
        """Build SPO/POS/OSP string-keyed dicts from the mapped arrays
        (once, on first demand — the SPARQL evaluator and the dataset
        metrics walk these; the RPQ engine never does)."""
        indexes = self._string_indexes
        if indexes is None:
            names = self.node_names()
            spo: Dict[str, Dict[str, set]] = {}
            pos: Dict[str, Dict[str, set]] = {}
            osp: Dict[str, Dict[str, set]] = {}
            for pid, predicate in enumerate(self._pred_names):
                by_object = pos.setdefault(predicate, {})
                for sid, row in self._fwd[pid].items():
                    subject = names[sid]
                    objects = {names[oid] for oid in row}
                    spo.setdefault(subject, {})[predicate] = objects
                    for obj in objects:
                        by_object.setdefault(obj, set()).add(subject)
                        osp.setdefault(obj, {}).setdefault(
                            subject, set()
                        ).add(predicate)
            indexes = (spo, pos, osp)
            self._string_indexes = indexes
        return indexes

    @property
    def _spo(self):
        return self._hydrate()[0]

    @property
    def _pos(self):
        return self._hydrate()[1]

    @property
    def _osp(self):
        return self._hydrate()[2]

    # -- iteration ----------------------------------------------------------------

    def triples(
        self,
        s: Opt[str] = None,
        p: Opt[str] = None,
        o: Opt[str] = None,
    ) -> Iterator[Tuple[str, str, str]]:
        if s is None and o is None:
            # full or per-predicate scans come straight off the CSR
            # arrays — no hydration for the common analytics pass
            names = self.node_names()
            predicates = (
                [p] if p is not None else list(self._pred_names)
            )
            for predicate in predicates:
                pid = self._pred_ids.get(predicate)
                if pid is None:
                    continue
                for sid, row in self._fwd[pid].items():
                    subject = names[sid]
                    for oid in row:
                        yield (subject, predicate, names[oid])
            return
        yield from super().triples(s, p, o)
