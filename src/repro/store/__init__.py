"""Persistent triple-store images (:mod:`repro.store.mmapstore`).

The in-memory :class:`~repro.graphs.rdf.TripleStore` is the substrate
every engine in the toolkit runs on; this package makes it a *restart-
stable artifact*: :func:`~repro.store.mmapstore.write_image` freezes a
store into an on-disk image of fixed-width id arrays, CSR adjacency,
and an interned string table, and
:class:`~repro.store.mmapstore.MappedTripleStore` opens that image via
``mmap`` in microseconds — the same read API, zero-copy, with pages
shared read-only across worker processes.
"""

from .mmapstore import (
    MAGIC,
    MappedTripleStore,
    attach,
    freeze,
    image_fingerprint,
    read_header,
    write_image,
)

__all__ = [
    "MAGIC",
    "MappedTripleStore",
    "attach",
    "freeze",
    "image_fingerprint",
    "read_header",
    "write_image",
]
