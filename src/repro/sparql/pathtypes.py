"""Property-path type taxonomy (Section 9.6, Table 8).

The *type* of a property path abstracts its IRIs: replace each distinct
IRI by a letter in order of first occurrence (repeated IRIs reuse their
letter).  Inverse atoms ``^p`` count as plain labels (the paper treats
them so, noting ``^`` usage separately), and disjunctions of two or more
atoms — as well as negated sets ``!a`` and ``(a|!a)`` — become capital
letters.

:func:`path_type` yields the canonical type string (e.g. ``a*b*`` for
``wdt:P31*/wdt:P279*``); :func:`aggregate_type` additionally merges each
type with its reverse (the paper's row for ``ab*`` also holds ``a*b``).
:func:`table8_bucket` maps a path to the named Table 8 rows;
:func:`type_regex` produces a word regex over the letters so the
fragment classifiers of :mod:`repro.regex.classes` (simple transitive,
C_tract, T_tract) apply directly.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional as Opt, Tuple

from ..regex.ast import Regex
from ..regex.classes import is_ctract, is_simple_transitive, is_ttract
from ..regex.parser import parse as parse_regex
from .paths_ast import (
    PathAlternative,
    PathAtom,
    PathInverse,
    PathNegatedSet,
    PathOptional,
    PathPlus,
    PathStar,
    PathSequence,
    PropertyPath,
)

_LOWER = string.ascii_lowercase
_UPPER = string.ascii_uppercase


class _Namer:
    def __init__(self):
        self.lower: Dict[str, str] = {}
        self.upper: Dict[Tuple, str] = {}

    def letter(self, iri: str) -> str:
        if iri not in self.lower:
            index = len(self.lower)
            self.lower[iri] = (
                _LOWER[index] if index < 26 else f"x{index}"
            )
        return self.lower[iri]

    def capital(self, key: Tuple) -> str:
        if key not in self.upper:
            index = len(self.upper)
            self.upper[key] = (
                _UPPER[index] if index < 26 else f"X{index}"
            )
        return self.upper[key]


def _atomic_disjunction(path: PropertyPath) -> Opt[Tuple]:
    """If ``path`` is a disjunction of ≥ 2 atoms (or a negated set), a
    canonical key for it; else None."""
    if isinstance(path, PathNegatedSet):
        return ("nps", tuple(sorted(path.forward)), tuple(sorted(path.inverse)))
    if isinstance(path, PathAlternative):
        atoms: List[str] = []
        for part in path.parts:
            if isinstance(part, PathAtom):
                atoms.append(part.iri)
            elif isinstance(part, PathInverse) and isinstance(
                part.child, PathAtom
            ):
                atoms.append(f"^{part.child.iri}")
            elif isinstance(part, PathNegatedSet):
                atoms.append(part.to_string())
            else:
                return None
        return ("alt", tuple(sorted(atoms)))
    return None


def path_type(path: PropertyPath, namer: Opt[_Namer] = None) -> str:
    """The canonical type string of a property path."""
    namer = namer or _Namer()
    return _type_of(path, namer)


def _type_of(path: PropertyPath, namer: _Namer) -> str:
    if isinstance(path, PathAtom):
        return namer.letter(path.iri)
    if isinstance(path, PathInverse):
        if isinstance(path.child, PathAtom):
            # '^a' is treated as a single label (same letter as 'a'
            # would get for the same IRI read forward? No: a distinct
            # atom, so a distinct letter keyed by '^iri')
            return namer.letter(f"^{path.child.iri}")
        return _type_of(path.child, namer)
    disj = _atomic_disjunction(path)
    if disj is not None:
        return namer.capital(disj)
    if isinstance(path, PathSequence):
        return "".join(_type_of(part, namer) for part in path.parts)
    if isinstance(path, PathAlternative):
        inner = "|".join(_type_of(part, namer) for part in path.parts)
        return f"({inner})"
    if isinstance(path, PathStar):
        return _wrap(_type_of(path.child, namer)) + "*"
    if isinstance(path, PathPlus):
        return _wrap(_type_of(path.child, namer)) + "+"
    if isinstance(path, PathOptional):
        return _wrap(_type_of(path.child, namer)) + "?"
    raise TypeError(f"unknown path node {path!r}")


def _wrap(text: str) -> str:
    if len(text) == 1:
        return text
    if text.startswith("(") and text.endswith(")"):
        return text
    return f"({text})"


def _reverse_path(path: PropertyPath) -> PropertyPath:
    """The reverse of a path (read right-to-left, atoms flipped)."""
    if isinstance(path, PathSequence):
        return PathSequence(
            tuple(_reverse_path(p) for p in reversed(path.parts))
        )
    if isinstance(path, PathAlternative):
        return PathAlternative(
            tuple(_reverse_path(p) for p in path.parts)
        )
    if isinstance(path, PathStar):
        return PathStar(_reverse_path(path.child))
    if isinstance(path, PathPlus):
        return PathPlus(_reverse_path(path.child))
    if isinstance(path, PathOptional):
        return PathOptional(_reverse_path(path.child))
    return path  # atoms keep their identity at the type level


def aggregate_type(path: PropertyPath) -> str:
    """Type with reverse aggregation: a path and its mirror get the same
    string (the paper reports ``ab*`` and ``a*b`` in one row).  We take
    the lexicographically smaller of the two type strings."""
    forward = path_type(path)
    backward = path_type(_reverse_path(path))
    return min(forward, backward)


def type_regex(path: PropertyPath) -> Regex:
    """A word regex over the type's letters (capitals stay one symbol)."""
    return parse_regex(path_type(path), multi_char=False)


def is_transitive_type(path: PropertyPath) -> bool:
    return path.is_transitive()


# ---------------------------------------------------------------------------
# Table 8 buckets
# ---------------------------------------------------------------------------

TRANSITIVE_BUCKETS = (
    "a*",
    "ab*|a+",
    "ab*c*",
    "A*",
    "ab*c",
    "a*b*",
    "abc*",
    "a?b*",
    "A+",
    "Ab*",
    "other transitive",
)

NON_TRANSITIVE_BUCKETS = (
    "a1...ak",
    "A",
    "A?",
    "a1a2?...ak?",
    "^a",
    "abc?",
    "other non-transitive",
)

TABLE8_BUCKETS = TRANSITIVE_BUCKETS + NON_TRANSITIVE_BUCKETS

import re as _bucket_re

_BUCKET_PATTERNS: List[Tuple[str, str]] = [
    # (bucket, regex over the canonical type string)
    ("a*", r"[a-z]\*"),
    ("ab*|a+", r"[a-z][a-z]\*|[a-z]\+"),
    ("ab*c*", r"[a-z][a-z]\*[a-z]\*"),
    ("A*", r"[A-Z]\*"),
    ("ab*c", r"[a-z][a-z]\*[a-z]"),
    ("a*b*", r"[a-z]\*[a-z]\*"),
    ("abc*", r"[a-z][a-z][a-z]\*"),
    ("a?b*", r"[a-z]\?[a-z]\*"),
    ("A+", r"[A-Z]\+"),
    ("Ab*", r"[A-Z][a-z]\*|[a-z][A-Z]\*"),
    ("a1...ak", r"[a-z]{1,}"),
    ("A", r"[A-Z]"),
    ("A?", r"[A-Z]\?"),
    ("a1a2?...ak?", r"[a-z](?:[a-z]\?)+"),
    ("abc?", r"[a-z][a-z][a-z]\?"),
]


def table8_bucket(path: PropertyPath) -> str:
    """The Table 8 row for a property path.

    Reverse types are merged into one row as in the paper (``a*b`` is
    reported under ``ab*``), so both orientations of the type string are
    tried against each bucket.  ``^a`` is the row for a bare
    single-inverse-atom path.
    """
    if isinstance(path, PathInverse) and isinstance(path.child, PathAtom):
        return "^a"
    orientations = (path_type(path), path_type(_reverse_path(path)))
    transitive = path.is_transitive()
    for bucket, pattern in _BUCKET_PATTERNS:
        if bucket == "^a":
            continue
        if transitive and bucket not in TRANSITIVE_BUCKETS:
            continue
        if not transitive and bucket not in NON_TRANSITIVE_BUCKETS:
            continue
        if any(
            _bucket_re.fullmatch(pattern, text) for text in orientations
        ):
            return bucket
    return "other transitive" if transitive else "other non-transitive"


# ---------------------------------------------------------------------------
# Fragment classification of paths (Section 9.6's final paragraphs)
# ---------------------------------------------------------------------------


def path_is_simple_transitive(path: PropertyPath) -> bool:
    """Whether the path is a simple transitive expression (via its type
    regex) — the class covering > 99% of DBpedia-corpus paths."""
    try:
        return is_simple_transitive(type_regex(path))
    except Exception:
        return False


def path_in_ctract(path: PropertyPath) -> Opt[bool]:
    """C_tract membership of the path's type language (see
    :func:`repro.regex.classes.is_ctract` for the certificate rules)."""
    try:
        return is_ctract(type_regex(path))
    except Exception:
        return None


def path_in_ttract(path: PropertyPath) -> Opt[bool]:
    try:
        return is_ttract(type_regex(path))
    except Exception:
        return None
