"""A parser for the SPARQL 1.1 subset the paper's analyses need.

Covers: prologue (BASE/PREFIX), SELECT (with DISTINCT/REDUCED,
projection expressions and aggregates), ASK, CONSTRUCT, DESCRIBE, group
graph patterns with ``.``-separated triples blocks, predicate-object
lists (``;``) and object lists (``,``), OPTIONAL, UNION, MINUS, GRAPH,
SERVICE [SILENT], BIND, VALUES, FILTER with a practical expression
grammar (boolean connectives, comparisons, arithmetic, IN, function
calls, EXISTS/NOT EXISTS), subqueries, property paths (``/ | ^ * + ?``,
negated property sets, ``a`` as rdf:type), and the literal zoo (strings
with language tags and datatypes, numbers, booleans, blank nodes).

Everything parses into :mod:`repro.sparql.ast`.  Binary operators build
left-deep trees (``t1 . t2 . t3`` becomes ``And(And(t1, t2), t3)``),
matching the Bonifati et al. analysis conventions.
"""

from __future__ import annotations

import re as _re
from typing import List, Optional as Opt, Tuple

from ..errors import SPARQLParseError
from .ast import (
    And,
    Bind,
    BlankNode,
    BoolExpr,
    Comparison,
    EmptyPattern,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    Graph,
    IRI,
    Literal,
    Minus,
    Optional as OptPattern,
    OrderCondition,
    PathPattern,
    Pattern,
    Projection,
    Query,
    Service,
    SolutionModifier,
    StarExpr,
    SubQuery,
    Term,
    TermExpr,
    TriplePattern,
    Union as UnionPattern,
    Values,
    Var,
)
from .paths_ast import (
    PathAtom,
    PathInverse,
    PathNegatedSet,
    PathOptional,
    PathPlus,
    PathStar,
    PropertyPath,
    alternative,
    sequence,
)

_TOKEN_RE = _re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<STRING>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<VAR>[?$][A-Za-z_][A-Za-z_0-9]*)
  | (?P<BNODE>_:[A-Za-z_0-9]+)
  | (?P<NUMBER>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<PNAME>[A-Za-z_][A-Za-z_0-9.\-]*:[A-Za-z_0-9.\-]*|:[A-Za-z_0-9.\-]+)
  | (?P<KEYWORD>[A-Za-z_][A-Za-z_0-9\-]*)
  | (?P<OP>\^\^|&&|\|\||!=|<=|>=|[{}()\[\].;,*+?/|^!=<>@-])
    """,
    _re.VERBOSE,
)

# Tight per-class scanners for the table-driven lexer.  Each is a
# single character class (no alternation), so the sre engine runs them
# as one linear scan; the first-match/fallback semantics of the big
# alternation above are reproduced by the dispatch logic in
# :func:`tokenize`.
_IRIREF_RE = _re.compile(r'<[^<>"{}|^`\\\s]*>')
_STRING_DQ_RE = _re.compile(r'"(?:[^"\\]|\\.)*"')
_STRING_SQ_RE = _re.compile(r"'(?:[^'\\]|\\.)*'")
_NUMBER_RE = _re.compile(r"[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?")
_PNAME_SPAN_RE = _re.compile(r"[A-Za-z_0-9.\-]*")
#: prefix span plus an optional ':' + local span, in one scan; group 1
#: is present iff the name is a PNAME
_NAME_RE = _re.compile(r"[A-Za-z_0-9.\-]*(:[A-Za-z_0-9.\-]*)?")
_VARNAME_SPAN_RE = _re.compile(r"[A-Za-z_0-9]*")
_BNODE_BODY_RE = _re.compile(r"[A-Za-z_0-9]+")

_A_KEYWORD = "a"  # rdf:type shorthand
RDF_TYPE = IRI("rdf:type")

_STRING_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}
_HEX_DIGITS = "0123456789abcdefABCDEF"


def _unescape_string(raw: str, pos: int) -> str:
    """Decode the escape sequences of a quoted string's body.

    ``pos`` is the source offset of ``raw`` so error positions point at
    the offending escape, not the token start.
    """
    if "\\" not in raw:
        return raw
    out: List[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise SPARQLParseError(
                "dangling backslash in string", position=pos + i
            )
        esc = raw[i + 1]
        if esc in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[esc])
            i += 2
            continue
        if esc in ("u", "U"):
            width = 4 if esc == "u" else 8
            hexpart = raw[i + 2 : i + 2 + width]
            if len(hexpart) < width or any(
                c not in _HEX_DIGITS for c in hexpart
            ):
                raise SPARQLParseError(
                    f"bad \\{esc} escape in string", position=pos + i
                )
            code = int(hexpart, 16)
            if code > 0x10FFFF:
                raise SPARQLParseError(
                    "string escape beyond U+10FFFF", position=pos + i
                )
            out.append(chr(code))
            i += 2 + width
            continue
        raise SPARQLParseError(
            f"bad escape \\{esc} in string", position=pos + i
        )
    return "".join(out)


class _Token:
    __slots__ = ("kind", "text", "pos", "_upper")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos
        self._upper: Opt[str] = None

    def upper(self) -> str:
        up = self._upper
        if up is None:
            up = self._upper = self.text.upper()
        return up

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})"


def tokenize_reference(text: str) -> List[_Token]:
    """The original regex lexer: one mega-alternation per token.

    Kept as the reference oracle for :func:`tokenize` — the ``lexer``
    differential target in :mod:`repro.testing` asserts both produce the
    same token stream (kinds, texts, positions) and the same error
    positions on malformed input.
    """
    tokens: List[_Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SPARQLParseError(
                f"unexpected character {text[pos]!r}", position=pos
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


# First-character dispatch classes for :func:`tokenize`.
_SCAN_WS = 1
_SCAN_NAME = 2
_SCAN_SIMPLE_OP = 3
_SCAN_VAR = 4
_SCAN_STRING = 5
_SCAN_IRI = 6
_SCAN_DIGIT = 7
_SCAN_DOT = 8
_SCAN_SIGN = 9
_SCAN_CARET = 10
_SCAN_BANG = 11
_SCAN_GT = 12
_SCAN_PIPE = 13
_SCAN_AMP = 14
_SCAN_COLON = 15
_SCAN_COMMENT = 16

_ASCII_WS = frozenset(" \t\n\r\x0b\x0c")
_NAME_START = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_"
)
_DIGITS = frozenset("0123456789")

_DISPATCH: dict = {}
for _ch in _ASCII_WS:
    _DISPATCH[_ch] = _SCAN_WS
for _ch in _NAME_START:
    _DISPATCH[_ch] = _SCAN_NAME
for _ch in _DIGITS:
    _DISPATCH[_ch] = _SCAN_DIGIT
for _ch in "{}()[];,*/=@":
    _DISPATCH[_ch] = _SCAN_SIMPLE_OP
_DISPATCH.update(
    {
        "?": _SCAN_VAR,
        "$": _SCAN_VAR,
        '"': _SCAN_STRING,
        "'": _SCAN_STRING,
        "<": _SCAN_IRI,
        ".": _SCAN_DOT,
        "+": _SCAN_SIGN,
        "-": _SCAN_SIGN,
        "^": _SCAN_CARET,
        "!": _SCAN_BANG,
        ">": _SCAN_GT,
        "|": _SCAN_PIPE,
        "&": _SCAN_AMP,
        ":": _SCAN_COLON,
        "#": _SCAN_COMMENT,
    }
)
del _ch


def tokenize(text: str) -> List[_Token]:
    """Table-driven scanner: first-char dispatch plus tight per-class
    scanners, with ``str.find`` fast paths for strings and comments.

    Produces exactly the token stream (and error positions) of
    :func:`tokenize_reference`; replacing the interpreted
    nine-way alternation with direct dispatch roughly halves tokenize
    time on real query logs.
    """
    tokens: List[_Token] = []
    append = tokens.append
    dispatch = _DISPATCH
    n = len(text)
    pos = 0
    while pos < n:
        ch = text[pos]
        code = dispatch.get(ch)
        if code == _SCAN_WS:
            pos += 1
            while pos < n and text[pos] in _ASCII_WS:
                pos += 1
            continue
        if code == _SCAN_NAME:
            # BNODE wins over PNAME (regex alternation order) and its
            # body class has no '.'/'-', so '_:a.b' lexes as '_:a'.
            if ch == "_" and pos + 1 < n and text[pos + 1] == ":":
                body = _BNODE_BODY_RE.match(text, pos + 2)
                if body is not None:
                    end = body.end()
                    append(_Token("BNODE", text[pos:end], pos))
                    pos = end
                    continue
            # the prefix span class excludes ':', so the PNAME
            # alternative matches iff the char right after the greedy
            # span is ':' — no backtracking needed, and one scan
            # resolves both the span and the colon test
            match = _NAME_RE.match(text, pos + 1)
            end = match.end()
            if match.group(1) is not None:
                append(_Token("PNAME", text[pos:end], pos))
                pos = end
                continue
            # KEYWORD has the PNAME prefix class minus '.', so the
            # keyword ends at the first dot of the span (if any)
            dot = text.find(".", pos + 1, end)
            if dot != -1:
                end = dot
            append(_Token("KEYWORD", text[pos:end], pos))
            pos = end
            continue
        if code == _SCAN_SIMPLE_OP:
            append(_Token("OP", ch, pos))
            pos += 1
            continue
        if code == _SCAN_VAR:
            if pos + 1 < n and text[pos + 1] in _NAME_START:
                end = _VARNAME_SPAN_RE.match(text, pos + 2).end()
                append(_Token("VAR", text[pos:end], pos))
                pos = end
                continue
            if ch == "?":
                append(_Token("OP", "?", pos))
                pos += 1
                continue
            raise SPARQLParseError(
                f"unexpected character {ch!r}", position=pos
            )
        if code == _SCAN_STRING:
            close = text.find(ch, pos + 1)
            if close != -1 and text.find("\\", pos + 1, close) == -1:
                close += 1
                append(_Token("STRING", text[pos:close], pos))
                pos = close
                continue
            pattern = _STRING_DQ_RE if ch == '"' else _STRING_SQ_RE
            match = pattern.match(text, pos)
            if match is None:
                raise SPARQLParseError(
                    f"unexpected character {ch!r}", position=pos
                )
            append(_Token("STRING", match.group(), pos))
            pos = match.end()
            continue
        if code == _SCAN_IRI:
            match = _IRIREF_RE.match(text, pos)
            if match is not None:
                append(_Token("IRIREF", match.group(), pos))
                pos = match.end()
                continue
            if pos + 1 < n and text[pos + 1] == "=":
                append(_Token("OP", "<=", pos))
                pos += 2
                continue
            append(_Token("OP", "<", pos))
            pos += 1
            continue
        if code == _SCAN_DIGIT:
            match = _NUMBER_RE.match(text, pos)
            append(_Token("NUMBER", match.group(), pos))
            pos = match.end()
            continue
        if code == _SCAN_DOT:
            if pos + 1 < n and text[pos + 1] in _DIGITS:
                match = _NUMBER_RE.match(text, pos)
                append(_Token("NUMBER", match.group(), pos))
                pos = match.end()
                continue
            append(_Token("OP", ".", pos))
            pos += 1
            continue
        if code == _SCAN_SIGN:
            nxt = text[pos + 1] if pos + 1 < n else ""
            if nxt in _DIGITS or (
                nxt == "."
                and pos + 2 < n
                and text[pos + 2] in _DIGITS
            ):
                match = _NUMBER_RE.match(text, pos)
                append(_Token("NUMBER", match.group(), pos))
                pos = match.end()
                continue
            append(_Token("OP", ch, pos))
            pos += 1
            continue
        if code == _SCAN_COLON:
            end = _PNAME_SPAN_RE.match(text, pos + 1).end()
            if end == pos + 1:
                # the ':'-led PNAME alternative needs a nonempty local
                # part, and ':' is not an OP
                raise SPARQLParseError(
                    f"unexpected character {ch!r}", position=pos
                )
            append(_Token("PNAME", text[pos:end], pos))
            pos = end
            continue
        if code == _SCAN_CARET:
            if pos + 1 < n and text[pos + 1] == "^":
                append(_Token("OP", "^^", pos))
                pos += 2
                continue
            append(_Token("OP", "^", pos))
            pos += 1
            continue
        if code == _SCAN_BANG:
            if pos + 1 < n and text[pos + 1] == "=":
                append(_Token("OP", "!=", pos))
                pos += 2
                continue
            append(_Token("OP", "!", pos))
            pos += 1
            continue
        if code == _SCAN_GT:
            if pos + 1 < n and text[pos + 1] == "=":
                append(_Token("OP", ">=", pos))
                pos += 2
                continue
            append(_Token("OP", ">", pos))
            pos += 1
            continue
        if code == _SCAN_PIPE:
            if pos + 1 < n and text[pos + 1] == "|":
                append(_Token("OP", "||", pos))
                pos += 2
                continue
            append(_Token("OP", "|", pos))
            pos += 1
            continue
        if code == _SCAN_AMP:
            if pos + 1 < n and text[pos + 1] == "&":
                append(_Token("OP", "&&", pos))
                pos += 2
                continue
            raise SPARQLParseError(
                f"unexpected character {ch!r}", position=pos
            )
        if code == _SCAN_COMMENT:
            newline = text.find("\n", pos + 1)
            pos = n if newline == -1 else newline
            continue
        # not in the dispatch table: non-ASCII whitespace is skipped
        # (the reference's \s), anything else is an error
        if ch.isspace():
            pos += 1
            continue
        raise SPARQLParseError(
            f"unexpected character {ch!r}", position=pos
        )
    return tokens


#: historical internal name, kept for callers of the private API
_tokenize = tokenize


class _Parser:
    __slots__ = (
        "tokens",
        "source",
        "index",
        "prefixes",
        "base",
        "_bnode_counter",
        "_n",
    )

    def __init__(self, tokens: List[_Token], source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0
        self.prefixes = {}
        self.base: Opt[str] = None
        self._bnode_counter = 0
        self._n = len(tokens)

    # -- token plumbing (the helpers below inline peek(): they run
    # hundreds of thousands of times per corpus and the extra call
    # frame was the single biggest parse cost after lexing) -----------

    def peek(self, ahead: int = 0) -> Opt[_Token]:
        pos = self.index + ahead
        return self.tokens[pos] if pos < self._n else None

    def at_keyword(self, *words: str) -> bool:
        pos = self.index
        if pos >= self._n:
            return False
        token = self.tokens[pos]
        if token.kind != "KEYWORD":
            return False
        up = token._upper
        if up is None:
            up = token._upper = token.text.upper()
        return up in words

    def at_op(self, *ops: str) -> bool:
        pos = self.index
        if pos >= self._n:
            return False
        token = self.tokens[pos]
        return token.kind == "OP" and token.text in ops

    def advance(self) -> _Token:
        pos = self.index
        if pos >= self._n:
            raise SPARQLParseError(
                "unexpected end of query", position=len(self.source)
            )
        self.index = pos + 1
        return self.tokens[pos]

    def expect_op(self, op: str) -> _Token:
        pos = self.index
        token = self.tokens[pos] if pos < self._n else None
        if token is None or token.kind != "OP" or token.text != op:
            at = token.pos if token else len(self.source)
            raise SPARQLParseError(f"expected {op!r}", position=at)
        self.index = pos + 1
        return token

    def expect_keyword(self, word: str) -> _Token:
        pos = self.index
        token = self.tokens[pos] if pos < self._n else None
        if (
            token is None
            or token.kind != "KEYWORD"
            or token.upper() != word
        ):
            at = token.pos if token else len(self.source)
            raise SPARQLParseError(f"expected {word}", position=at)
        self.index = pos + 1
        return token

    # -- entry point ------------------------------------------------------------

    def parse_query(self) -> Query:
        self.parse_prologue()
        if self.at_keyword("SELECT"):
            query = self.parse_select()
        elif self.at_keyword("ASK"):
            query = self.parse_ask()
        elif self.at_keyword("CONSTRUCT"):
            query = self.parse_construct()
        elif self.at_keyword("DESCRIBE"):
            query = self.parse_describe()
        else:
            token = self.peek()
            at = token.pos if token else len(self.source)
            raise SPARQLParseError(
                "expected SELECT, ASK, CONSTRUCT or DESCRIBE", position=at
            )
        if self.index != len(self.tokens):
            raise SPARQLParseError(
                f"trailing input {self.peek().text!r}",
                position=self.peek().pos,
            )
        return query

    def parse_prologue(self) -> None:
        while True:
            if self.at_keyword("PREFIX"):
                self.advance()
                name_token = self.advance()
                if name_token.kind not in ("PNAME",):
                    raise SPARQLParseError(
                        "expected prefix name", position=name_token.pos
                    )
                iri_token = self.advance()
                if iri_token.kind != "IRIREF":
                    raise SPARQLParseError(
                        "expected IRI after prefix", position=iri_token.pos
                    )
                self.prefixes[name_token.text.rstrip(":")] = iri_token.text
                continue
            if self.at_keyword("BASE"):
                self.advance()
                iri_token = self.advance()
                if iri_token.kind != "IRIREF":
                    raise SPARQLParseError(
                        "expected IRI after BASE", position=iri_token.pos
                    )
                self.base = iri_token.text
                continue
            break

    # -- query forms -------------------------------------------------------------

    def parse_select(self, subquery: bool = False) -> Query:
        self.expect_keyword("SELECT")
        distinct = reduced = False
        if self.at_keyword("DISTINCT"):
            self.advance()
            distinct = True
        elif self.at_keyword("REDUCED"):
            self.advance()
            reduced = True
        projections: List[Projection] = []
        star = False
        while True:
            token = self.peek()
            if token is None:
                break
            if token.kind == "OP" and token.text == "*":
                self.advance()
                star = True
                break
            if token.kind == "VAR":
                self.advance()
                projections.append(Projection(Var(token.text[1:])))
                continue
            if token.kind == "OP" and token.text == "(":
                self.advance()
                expression = self.parse_expression()
                self.expect_keyword("AS")
                var_token = self.advance()
                if var_token.kind != "VAR":
                    raise SPARQLParseError(
                        "expected variable after AS", position=var_token.pos
                    )
                self.expect_op(")")
                projections.append(
                    Projection(Var(var_token.text[1:]), expression)
                )
                continue
            break
        if not star and not projections:
            token = self.peek()
            at = token.pos if token else len(self.source)
            raise SPARQLParseError(
                "SELECT needs * or a projection list", position=at
            )
        if self.at_keyword("WHERE"):
            self.advance()
        pattern = self.parse_group_graph_pattern()
        modifier = self.parse_solution_modifier(distinct, reduced)
        return Query(
            "SELECT",
            pattern,
            modifier,
            tuple(projections),
            text=None if subquery else self.source,
        )

    def parse_ask(self) -> Query:
        self.expect_keyword("ASK")
        if self.at_keyword("WHERE"):
            self.advance()
        pattern = self.parse_group_graph_pattern()
        modifier = self.parse_solution_modifier(False, False)
        return Query("ASK", pattern, modifier, text=self.source)

    def parse_construct(self) -> Query:
        self.expect_keyword("CONSTRUCT")
        self.expect_op("{")
        template: List[TriplePattern] = []
        while not self.at_op("}"):
            for pattern in self.parse_triples_same_subject():
                if isinstance(pattern, TriplePattern):
                    template.append(pattern)
                else:
                    raise SPARQLParseError(
                        "property paths are not allowed in CONSTRUCT "
                        "templates",
                        position=self.peek().pos if self.peek() else 0,
                    )
            if self.at_op("."):
                self.advance()
        self.expect_op("}")
        self.expect_keyword("WHERE")
        pattern = self.parse_group_graph_pattern()
        modifier = self.parse_solution_modifier(False, False)
        return Query(
            "CONSTRUCT",
            pattern,
            modifier,
            construct_template=tuple(template),
            text=self.source,
        )

    def parse_describe(self) -> Query:
        self.expect_keyword("DESCRIBE")
        terms: List[Term] = []
        while True:
            token = self.peek()
            if token is None:
                break
            if token.kind == "VAR":
                self.advance()
                terms.append(Var(token.text[1:]))
                continue
            if token.kind in ("IRIREF", "PNAME"):
                self.advance()
                terms.append(IRI(token.text))
                continue
            if token.kind == "OP" and token.text == "*":
                self.advance()
                continue
            break
        pattern: Pattern = EmptyPattern()
        if self.at_keyword("WHERE"):
            self.advance()
            pattern = self.parse_group_graph_pattern()
        elif self.at_op("{"):
            pattern = self.parse_group_graph_pattern()
        modifier = self.parse_solution_modifier(False, False)
        return Query(
            "DESCRIBE",
            pattern,
            modifier,
            describe_terms=tuple(terms),
            text=self.source,
        )

    # -- solution modifiers --------------------------------------------------------

    def parse_solution_modifier(
        self, distinct: bool, reduced: bool
    ) -> SolutionModifier:
        group_by: List[Expression] = []
        having: List[Expression] = []
        order_by: List[OrderCondition] = []
        limit: Opt[int] = None
        offset: Opt[int] = None
        while True:
            if self.at_keyword("GROUP"):
                self.advance()
                self.expect_keyword("BY")
                while True:
                    token = self.peek()
                    if token is None:
                        break
                    if token.kind == "VAR":
                        self.advance()
                        group_by.append(TermExpr(Var(token.text[1:])))
                        continue
                    if token.kind == "OP" and token.text == "(":
                        self.advance()
                        group_by.append(self.parse_expression())
                        self.expect_op(")")
                        continue
                    break
                continue
            if self.at_keyword("HAVING"):
                self.advance()
                self.expect_op("(")
                having.append(self.parse_expression())
                self.expect_op(")")
                continue
            if self.at_keyword("ORDER"):
                self.advance()
                self.expect_keyword("BY")
                while True:
                    if self.at_keyword("ASC", "DESC"):
                        descending = self.advance().upper() == "DESC"
                        self.expect_op("(")
                        expression = self.parse_expression()
                        self.expect_op(")")
                        order_by.append(
                            OrderCondition(expression, descending)
                        )
                        continue
                    token = self.peek()
                    if token is not None and token.kind == "VAR":
                        self.advance()
                        order_by.append(
                            OrderCondition(TermExpr(Var(token.text[1:])))
                        )
                        continue
                    break
                continue
            if self.at_keyword("LIMIT"):
                self.advance()
                limit = int(self.advance().text)
                continue
            if self.at_keyword("OFFSET"):
                self.advance()
                offset = int(self.advance().text)
                continue
            break
        return SolutionModifier(
            distinct,
            reduced,
            tuple(group_by),
            tuple(having),
            tuple(order_by),
            limit,
            offset,
        )

    # -- group graph patterns ---------------------------------------------------------

    def parse_group_graph_pattern(self) -> Pattern:
        self.expect_op("{")
        if self.at_keyword("SELECT"):
            inner = self.parse_select(subquery=True)
            self.expect_op("}")
            return SubQuery(inner)
        current: Opt[Pattern] = None
        pending_filters: List[Expression] = []

        def combine(new_pattern: Pattern) -> None:
            nonlocal current
            if current is None:
                current = new_pattern
            else:
                current = And(current, new_pattern)

        while not self.at_op("}"):
            if self.at_keyword("OPTIONAL"):
                self.advance()
                right = self.parse_group_graph_pattern()
                left = current if current is not None else EmptyPattern()
                current = OptPattern(left, right)
                self._maybe_dot()
                continue
            if self.at_keyword("MINUS"):
                self.advance()
                right = self.parse_group_graph_pattern()
                left = current if current is not None else EmptyPattern()
                current = Minus(left, right)
                self._maybe_dot()
                continue
            if self.at_keyword("FILTER"):
                self.advance()
                pending_filters.append(self.parse_constraint())
                self._maybe_dot()
                continue
            if self.at_keyword("BIND"):
                self.advance()
                self.expect_op("(")
                expression = self.parse_expression()
                self.expect_keyword("AS")
                var_token = self.advance()
                if var_token.kind != "VAR":
                    raise SPARQLParseError(
                        "expected variable after AS", position=var_token.pos
                    )
                self.expect_op(")")
                combine(Bind(expression, Var(var_token.text[1:])))
                self._maybe_dot()
                continue
            if self.at_keyword("VALUES"):
                self.advance()
                combine(self.parse_values())
                self._maybe_dot()
                continue
            if self.at_keyword("GRAPH"):
                self.advance()
                graph_term = self.parse_term()
                inner = self.parse_group_graph_pattern()
                combine(Graph(graph_term, inner))
                self._maybe_dot()
                continue
            if self.at_keyword("SERVICE"):
                self.advance()
                silent = False
                if self.at_keyword("SILENT"):
                    self.advance()
                    silent = True
                endpoint = self.parse_term()
                inner = self.parse_group_graph_pattern()
                combine(Service(endpoint, inner, silent))
                self._maybe_dot()
                continue
            if self.at_op("{"):
                inner = self.parse_group_graph_pattern()
                # group followed by UNION?
                while self.at_keyword("UNION"):
                    self.advance()
                    right = self.parse_group_graph_pattern()
                    inner = UnionPattern(inner, right)
                combine(inner)
                self._maybe_dot()
                continue
            # triples block
            patterns = self.parse_triples_same_subject()
            for pattern in patterns:
                combine(pattern)
            if self.at_op("."):
                self.advance()
                continue
            if self.at_op("}"):
                break
            # allow consecutive constructs without dots
        self.expect_op("}")
        result: Pattern = current if current is not None else EmptyPattern()
        for constraint in pending_filters:
            result = Filter(result, constraint)
        return result

    def _maybe_dot(self) -> None:
        if self.at_op("."):
            self.advance()

    def parse_values(self) -> Values:
        variables: List[Var] = []
        token = self.peek()
        if token is not None and token.kind == "VAR":
            self.advance()
            variables.append(Var(token.text[1:]))
        else:
            self.expect_op("(")
            while not self.at_op(")"):
                var_token = self.advance()
                if var_token.kind != "VAR":
                    raise SPARQLParseError(
                        "expected variable in VALUES",
                        position=var_token.pos,
                    )
                variables.append(Var(var_token.text[1:]))
            self.expect_op(")")
        self.expect_op("{")
        rows: List[Tuple[Opt[Term], ...]] = []
        while not self.at_op("}"):
            if len(variables) == 1 and not self.at_op("("):
                rows.append((self._parse_data_value(),))
                continue
            self.expect_op("(")
            row: List[Opt[Term]] = []
            while not self.at_op(")"):
                row.append(self._parse_data_value())
            self.expect_op(")")
            if len(row) != len(variables):
                raise SPARQLParseError(
                    "VALUES row arity mismatch",
                    position=self.peek().pos if self.peek() else 0,
                )
            rows.append(tuple(row))
        self.expect_op("}")
        return Values(tuple(variables), tuple(rows))

    def _parse_data_value(self) -> Opt[Term]:
        if self.at_keyword("UNDEF"):
            self.advance()
            return None
        return self.parse_term()

    # -- triples ----------------------------------------------------------------------

    def parse_triples_same_subject(self) -> List[Pattern]:
        subject = self.parse_term()
        out: List[Pattern] = []
        while True:
            predicate = self.parse_verb()
            while True:
                obj = self.parse_term()
                if isinstance(predicate, PropertyPath):
                    if isinstance(predicate, PathAtom):
                        out.append(
                            TriplePattern(subject, IRI(predicate.iri), obj)
                        )
                    else:
                        out.append(PathPattern(subject, predicate, obj))
                else:
                    out.append(TriplePattern(subject, predicate, obj))
                if self.at_op(","):
                    self.advance()
                    continue
                break
            if self.at_op(";"):
                self.advance()
                if self.at_op(".", ";") or self.at_op("}"):
                    continue  # dangling ';'
                continue
            break
        return out

    def parse_verb(self):
        """A predicate: variable, or a property path (an IRI is the
        trivial path and is lowered back to a TriplePattern)."""
        token = self.peek()
        if token is None:
            raise SPARQLParseError(
                "expected predicate", position=len(self.source)
            )
        if token.kind == "VAR":
            self.advance()
            return Var(token.text[1:])
        return self.parse_path()

    # property paths -------------------------------------------------------------

    def parse_path(self) -> PropertyPath:
        return self.parse_path_alternative()

    def parse_path_alternative(self) -> PropertyPath:
        parts = [self.parse_path_sequence()]
        while self.at_op("|"):
            self.advance()
            parts.append(self.parse_path_sequence())
        return alternative(*parts)

    def parse_path_sequence(self) -> PropertyPath:
        parts = [self.parse_path_elt()]
        while self.at_op("/"):
            self.advance()
            parts.append(self.parse_path_elt())
        return sequence(*parts)

    def parse_path_elt(self) -> PropertyPath:
        if self.at_op("^"):
            self.advance()
            inner = self.parse_path_primary_with_mod()
            return PathInverse(inner)
        return self.parse_path_primary_with_mod()

    def parse_path_primary_with_mod(self) -> PropertyPath:
        primary = self.parse_path_primary()
        while True:
            if self.at_op("*"):
                self.advance()
                primary = PathStar(primary)
                continue
            if self.at_op("+"):
                self.advance()
                primary = PathPlus(primary)
                continue
            if self.at_op("?"):
                self.advance()
                primary = PathOptional(primary)
                continue
            break
        return primary

    def parse_path_primary(self) -> PropertyPath:
        token = self.peek()
        if token is None:
            raise SPARQLParseError(
                "expected path", position=len(self.source)
            )
        if token.kind in ("IRIREF", "PNAME"):
            self.advance()
            return PathAtom(token.text)
        if token.kind == "KEYWORD" and token.text == _A_KEYWORD:
            self.advance()
            return PathAtom(RDF_TYPE.value)
        if token.kind == "OP" and token.text == "(":
            self.advance()
            inner = self.parse_path()
            self.expect_op(")")
            return inner
        if token.kind == "OP" and token.text == "!":
            self.advance()
            return self.parse_negated_set()
        raise SPARQLParseError(
            f"unexpected token {token.text!r} in path", position=token.pos
        )

    def parse_negated_set(self) -> PathNegatedSet:
        forward: List[str] = []
        inverse: List[str] = []

        def one() -> None:
            if self.at_op("^"):
                self.advance()
                token = self.advance()
                inverse.append(
                    RDF_TYPE.value
                    if token.kind == "KEYWORD" and token.text == _A_KEYWORD
                    else token.text
                )
            else:
                token = self.advance()
                forward.append(
                    RDF_TYPE.value
                    if token.kind == "KEYWORD" and token.text == _A_KEYWORD
                    else token.text
                )

        if self.at_op("("):
            self.advance()
            one()
            while self.at_op("|"):
                self.advance()
                one()
            self.expect_op(")")
        else:
            one()
        return PathNegatedSet(tuple(forward), tuple(inverse))

    # -- terms ------------------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self.peek()
        if token is None:
            raise SPARQLParseError(
                "expected term", position=len(self.source)
            )
        if token.kind == "VAR":
            self.advance()
            return Var(token.text[1:])
        if token.kind in ("IRIREF", "PNAME"):
            self.advance()
            return IRI(token.text)
        if token.kind == "BNODE":
            self.advance()
            return BlankNode(token.text[2:])
        if token.kind == "STRING":
            self.advance()
            lexical = _unescape_string(token.text[1:-1], token.pos + 1)
            language = None
            datatype = None
            if self.at_op("@"):
                self.advance()
                lang_token = self.advance()
                language = lang_token.text
            elif self.at_op("^^"):
                self.advance()
                type_token = self.advance()
                datatype = type_token.text
            return Literal(lexical, language, datatype)
        if token.kind == "NUMBER":
            self.advance()
            return Literal(token.text, datatype="xsd:decimal" if "." in token.text or "e" in token.text.lower() else "xsd:integer")
        if token.kind == "KEYWORD" and token.upper() in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.text.lower(), datatype="xsd:boolean")
        if token.kind == "KEYWORD" and token.text == _A_KEYWORD:
            self.advance()
            return RDF_TYPE
        if token.kind == "OP" and token.text == "[":
            self.advance()
            self.expect_op("]")
            self._bnode_counter += 1
            return BlankNode(f"anon{self._bnode_counter}")
        raise SPARQLParseError(
            f"unexpected token {token.text!r}", position=token.pos
        )

    # -- expressions ---------------------------------------------------------------------

    def parse_constraint(self) -> Expression:
        token = self.peek()
        if token is not None and token.kind == "OP" and token.text == "(":
            self.advance()
            expression = self.parse_expression()
            self.expect_op(")")
            return expression
        if self.at_keyword("EXISTS"):
            self.advance()
            return ExistsExpr(self.parse_group_graph_pattern(), False)
        if self.at_keyword("NOT"):
            self.advance()
            self.expect_keyword("EXISTS")
            return ExistsExpr(self.parse_group_graph_pattern(), True)
        # bare function call: FILTER regex(?x, "y")
        return self.parse_primary_expression()

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        operands = [left]
        while self.at_op("||"):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return left
        return BoolExpr("||", tuple(operands))

    def parse_and(self) -> Expression:
        left = self.parse_relational()
        operands = [left]
        while self.at_op("&&"):
            self.advance()
            operands.append(self.parse_relational())
        if len(operands) == 1:
            return left
        return BoolExpr("&&", tuple(operands))

    def parse_relational(self) -> Expression:
        left = self.parse_additive()
        if self.at_op("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            right = self.parse_additive()
            return Comparison(op, left, right)
        if self.at_keyword("IN"):
            self.advance()
            return Comparison("IN", left, self.parse_expression_list())
        if self.at_keyword("NOT"):
            self.advance()
            self.expect_keyword("IN")
            return Comparison("NOT IN", left, self.parse_expression_list())
        return left

    def parse_expression_list(self) -> Expression:
        self.expect_op("(")
        args: List[Expression] = []
        while not self.at_op(")"):
            args.append(self.parse_expression())
            if self.at_op(","):
                self.advance()
        self.expect_op(")")
        return FunctionCall("LIST", tuple(args))

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while self.at_op("+", "-"):
            op = self.advance().text
            right = self.parse_multiplicative()
            left = Comparison(op, left, right)
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while self.at_op("*", "/"):
            op = self.advance().text
            right = self.parse_unary()
            left = Comparison(op, left, right)
        return left

    def parse_unary(self) -> Expression:
        if self.at_op("!"):
            self.advance()
            return BoolExpr("!", (self.parse_unary(),))
        if self.at_op("-"):
            self.advance()
            inner = self.parse_unary()
            return Comparison(
                "-", TermExpr(Literal("0", datatype="xsd:integer")), inner
            )
        return self.parse_primary_expression()

    def parse_primary_expression(self) -> Expression:
        token = self.peek()
        if token is None:
            raise SPARQLParseError(
                "expected expression", position=len(self.source)
            )
        if token.kind == "OP" and token.text == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if self.at_keyword("EXISTS"):
            self.advance()
            return ExistsExpr(self.parse_group_graph_pattern(), False)
        if self.at_keyword("NOT"):
            self.advance()
            self.expect_keyword("EXISTS")
            return ExistsExpr(self.parse_group_graph_pattern(), True)
        if token.kind == "KEYWORD":
            nxt = self.peek(1)
            if nxt is not None and nxt.kind == "OP" and nxt.text == "(":
                return self.parse_function_call()
            # bare keywords true/false handled by parse_term
        if token.kind == "PNAME":
            nxt = self.peek(1)
            if nxt is not None and nxt.kind == "OP" and nxt.text == "(":
                return self.parse_function_call()
        return TermExpr(self.parse_term())

    def parse_function_call(self) -> Expression:
        name_token = self.advance()
        name = name_token.text
        self.expect_op("(")
        distinct = False
        if self.at_keyword("DISTINCT"):
            self.advance()
            distinct = True
        args: List[Expression] = []
        if self.at_op("*"):
            self.advance()
            args.append(StarExpr())
        else:
            while not self.at_op(")"):
                args.append(self.parse_expression())
                if self.at_op(","):
                    self.advance()
                    continue
                if self.at_op(";"):  # GROUP_CONCAT(...; separator="…")
                    self.advance()
                    while not self.at_op(")"):
                        self.advance()
                    break
        self.expect_op(")")
        canonical = (
            name.upper()
            if name.upper()
            in (
                "COUNT",
                "SUM",
                "AVG",
                "MIN",
                "MAX",
                "SAMPLE",
                "GROUP_CONCAT",
            )
            else name.lower()
        )
        return FunctionCall(canonical, tuple(args), distinct)


def parse_query(text: str) -> Query:
    """Parse a SPARQL query string into a :class:`~repro.sparql.ast.Query`.

    Raises :class:`~repro.errors.SPARQLParseError` for queries outside
    the supported subset — the log pipeline counts those as invalid
    (the Total vs Valid distinction of Table 2).
    """
    tokens = _tokenize(text)
    parser = _Parser(tokens, text)
    return parser.parse_query()
