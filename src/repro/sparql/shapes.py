"""Graph-shape analysis of conjunctive queries (Section 9.5, Table 7).

A CQ+F query is *suitable for graph analysis* when every triple pattern
has an IRI predicate or a predicate variable that appears nowhere else
(a wildcard), and all filters are simple (at most binary).  Its
**canonical graph** has

* a node per subject/object term (variables, blank nodes *and*
  constants — the "with constants" variant),
* an undirected edge per triple pattern,
* an undirected edge per binary filter constraint.

The "without constants" variant drops IRI/literal nodes and their
incident edges.  The shape ladder then classifies the graph as::

    no edge ⊂ ≤1 edge ⊂ chain ⊂ star ⊂ tree ⊂ forest ⊂ tw≤2 ⊂ tw≤3 ⊂ …

using the paper's definitions: a chain is a path; a star is a tree with
at most one node of degree ≥ 3; self-loops (edges {x, x}) only arise
from triple patterns like ``?x :p ?x`` and make the graph non-forest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional as Opt, Set, Tuple

from ..graphs.treewidth import exact_treewidth_small, upper_bound_min_fill
from .ast import (
    BlankNode,
    Filter,
    IRI,
    Literal,
    PathPattern,
    Query,
    TriplePattern,
    Var,
)
from .features import is_simple_filter

SHAPE_LADDER = (
    "no-edge",
    "le-1-edge",
    "chain",
    "star",
    "tree",
    "forest",
    "tw<=2",
    "tw<=3",
    "other",
)


def _node_key(term) -> Opt[Tuple[str, str, bool]]:
    """(kind, identity, is_constant) for subject/object terms."""
    if isinstance(term, Var):
        return ("var", term.name, False)
    if isinstance(term, BlankNode):
        return ("bnode", term.name, False)
    if isinstance(term, IRI):
        return ("iri", term.value, True)
    if isinstance(term, Literal):
        return ("lit", str(term), True)
    return None


def is_graph_pattern(query: Query) -> bool:
    """Every triple pattern's predicate is an IRI or a variable not used
    in any other triple pattern (a wildcard) — Section 9.5."""
    predicate_vars: Dict[str, int] = {}
    other_positions: Set[str] = set()
    atoms = []
    for node in query.pattern.walk():
        if isinstance(node, TriplePattern):
            atoms.append(node)
            if isinstance(node.predicate, Var):
                predicate_vars[node.predicate.name] = (
                    predicate_vars.get(node.predicate.name, 0) + 1
                )
            for term in (node.subject, node.object):
                if isinstance(term, Var):
                    other_positions.add(term.name)
        elif isinstance(node, PathPattern):
            atoms.append(node)
    for name, count in predicate_vars.items():
        if count > 1 or name in other_positions:
            return False
    return True


def is_suitable_for_graph_analysis(query: Query) -> bool:
    """graph-CQ+F: a graph pattern whose filters are all simple."""
    from .features import filter_constraints, is_cq_f

    if not is_cq_f(query):
        return False
    if not is_graph_pattern(query):
        return False
    return all(
        is_simple_filter(constraint)
        for constraint in filter_constraints(query.pattern)
    )


@dataclass
class CanonicalGraph:
    """Undirected multigraph: adjacency plus self-loop bookkeeping."""

    adjacency: Dict[Tuple[str, str, bool], Set[Tuple[str, str, bool]]]
    edge_count: int
    self_loops: int

    def nodes(self):
        return list(self.adjacency)

    def degree(self, node) -> int:
        return len(self.adjacency[node])


def canonical_graph(
    query: Query, with_constants: bool = True
) -> CanonicalGraph:
    """The canonical graph of a graph-CQ+F query."""
    adjacency: Dict[Tuple[str, str, bool], Set] = {}
    edge_count = 0
    self_loops = 0

    def ensure(node) -> None:
        adjacency.setdefault(node, set())

    def add_edge(a, b) -> None:
        nonlocal edge_count, self_loops
        if a is None or b is None:
            for node in (a, b):
                if node is not None:
                    ensure(node)
            return
        ensure(a)
        ensure(b)
        if a == b:
            self_loops += 1
            edge_count += 1
            return
        if b not in adjacency[a]:
            edge_count += 1
        adjacency[a].add(b)
        adjacency[b].add(a)

    for node in query.pattern.walk():
        if isinstance(node, (TriplePattern, PathPattern)):
            subject = _node_key(node.subject)
            obj = _node_key(node.object)
            if not with_constants:
                # drop constant nodes and their incident edges
                if subject is not None and subject[2]:
                    subject = None
                if obj is not None and obj[2]:
                    obj = None
            add_edge(subject, obj)
        elif isinstance(node, Filter):
            variables = sorted(
                node.constraint.variables(), key=lambda v: v.name
            )
            if len(variables) == 2:
                add_edge(
                    ("var", variables[0].name, False),
                    ("var", variables[1].name, False),
                )
            elif len(variables) == 1:
                ensure(("var", variables[0].name, False))
    return CanonicalGraph(adjacency, edge_count, self_loops)


# ---------------------------------------------------------------------------
# Shape classification
# ---------------------------------------------------------------------------


def _connected_components(graph: CanonicalGraph) -> List[Set]:
    remaining = set(graph.adjacency)
    out: List[Set] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        stack = [seed]
        while stack:
            current = stack.pop()
            for neighbour in graph.adjacency[current]:
                if neighbour in remaining and neighbour not in component:
                    component.add(neighbour)
                    stack.append(neighbour)
        remaining -= component
        out.append(component)
    return out


def _is_forest(graph: CanonicalGraph) -> bool:
    if graph.self_loops:
        return False
    nodes = len(graph.adjacency)
    simple_edges = sum(len(neigh) for neigh in graph.adjacency.values()) // 2
    if simple_edges != graph.edge_count:
        return False  # parallel edges collapse in adjacency: cyclic
    components = _connected_components(graph)
    return simple_edges == nodes - len(components)


def _is_tree(graph: CanonicalGraph) -> bool:
    return _is_forest(graph) and len(_connected_components(graph)) <= 1


def _is_chain(graph: CanonicalGraph) -> bool:
    if not _is_tree(graph):
        return False
    degrees = [graph.degree(node) for node in graph.nodes()]
    return all(degree <= 2 for degree in degrees)


def _is_star(graph: CanonicalGraph) -> bool:
    """Paper definition: a tree with at most one node having more than
    two neighbours."""
    if not _is_tree(graph):
        return False
    big = sum(1 for node in graph.nodes() if graph.degree(node) >= 3)
    return big <= 1


def _treewidth_at_most(graph: CanonicalGraph, k: int) -> bool:
    adjacency = {
        node: set(neigh) for node, neigh in graph.adjacency.items()
    }
    if not adjacency:
        return True
    if len(adjacency) <= 12:
        return exact_treewidth_small(adjacency) <= k
    width, _dec = upper_bound_min_fill(adjacency)
    return width <= k


def shape_of(graph: CanonicalGraph) -> str:
    """The most specific shape-ladder class of a canonical graph."""
    if graph.edge_count == 0:
        return "no-edge"
    if graph.edge_count == 1 and not graph.self_loops:
        return "le-1-edge"
    if _is_chain(graph):
        return "chain"
    if _is_star(graph):
        return "star"
    if _is_tree(graph):
        return "tree"
    if _is_forest(graph):
        return "forest"
    if _treewidth_at_most(graph, 2):
        return "tw<=2"
    if _treewidth_at_most(graph, 3):
        return "tw<=3"
    return "other"


def query_shape(query: Query, with_constants: bool = True) -> str:
    """Shape of the canonical graph of a graph-CQ+F query."""
    return shape_of(canonical_graph(query, with_constants))


def cumulative_shape(shape: str) -> List[str]:
    """All ladder classes that contain a given most-specific shape —
    Table 7's rows are cumulative."""
    index = SHAPE_LADDER.index(shape)
    return list(SHAPE_LADDER[index:])
