"""Render a :class:`~repro.sparql.ast.Query` back to SPARQL text.

The serializer is the inverse the parser needs for the differential
round-trip oracle in :mod:`repro.testing`: for every query the parser
accepts, ``parse(serialize(parse(text)))`` must equal ``parse(text)``
modulo the recorded source ``text``.  It therefore mirrors the parser's
structural conventions precisely:

* group bodies are emitted in the order the parser combines them
  (left-deep ``And`` chains joined by `` . ``, ``OPTIONAL``/``MINUS``
  extending the accumulated left side, ``FILTER`` constraints at the
  end of their group, where the parser hoists them);
* a pattern that the parser can only produce *nested* (a ``Union``, a
  filtered group, an ``OPTIONAL`` appearing as the right operand of an
  ``And``) is wrapped in braces so it reparses into the same position;
* literals are rendered in quoted form with escapes (via
  :func:`~repro.sparql.ast.Literal.__str__`), so numeric and boolean
  literals round-trip through their datatype rather than the bare
  token.
"""

from __future__ import annotations

from typing import List

from .ast import (
    And,
    Bind,
    BoolExpr,
    Comparison,
    EmptyPattern,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    Graph,
    Minus,
    Optional as OptPattern,
    PathPattern,
    Pattern,
    Query,
    Service,
    SolutionModifier,
    StarExpr,
    SubQuery,
    TermExpr,
    TriplePattern,
    Union as UnionPattern,
    Values,
    Var,
)

__all__ = ["serialize_query"]


def _term(term) -> str:
    return str(term)


def _expr(expr: Expression) -> str:
    if isinstance(expr, TermExpr):
        return _term(expr.term)
    if isinstance(expr, Comparison):
        if expr.op in ("IN", "NOT IN"):
            right = expr.right
            if isinstance(right, FunctionCall) and right.name == "LIST":
                inner = ", ".join(_expr(a) for a in right.args)
                return f"({_expr(expr.left)} {expr.op} ({inner}))"
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, BoolExpr):
        if expr.op == "!":
            return f"!({_expr(expr.operands[0])})"
        joined = f" {expr.op} ".join(_expr(op) for op in expr.operands)
        return f"({joined})"
    if isinstance(expr, FunctionCall):
        distinct = "DISTINCT " if expr.distinct else ""
        inner = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({distinct}{inner})"
    if isinstance(expr, StarExpr):
        return "*"
    if isinstance(expr, ExistsExpr):
        keyword = "NOT EXISTS " if expr.negated else "EXISTS "
        return keyword + _group(expr.pattern)
    raise TypeError(f"cannot serialize expression {expr!r}")


def _group(pattern: Pattern) -> str:
    body = _body(pattern)
    return "{ " + body + " }" if body else "{ }"


def _body(pattern: Pattern) -> str:
    # The parser hoists FILTER constraints to the end of their group,
    # wrapping the group's pattern inside-out; unwrap in the same order.
    constraints: List[Expression] = []
    while isinstance(pattern, Filter):
        constraints.append(pattern.constraint)
        pattern = pattern.pattern
    constraints.reverse()
    parts: List[str] = []
    if not isinstance(pattern, EmptyPattern):
        parts.append(_sequence(pattern))
    # always parenthesize: parse_constraint does not start at '!' or a
    # bare term, and extra parens are transparent to the expression AST
    parts.extend(f"FILTER ({_expr(c)})" for c in constraints)
    return " ".join(p for p in parts if p)


def _sequence(pattern: Pattern) -> str:
    """The ``.``-joined element sequence of one group body."""
    if isinstance(pattern, And):
        return _sequence(pattern.left) + " . " + _element(pattern.right)
    if isinstance(pattern, OptPattern):
        left = (
            ""
            if isinstance(pattern.left, EmptyPattern)
            else _sequence(pattern.left) + " "
        )
        return left + "OPTIONAL " + _group(pattern.right)
    if isinstance(pattern, Minus):
        left = (
            ""
            if isinstance(pattern.left, EmptyPattern)
            else _sequence(pattern.left) + " "
        )
        return left + "MINUS " + _group(pattern.right)
    return _element(pattern)


def _element(pattern: Pattern) -> str:
    """One group element; nests in braces whatever the parser could only
    have produced from a braced subgroup."""
    if isinstance(pattern, TriplePattern):
        return (
            f"{_term(pattern.subject)} {_term(pattern.predicate)} "
            f"{_term(pattern.object)}"
        )
    if isinstance(pattern, PathPattern):
        return (
            f"{_term(pattern.subject)} {pattern.path.to_string()} "
            f"{_term(pattern.object)}"
        )
    if isinstance(pattern, Bind):
        return f"BIND({_expr(pattern.expression)} AS ?{pattern.variable.name})"
    if isinstance(pattern, Values):
        return _values(pattern)
    if isinstance(pattern, Graph):
        return f"GRAPH {_term(pattern.graph)} {_group(pattern.pattern)}"
    if isinstance(pattern, Service):
        silent = "SILENT " if pattern.silent else ""
        return (
            f"SERVICE {silent}{_term(pattern.endpoint)} "
            f"{_group(pattern.pattern)}"
        )
    if isinstance(pattern, SubQuery):
        return "{ " + serialize_query(pattern.query) + " }"
    if isinstance(pattern, UnionPattern):
        return _union(pattern)
    if isinstance(pattern, EmptyPattern):
        return "{ }"
    if isinstance(pattern, (And, OptPattern, Minus, Filter)):
        return _group(pattern)
    raise TypeError(f"cannot serialize pattern {pattern!r}")


def _union(pattern: UnionPattern) -> str:
    # the parser builds left-associative UNION chains of braced groups
    if isinstance(pattern.left, UnionPattern):
        left = _union(pattern.left)
    else:
        left = _group(pattern.left)
    return left + " UNION " + _group(pattern.right)


def _values(pattern: Values) -> str:
    head = " ".join(f"?{v.name}" for v in pattern.variables_list)
    rows = []
    for row in pattern.rows:
        cells = " ".join(
            "UNDEF" if cell is None else _term(cell) for cell in row
        )
        rows.append(f"( {cells} )")
    body = " ".join(rows)
    return f"VALUES ( {head} ) {{ {body} }}"


def _modifier(modifier: SolutionModifier) -> str:
    parts: List[str] = []
    if modifier.group_by:
        rendered = []
        for expr in modifier.group_by:
            if isinstance(expr, TermExpr) and isinstance(expr.term, Var):
                rendered.append(str(expr.term))
            else:
                rendered.append(f"( {_expr(expr)} )")
        parts.append("GROUP BY " + " ".join(rendered))
    for having in modifier.having:
        parts.append(f"HAVING ( {_expr(having)} )")
    if modifier.order_by:
        rendered = []
        for cond in modifier.order_by:
            if cond.descending:
                rendered.append(f"DESC( {_expr(cond.expression)} )")
            elif isinstance(cond.expression, TermExpr) and isinstance(
                cond.expression.term, Var
            ):
                rendered.append(str(cond.expression.term))
            else:
                rendered.append(f"ASC( {_expr(cond.expression)} )")
        parts.append("ORDER BY " + " ".join(rendered))
    if modifier.limit is not None:
        parts.append(f"LIMIT {modifier.limit}")
    if modifier.offset is not None:
        parts.append(f"OFFSET {modifier.offset}")
    return " ".join(parts)


def serialize_query(query: Query) -> str:
    """Serialize a query AST to SPARQL text the parser maps back to it.

    The result carries no prologue: the parser keeps prefixed names
    unresolved, so PREFIX/BASE declarations do not influence the AST.
    """
    if query.query_type == "SELECT":
        head = "SELECT"
        if query.modifier.distinct:
            head += " DISTINCT"
        elif query.modifier.reduced:
            head += " REDUCED"
        if query.projections:
            for projection in query.projections:
                if projection.expression is None:
                    head += f" ?{projection.variable.name}"
                else:
                    head += (
                        f" ( {_expr(projection.expression)}"
                        f" AS ?{projection.variable.name} )"
                    )
        else:
            head += " *"
        out = f"{head} WHERE {_group(query.pattern)}"
    elif query.query_type == "ASK":
        out = f"ASK {_group(query.pattern)}"
    elif query.query_type == "CONSTRUCT":
        template = " . ".join(
            _element(triple) for triple in query.construct_template
        )
        out = (
            f"CONSTRUCT {{ {template} }} WHERE {_group(query.pattern)}"
            if template
            else f"CONSTRUCT {{ }} WHERE {_group(query.pattern)}"
        )
    elif query.query_type == "DESCRIBE":
        terms = " ".join(_term(t) for t in query.describe_terms) or "*"
        out = f"DESCRIBE {terms}"
        if not isinstance(query.pattern, EmptyPattern):
            out += f" WHERE {_group(query.pattern)}"
    else:
        raise TypeError(f"unknown query type {query.query_type!r}")
    modifier = _modifier(query.modifier)
    if modifier:
        out += " " + modifier
    return out
