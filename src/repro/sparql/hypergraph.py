"""Hypergraph analysis of conjunctive queries (Section 9.5, Table 6).

From a CQ+F query we build:

* the **triple hypergraph**: one hyperedge per triple pattern, holding
  its variables (blank nodes count as variables, constants are dropped);
* the **canonical hypergraph**: additionally one hyperedge per filter
  constraint, holding the constraint's variables.

Analyses:

* :func:`is_acyclic` — GYO reduction (ear removal);
* :func:`is_free_connex_acyclic` — acyclic and still acyclic after
  adding a hyperedge with the query's projected (free) variables — the
  Bagan–Durand–Grandjean characterization used in the study's FCA row;
* :func:`hypertree_width_at_most` — exact decision of *generalized
  hypertree width* ≤ k by a memoized recursive-separator search over
  bags that are unions of at most k hyperedges.  ghw ≤ htw ≤ 3·ghw + 1
  in general; on the near-acyclic hypergraphs of real query logs the
  two coincide (every Table 6 query has width ≤ 3), which is why the
  study's det-k-decomp values are reproduced exactly.
* :func:`hypertree_width` — the smallest k with ghw ≤ k.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Set, Tuple

from .ast import (
    Filter,
    PathPattern,
    Query,
    TriplePattern,
)

Hyperedge = FrozenSet[str]


@dataclass(frozen=True)
class Hypergraph:
    """A hypergraph over variable names."""

    edges: Tuple[Hyperedge, ...]

    @property
    def vertices(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for edge in self.edges:
            out |= edge
        return frozenset(out)

    def with_edge(self, edge: Hyperedge) -> "Hypergraph":
        return Hypergraph(self.edges + (frozenset(edge),))

    def nonempty_edges(self) -> List[Hyperedge]:
        return [edge for edge in self.edges if edge]


def triple_hypergraph(query: Query) -> Hypergraph:
    """The triple hypergraph of a query (triple/path patterns only)."""
    edges: List[Hyperedge] = []
    for node in query.pattern.walk():
        if isinstance(node, TriplePattern):
            names = frozenset(
                v.name for v in node._own_variables()
            )
            edges.append(names)
        elif isinstance(node, PathPattern):
            edges.append(frozenset(v.name for v in node._own_variables()))
    return Hypergraph(tuple(edges))


def canonical_hypergraph(query: Query) -> Hypergraph:
    """Triple hypergraph plus one hyperedge per filter constraint."""
    base = triple_hypergraph(query)
    edges = list(base.edges)
    for node in query.pattern.walk():
        if isinstance(node, Filter):
            names = frozenset(v.name for v in node.constraint.variables())
            if names:
                edges.append(names)
    return Hypergraph(tuple(edges))


# ---------------------------------------------------------------------------
# GYO acyclicity
# ---------------------------------------------------------------------------


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """GYO reduction: repeatedly drop isolated vertices (vertices in one
    edge only) and edges contained in other edges; acyclic iff everything
    disappears."""
    edges: List[Set[str]] = [set(edge) for edge in hypergraph.edges if edge]
    changed = True
    while changed and edges:
        changed = False
        # vertex occurring in exactly one edge -> remove it
        occurrence: Dict[str, int] = {}
        for edge in edges:
            for vertex in edge:
                occurrence[vertex] = occurrence.get(vertex, 0) + 1
        for edge in edges:
            lonely = {v for v in edge if occurrence[v] == 1}
            if lonely:
                edge -= lonely
                changed = True
        edges = [edge for edge in edges if edge]
        # edge contained in another -> remove it
        edges.sort(key=len)
        kept: List[Set[str]] = []
        for i, edge in enumerate(edges):
            contained = any(
                edge <= other for other in edges[i + 1 :]
            ) or any(edge <= other and edge is not other for other in kept)
            if contained:
                changed = True
            else:
                kept.append(edge)
        edges = kept
    return not edges


def is_free_connex_acyclic(query: Query, canonical: bool = True) -> bool:
    """Free-connex acyclicity: the hypergraph is acyclic AND remains
    acyclic after adding a hyperedge holding the projected variables."""
    hypergraph = (
        canonical_hypergraph(query) if canonical else triple_hypergraph(query)
    )
    if not is_acyclic(hypergraph):
        return False
    free = frozenset(v.name for v in query.projected_variables())
    free = free & {
        name for edge in hypergraph.edges for name in edge
    }
    if not free:
        return True
    return is_acyclic(hypergraph.with_edge(free))


# ---------------------------------------------------------------------------
# Generalized hypertree width
# ---------------------------------------------------------------------------


def _primal_adjacency(hypergraph: Hypergraph) -> Dict[str, Set[str]]:
    adjacency: Dict[str, Set[str]] = {
        vertex: set() for vertex in hypergraph.vertices
    }
    for edge in hypergraph.edges:
        members = sorted(edge)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                adjacency[u].add(v)
                adjacency[v].add(u)
    return adjacency


def hypertree_width_at_most(hypergraph: Hypergraph, k: int) -> bool:
    """Exact decision of generalized hypertree width ≤ k.

    Recursive-separator search on the primal graph with bags restricted
    to unions of ≤ k hyperedges; memoized on (component, connector).
    Every hyperedge induces a clique in the primal graph, so any valid
    tree decomposition automatically covers every hyperedge.
    """
    edges = [edge for edge in hypergraph.nonempty_edges()]
    if not edges:
        return True
    if k < 1:
        return False
    adjacency = _primal_adjacency(hypergraph)
    all_vertices = frozenset(adjacency)
    bag_candidates = [
        frozenset().union(*combo)
        for size in range(1, min(k, len(edges)) + 1)
        for combo in combinations(set(edges), size)
    ]
    # deduplicate and prefer large bags first (fewer recursions)
    bag_candidates = sorted(set(bag_candidates), key=len, reverse=True)

    memo: Dict[Tuple[FrozenSet[str], FrozenSet[str]], bool] = {}

    def components(
        vertices: FrozenSet[str], removed: FrozenSet[str]
    ) -> List[FrozenSet[str]]:
        remaining = set(vertices) - removed
        out: List[FrozenSet[str]] = []
        while remaining:
            seed = next(iter(remaining))
            component = {seed}
            stack = [seed]
            while stack:
                current = stack.pop()
                for neighbour in adjacency[current]:
                    if neighbour in remaining and neighbour not in component:
                        component.add(neighbour)
                        stack.append(neighbour)
            remaining -= component
            out.append(frozenset(component))
        return out

    def neighbourhood(component: FrozenSet[str]) -> FrozenSet[str]:
        out: Set[str] = set()
        for vertex in component:
            out |= adjacency[vertex]
        return frozenset(out - component)

    def solve(component: FrozenSet[str], connector: FrozenSet[str]) -> bool:
        key = (component, connector)
        if key in memo:
            return memo[key]
        result = False
        for bag in bag_candidates:
            if not connector <= bag:
                continue
            if not (bag & component) and connector != bag & connector:
                pass
            sub_components = components(component, bag)
            if sub_components == [component]:
                continue  # no progress
            ok = True
            for sub in sub_components:
                sub_connector = neighbourhood(sub) & (bag | connector)
                if not solve(sub, frozenset(sub_connector)):
                    ok = False
                    break
            if ok:
                result = True
                break
        memo[key] = result
        return result

    for component in components(all_vertices, frozenset()):
        if not solve(component, frozenset()):
            return False
    return True


def hypertree_width(hypergraph: Hypergraph, max_k: int = 6) -> int:
    """The least k with generalized hypertree width ≤ k (searches up to
    ``max_k``)."""
    if not hypergraph.nonempty_edges():
        return 0
    for k in range(1, max_k + 1):
        if hypertree_width_at_most(hypergraph, k):
            return k
    raise ValueError(f"width exceeds max_k={max_k}")


def query_hypertree_width(query: Query, canonical: bool = True) -> int:
    hypergraph = (
        canonical_hypergraph(query) if canonical else triple_hypergraph(query)
    )
    return hypertree_width(hypergraph)
