"""Property paths — SPARQL 1.1's regular path queries (Section 9.2).

A property path is a regular expression over IRIs with SPARQL's
operators: ``/`` (sequence), ``|`` (alternative), ``^`` (inverse),
``*``, ``+``, ``?`` and negated property sets ``!(:p|^:q)``.

The AST here is separate from :mod:`repro.regex.ast` because paths have
graph-specific atoms (inverse and negated sets); :func:`path_to_regex`
bridges to the word-level machinery (inverse atoms become ``^iri``
symbols, negated sets become reserved ``!…`` symbols that only the
path evaluator interprets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Tuple

from ..regex.ast import (
    Regex,
    Symbol,
    concat as smart_concat,
    optional as smart_optional,
    plus as smart_plus,
    star as smart_star,
    union as smart_union,
)


class PropertyPath:
    """Base class for property path nodes."""

    __slots__ = ()

    def children(self) -> Tuple["PropertyPath", ...]:
        return ()

    def walk(self) -> Iterator["PropertyPath"]:
        stack: List[PropertyPath] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def iris(self) -> FrozenSet[str]:
        out = set()
        for node in self.walk():
            if isinstance(node, PathAtom):
                out.add(node.iri)
            elif isinstance(node, PathNegatedSet):
                out.update(node.forward)
                out.update(node.inverse)
        return frozenset(out)

    def is_transitive(self) -> bool:
        """Whether the path can match arbitrarily long walks (uses * or +)."""
        return any(
            isinstance(node, (PathStar, PathPlus)) for node in self.walk()
        )

    def uses_inverse(self) -> bool:
        return any(
            isinstance(node, PathInverse)
            or (isinstance(node, PathNegatedSet) and node.inverse)
            for node in self.walk()
        )

    def __str__(self) -> str:
        return self.to_string()

    def to_string(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class PathAtom(PropertyPath):
    """A single IRI step."""

    iri: str

    def to_string(self) -> str:
        return self.iri


@dataclass(frozen=True, slots=True)
class PathInverse(PropertyPath):
    """``^path`` — traverse in reverse direction."""

    child: PropertyPath

    def children(self):
        return (self.child,)

    def to_string(self) -> str:
        inner = self.child.to_string()
        if isinstance(self.child, PathAtom):
            return f"^{inner}"
        return f"^({inner})"


@dataclass(frozen=True, slots=True)
class PathSequence(PropertyPath):
    """``p1/p2/…`` — concatenation."""

    parts: Tuple[PropertyPath, ...]

    def children(self):
        return self.parts

    def to_string(self) -> str:
        rendered = []
        for part in self.parts:
            text = part.to_string()
            if isinstance(part, (PathAlternative, PathSequence)):
                text = f"({text})"
            rendered.append(text)
        return "/".join(rendered)


@dataclass(frozen=True, slots=True)
class PathAlternative(PropertyPath):
    """``p1|p2|…`` — alternative."""

    parts: Tuple[PropertyPath, ...]

    def children(self):
        return self.parts

    def to_string(self) -> str:
        rendered = []
        for part in self.parts:
            text = part.to_string()
            if isinstance(part, (PathAlternative, PathSequence)):
                text = f"({text})"
            rendered.append(text)
        return "|".join(rendered)


class _PathUnary(PropertyPath):
    __slots__ = ()
    _suffix = "?"

    def children(self):
        return (self.child,)  # type: ignore[attr-defined]

    def to_string(self) -> str:
        child = self.child  # type: ignore[attr-defined]
        inner = child.to_string()
        if not isinstance(child, PathAtom):
            inner = f"({inner})"
        return inner + self._suffix


@dataclass(frozen=True, slots=True)
class PathStar(_PathUnary):
    child: PropertyPath
    _suffix = "*"


@dataclass(frozen=True, slots=True)
class PathPlus(_PathUnary):
    child: PropertyPath
    _suffix = "+"


@dataclass(frozen=True, slots=True)
class PathOptional(_PathUnary):
    child: PropertyPath
    _suffix = "?"


@dataclass(frozen=True, slots=True)
class PathNegatedSet(PropertyPath):
    """``!(p1|…|^q1|…)`` — any predicate not in the listed sets.

    ``forward`` lists forbidden forward predicates; ``inverse`` the
    forbidden inverse predicates.
    """

    forward: Tuple[str, ...]
    inverse: Tuple[str, ...] = ()

    def to_string(self) -> str:
        atoms = list(self.forward) + [f"^{iri}" for iri in self.inverse]
        if len(atoms) == 1:
            return f"!{atoms[0]}"
        return "!(" + "|".join(atoms) + ")"

    def word_symbol(self) -> str:
        """The reserved regex symbol encoding this atom (see the path
        evaluator)."""
        return "!" + "|".join(
            list(self.forward) + [f"^{iri}" for iri in self.inverse]
        )


def path_to_regex(path: PropertyPath) -> Regex:
    """Translate a property path to a word regex over atom symbols.

    Atoms map to their IRI, inverse atoms to ``^iri``, negated sets to a
    reserved ``!…`` symbol.  Inverse of a composite path is pushed down
    by the usual rewriting (reverse of a sequence is the reversed
    sequence of reversed parts).
    """
    return _to_regex(path, inverted=False)


def _to_regex(path: PropertyPath, inverted: bool) -> Regex:
    if isinstance(path, PathAtom):
        return Symbol(f"^{path.iri}" if inverted else path.iri)
    if isinstance(path, PathInverse):
        return _to_regex(path.child, not inverted)
    if isinstance(path, PathSequence):
        parts = [_to_regex(p, inverted) for p in path.parts]
        if inverted:
            parts.reverse()
        return smart_concat(*parts)
    if isinstance(path, PathAlternative):
        return smart_union(*[_to_regex(p, inverted) for p in path.parts])
    if isinstance(path, PathStar):
        return smart_star(_to_regex(path.child, inverted))
    if isinstance(path, PathPlus):
        return smart_plus(_to_regex(path.child, inverted))
    if isinstance(path, PathOptional):
        return smart_optional(_to_regex(path.child, inverted))
    if isinstance(path, PathNegatedSet):
        if inverted:
            flipped = PathNegatedSet(path.inverse, path.forward)
            return Symbol(flipped.word_symbol())
        return Symbol(path.word_symbol())
    raise TypeError(f"unknown path node {path!r}")


def sequence(*parts: PropertyPath) -> PropertyPath:
    flat: List[PropertyPath] = []
    for part in parts:
        if isinstance(part, PathSequence):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return PathSequence(tuple(flat))


def alternative(*parts: PropertyPath) -> PropertyPath:
    flat: List[PropertyPath] = []
    for part in parts:
        if isinstance(part, PathAlternative):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return PathAlternative(tuple(flat))
