"""Well-designed SPARQL patterns (Pérez, Arenas & Gutiérrez; Sections
9.1 and 9.4).

Evaluation for And/Filter patterns is tractable but adding Optional
makes it PSPACE-complete.  *Well-designed* patterns restore coNP:
a pattern built from And, Filter and Optional is well-designed when

  for every subpattern ``P' = (P1 OPTIONAL P2)`` and every variable
  ``?x`` occurring inside ``P2`` and also outside ``P'``, the variable
  ``?x`` also occurs in ``P1``.

We additionally implement:

* :func:`is_union_of_well_designed` — a top-level union of well-designed
  patterns (the class covering roughly half of the Optional-using
  queries in Picalausa & Vansummeren's corpus);
* :func:`is_well_behaved` — their stronger condition making Evaluation
  tractable; following their definition we require well-designedness
  plus that every OPTIONAL appears only in a "right-linear" position
  (no further operator to the right of an OPTIONAL inside the same
  group) and filters only constrain certain (non-optional) variables.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from .ast import (
    And,
    Bind,
    EmptyPattern,
    Filter,
    Graph,
    Minus,
    Optional as OptPattern,
    PathPattern,
    Pattern,
    Query,
    Service,
    SubQuery,
    TriplePattern,
    Union as UnionPattern,
    Values,
    Var,
)


def _uses_only_and_filter_optional(pattern: Pattern) -> bool:
    for node in pattern.walk():
        if not isinstance(
            node,
            (
                And,
                Filter,
                OptPattern,
                TriplePattern,
                PathPattern,
                EmptyPattern,
            ),
        ):
            return False
    return True


def is_well_designed(pattern: Pattern) -> bool:
    """Whether ``pattern`` (over And/Filter/Optional) is well-designed.

    Returns False when the pattern uses operators outside the
    And/Filter/Optional fragment — callers first restrict to that
    fragment, as the study does.
    """
    if not _uses_only_and_filter_optional(pattern):
        return False
    return _check_wd(pattern, pattern)


def _check_wd(root: Pattern, pattern: Pattern) -> bool:
    if isinstance(pattern, OptPattern):
        inside_right = pattern.right.variables()
        inside_left = pattern.left.variables()
        outside = _variables_outside(root, pattern)
        for variable in inside_right:
            if variable in outside and variable not in inside_left:
                return False
        return _check_wd(root, pattern.left) and _check_wd(
            root, pattern.right
        )
    for child in pattern.children():
        if not _check_wd(root, child):
            return False
    return True


def _variables_outside(root: Pattern, exclude: Pattern) -> FrozenSet[Var]:
    """Variables of ``root`` occurring outside the subtree ``exclude``."""
    out: Set[Var] = set()

    def visit(node: Pattern) -> None:
        if node is exclude:
            return
        out.update(node._own_variables())
        for child in node.children():
            visit(child)

    visit(root)
    return frozenset(out)


def is_union_of_well_designed(pattern: Pattern) -> bool:
    """A top-level union (tree of Union nodes) of well-designed parts."""
    leaves = _union_leaves(pattern)
    if len(leaves) == 1:
        return is_well_designed(pattern)
    return all(is_well_designed(leaf) for leaf in leaves)


def _union_leaves(pattern: Pattern) -> List[Pattern]:
    if isinstance(pattern, UnionPattern):
        return _union_leaves(pattern.left) + _union_leaves(pattern.right)
    return [pattern]


def certain_variables(pattern: Pattern) -> FrozenSet[Var]:
    """Variables guaranteed to be bound in every solution (the mandatory
    part: everything except the right-hand sides of OPTIONALs and the
    branches of UNIONs where they differ)."""
    if isinstance(pattern, (TriplePattern, PathPattern)):
        return pattern._own_variables()
    if isinstance(pattern, And):
        return certain_variables(pattern.left) | certain_variables(
            pattern.right
        )
    if isinstance(pattern, OptPattern):
        return certain_variables(pattern.left)
    if isinstance(pattern, Filter):
        return certain_variables(pattern.pattern)
    if isinstance(pattern, UnionPattern):
        return certain_variables(pattern.left) & certain_variables(
            pattern.right
        )
    if isinstance(pattern, (Graph, Service)):
        return certain_variables(pattern.pattern)
    if isinstance(pattern, Values):
        # a variable is certain if no row leaves it UNDEF
        certain = set(pattern.variables_list)
        for row in pattern.rows:
            for variable, term in zip(pattern.variables_list, row):
                if term is None:
                    certain.discard(variable)
        return frozenset(certain)
    if isinstance(pattern, Minus):
        return certain_variables(pattern.left)
    if isinstance(pattern, Bind):
        return frozenset({pattern.variable})
    if isinstance(pattern, SubQuery):
        if pattern.query.select_star():
            return certain_variables(pattern.query.pattern)
        return frozenset(
            p.variable for p in pattern.query.projections
        ) & certain_variables(pattern.query.pattern)
    return frozenset()


def is_well_behaved(pattern: Pattern) -> bool:
    """Picalausa & Vansummeren's *well-behaved* patterns: well-designed,
    and every Filter constrains only certain variables of the pattern it
    applies to (so filters never observe the optional part)."""
    if not is_well_designed(pattern):
        return False
    for node in pattern.walk():
        if isinstance(node, Filter):
            certain = certain_variables(node.pattern)
            if not node.constraint.variables() <= certain:
                return False
    return True


def query_well_designed(query: Query) -> bool:
    """Top-level helper used by the log analyzer."""
    return is_well_designed(query.pattern)
