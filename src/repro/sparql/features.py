"""Feature analysis of SPARQL queries (Section 9.4, Tables 3–5).

Two kinds of analyses:

* :func:`query_features` — which keywords/operators a query uses
  (the Table 3 census: Distinct, Limit, Offset, OrderBy, Filter, And,
  Optional, Union, Graph, Values, NotExists, Minus, Exists, GroupBy,
  Count, Having, Avg, Min, Max, Sum, Service, property paths);
* :func:`operator_set` and the fragment classifiers
  (:func:`is_cq`, :func:`is_cq_f`, :func:`is_c2rpq_f`, …) — which
  *fragment* the query's pattern falls into (Tables 4 and 5).

Conventions follow Bonifati, Martens & Timm: the ``And`` feature means
the pattern joins at least two atoms; blank nodes count as variables;
``Describe`` queries are excluded from relative counts by the caller.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Set

from .ast import (
    And,
    Bind,
    BoolExpr,
    Comparison,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    Graph,
    Minus,
    Optional as OptPattern,
    PathPattern,
    Pattern,
    Query,
    Service,
    SubQuery,
    TermExpr,
    TriplePattern,
    Union as UnionPattern,
    Values,
)

#: The Table 3 feature names, in the paper's row order.
TABLE3_FEATURES = (
    "Distinct",
    "Limit",
    "Offset",
    "OrderBy",
    "Filter",
    "And",
    "Optional",
    "Union",
    "Graph",
    "Values",
    "NotExists",
    "Minus",
    "Exists",
    "GroupBy",
    "Count",
    "Having",
    "Avg",
    "Min",
    "Max",
    "Sum",
    "Service",
    "PropertyPath",
)


def _walk_with_expressions(pattern: Pattern) -> Iterator[Pattern]:
    """Walk the pattern tree, descending into EXISTS subpatterns too."""
    stack: List[Pattern] = [pattern]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
        if isinstance(node, Filter):
            stack.extend(_exists_patterns(node.constraint))


def _exists_patterns(expression: Expression) -> List[Pattern]:
    out: List[Pattern] = []
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ExistsExpr):
            out.append(node.pattern)
        elif isinstance(node, Comparison):
            stack.extend((node.left, node.right))
        elif isinstance(node, BoolExpr):
            stack.extend(node.operands)
        elif isinstance(node, FunctionCall):
            stack.extend(
                arg for arg in node.args if isinstance(arg, Expression)
            )
    return out


def count_triple_patterns(query: Query) -> int:
    """Number of triple patterns in the query (Figure 3's metric).

    Property path patterns count as triple patterns, as in the study;
    patterns inside EXISTS and subqueries are counted too.
    """
    return sum(
        1
        for node in _walk_with_expressions(query.pattern)
        if isinstance(node, (TriplePattern, PathPattern))
    )


def _filter_functions(expression: Expression) -> Iterator[FunctionCall]:
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, FunctionCall):
            yield node
            stack.extend(
                arg for arg in node.args if isinstance(arg, Expression)
            )
        elif isinstance(node, Comparison):
            stack.extend((node.left, node.right))
        elif isinstance(node, BoolExpr):
            stack.extend(node.operands)


def query_features(query: Query) -> FrozenSet[str]:
    """The Table 3 feature set of one query."""
    features: Set[str] = set()
    modifier = query.modifier
    if modifier.distinct:
        features.add("Distinct")
    if modifier.limit is not None:
        features.add("Limit")
    if modifier.offset is not None:
        features.add("Offset")
    if modifier.order_by:
        features.add("OrderBy")
    if modifier.group_by:
        features.add("GroupBy")
    if modifier.having:
        features.add("Having")

    aggregates = query.aggregates_used()
    for name, feature in (
        ("COUNT", "Count"),
        ("AVG", "Avg"),
        ("MIN", "Min"),
        ("MAX", "Max"),
        ("SUM", "Sum"),
    ):
        if name in aggregates:
            features.add(feature)

    atoms = 0
    for node in _walk_with_expressions(query.pattern):
        if isinstance(node, (TriplePattern, PathPattern)):
            atoms += 1
        if isinstance(node, PathPattern):
            features.add("PropertyPath")
        elif isinstance(node, Filter):
            features.add("Filter")
            for exists in _exists_list(node.constraint):
                features.add("NotExists" if exists.negated else "Exists")
        elif isinstance(node, OptPattern):
            features.add("Optional")
        elif isinstance(node, UnionPattern):
            features.add("Union")
        elif isinstance(node, Graph):
            features.add("Graph")
        elif isinstance(node, Values):
            features.add("Values")
        elif isinstance(node, Minus):
            features.add("Minus")
        elif isinstance(node, Service):
            features.add("Service")
        elif isinstance(node, SubQuery):
            sub = node.query
            features |= query_features(sub) - {"And"}
    if any(
        isinstance(node, And)
        for node in _walk_with_expressions(query.pattern)
    ):
        features.add("And")
    return frozenset(features)


def _exists_list(expression: Expression) -> List[ExistsExpr]:
    out: List[ExistsExpr] = []
    stack: List[Expression] = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, ExistsExpr):
            out.append(node)
        elif isinstance(node, Comparison):
            stack.extend((node.left, node.right))
        elif isinstance(node, BoolExpr):
            stack.extend(node.operands)
        elif isinstance(node, FunctionCall):
            stack.extend(
                arg for arg in node.args if isinstance(arg, Expression)
            )
    return out


# ---------------------------------------------------------------------------
# Operator sets and fragments (Tables 4 and 5)
# ---------------------------------------------------------------------------

#: Pattern operators relevant for the fragment lattice.
PATTERN_OPERATORS = (
    "And",
    "Filter",
    "Optional",
    "Union",
    "Graph",
    "Values",
    "Bind",
    "Minus",
    "Service",
    "SubQuery",
    "2RPQ",
)


def operator_set(query: Query) -> FrozenSet[str]:
    """The set of *pattern* operators the query's body uses.

    This is the classification behind Tables 4 and 5: ``frozenset()``
    means a single atom ("none" row), ``{"And"}`` a pure join, etc.
    ``2RPQ`` flags property-path atoms.
    """
    operators: Set[str] = set()
    for node in _walk_with_expressions(query.pattern):
        if isinstance(node, And):
            operators.add("And")
        elif isinstance(node, PathPattern):
            operators.add("2RPQ")
        elif isinstance(node, Filter):
            operators.add("Filter")
        elif isinstance(node, OptPattern):
            operators.add("Optional")
        elif isinstance(node, UnionPattern):
            operators.add("Union")
        elif isinstance(node, Graph):
            operators.add("Graph")
        elif isinstance(node, Values):
            operators.add("Values")
        elif isinstance(node, Bind):
            operators.add("Bind")
        elif isinstance(node, Minus):
            operators.add("Minus")
        elif isinstance(node, Service):
            operators.add("Service")
        elif isinstance(node, SubQuery):
            operators.add("SubQuery")
    return frozenset(operators)


def is_cq(query: Query) -> bool:
    """CQ: the pattern only uses And (Tables 4/5, "none" + "And")."""
    return operator_set(query) <= {"And"}


def is_cq_f(query: Query) -> bool:
    """CQ+F: only And and Filter."""
    return operator_set(query) <= {"And", "Filter"}


def is_c2rpq(query: Query) -> bool:
    """Pure C2RPQ: only And and property paths."""
    return operator_set(query) <= {"And", "2RPQ"}


def is_c2rpq_f(query: Query) -> bool:
    """C2RPQ+F: And, Filter and property paths."""
    return operator_set(query) <= {"And", "Filter", "2RPQ"}


def uses_property_paths(query: Query) -> bool:
    return "2RPQ" in operator_set(query)


def is_opt_fragment(query: Query) -> bool:
    """Only And, Filter and Optional — the precondition of the
    well-designedness analysis (Section 9.4)."""
    return operator_set(query) <= {"And", "Filter", "Optional"}


# ---------------------------------------------------------------------------
# Filter safety (Section 9.5)
# ---------------------------------------------------------------------------


def filter_constraints(pattern: Pattern) -> List[Expression]:
    return [
        node.constraint
        for node in _walk_with_expressions(pattern)
        if isinstance(node, Filter)
    ]


def _top_level_conjuncts(expression: Expression) -> List[Expression]:
    if isinstance(expression, BoolExpr) and expression.op == "&&":
        out: List[Expression] = []
        for operand in expression.operands:
            out.extend(_top_level_conjuncts(operand))
        return out
    return [expression]


def is_safe_filter(expression: Expression) -> bool:
    """Safe: a unary condition on one variable, or ``?x = ?y``
    (conjunctions of safe conditions count as safe)."""
    conjuncts = _top_level_conjuncts(expression)
    for conjunct in conjuncts:
        variables = conjunct.variables()
        if len(variables) <= 1:
            continue
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and len(variables) == 2
            and isinstance(conjunct.left, TermExpr)
            and isinstance(conjunct.right, TermExpr)
        ):
            continue
        return False
    return True


def is_simple_filter(expression: Expression) -> bool:
    """Simple: each conjunct uses at most two variables."""
    return all(
        len(conjunct.variables()) <= 2
        for conjunct in _top_level_conjuncts(expression)
    )
