"""SPARQL pattern and query evaluation over a
:class:`~repro.graphs.rdf.TripleStore` (the Evaluation problem of
Section 9.1).

Semantics follow Pérez, Arenas & Gutiérrez: solutions are partial
mappings from variables to RDF terms; ``And`` is the compatible join,
``Optional`` the left outer join (the operator whose unrestricted use
makes Evaluation PSPACE-complete), ``Union`` the bag union, ``Filter``
a selection, ``Minus`` the SPARQL 1.1 anti-join.  Property paths are
evaluated through :mod:`repro.graphs.paths` (walk semantics, as the
standard prescribes), with negated property sets handled natively.

Filter expressions implement the practically dominant builtins
(comparisons, logical connectives, arithmetic, ``bound``, ``lang``,
``datatype``, ``str``, ``regex``, ``sameTerm``, ``isIRI``/``isLiteral``
/``isBlank``, ``IN``); an expression that errors makes the row fail the
filter, as in SPARQL.  ``SERVICE`` requires a ``service_resolver``
callback (there is no network in a library); without one it raises
:class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

import re as _re
from typing import Callable, Dict, Iterable, Iterator, List, Optional as Opt

from ..errors import UnsupportedFeatureError
from ..graphs.rdf import TripleStore
from ..regex.automata import glushkov
from .ast import (
    And,
    Bind,
    BlankNode,
    BoolExpr,
    Comparison,
    EmptyPattern,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    Graph,
    IRI,
    Literal,
    Minus,
    Optional as OptPattern,
    Pattern,
    PathPattern,
    Query,
    Service,
    StarExpr,
    SubQuery,
    TermExpr,
    TriplePattern,
    Union as UnionPattern,
    Values,
    Var,
)
from .paths_ast import path_to_regex

Solution = Dict[str, object]  # variable name -> term value (str or Literal)


class _EvalError(Exception):
    """SPARQL expression evaluation error (row fails the filter)."""


def _term_value(term, solution: Opt[Solution] = None):
    """Ground a term: variables look up the solution, IRIs/literals map
    to plain strings / Literal objects."""
    if isinstance(term, Var):
        if solution is None or term.name not in solution:
            raise _EvalError(f"unbound variable ?{term.name}")
        return solution[term.name]
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return term
    if isinstance(term, BlankNode):
        # blank nodes in patterns act as non-projected variables
        name = f"_bnode_{term.name}"
        if solution is None or name not in solution:
            raise _EvalError(f"unbound blank node _:{term.name}")
        return solution[name]
    raise _EvalError(f"cannot ground {term!r}")


def _pattern_slot(term, solution: Solution):
    """Value for an index lookup, or None when the term is a free
    variable in this solution."""
    if isinstance(term, Var):
        value = solution.get(term.name)
        return _as_node(value) if value is not None else None
    if isinstance(term, BlankNode):
        value = solution.get(f"_bnode_{term.name}")
        return _as_node(value) if value is not None else None
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return _as_node(term)
    return None


def _as_node(value) -> str:
    """Node id used in the store for a grounded value."""
    if isinstance(value, Literal):
        return str(value)
    return str(value)


def _bind_term(term, node_value, solution: Solution) -> Opt[Solution]:
    """Extend ``solution`` so that ``term`` matches ``node_value``."""
    if isinstance(term, Var):
        key = term.name
    elif isinstance(term, BlankNode):
        key = f"_bnode_{term.name}"
    elif isinstance(term, IRI):
        return solution if term.value == node_value else None
    elif isinstance(term, Literal):
        return solution if _as_node(term) == node_value else None
    else:
        return None
    existing = solution.get(key)
    if existing is not None:
        return solution if _as_node(existing) == node_value else None
    extended = dict(solution)
    extended[key] = node_value
    return extended


def _compatible(left: Solution, right: Solution) -> Opt[Solution]:
    merged = dict(left)
    for key, value in right.items():
        if key in merged:
            if _as_node(merged[key]) != _as_node(value):
                return None
        else:
            merged[key] = value
    return merged


class PatternExecutor:
    """The ground data accesses pattern evaluation performs, as one
    replaceable surface.

    The :class:`Evaluator` never touches a store directly — every
    triple scan, path step, and node enumeration goes through its
    executor.  The default implementation answers from one
    :class:`~repro.graphs.rdf.TripleStore`; the sharded service
    subclasses it (``repro.service.shard.ShardPatternExecutor``) to
    route each concrete-predicate access to the shard that *owns* the
    predicate (``ShardManifest.owners()``) instead of gathering a union
    store, and to union variable-predicate scans over the owner shards.
    """

    def __init__(self, store: TripleStore):
        self.store = store

    def scan(
        self, s: Opt[str], p: Opt[str], o: Opt[str]
    ) -> Iterable[tuple]:
        """All ``(subject, predicate, object)`` triples matching the
        grounded slots (``None`` = free)."""
        return self.store.triples(s, p, o)

    def successors(self, node: str, predicate: str) -> Iterable[str]:
        return self.store.successors(node, predicate)

    def predecessors(self, node: str, predicate: str) -> Iterable[str]:
        return self.store.predecessors(node, predicate)

    def out_edges(self, node: str) -> Iterable[tuple]:
        """``(predicate, target)`` pairs leaving ``node``."""
        return self.store.out_edges(node)

    def in_edges(self, node: str) -> Iterable[tuple]:
        """``(predicate, source)`` pairs entering ``node``."""
        return self.store.in_edges(node)

    def nodes(self) -> Iterable[str]:
        return self.store.nodes()


class Evaluator:
    """Evaluates patterns and whole queries over a triple store (or,
    via an explicit ``executor``, over whatever data surface answers
    the :class:`PatternExecutor` protocol)."""

    def __init__(
        self,
        store: Opt[TripleStore],
        service_resolver: Opt[
            Callable[[str, Pattern], List[Solution]]
        ] = None,
        executor: Opt[PatternExecutor] = None,
    ):
        if store is None and executor is None:
            raise ValueError("an Evaluator needs a store or an executor")
        self.store = store
        self.executor = (
            executor if executor is not None else PatternExecutor(store)
        )
        self.service_resolver = service_resolver

    # -- pattern evaluation ------------------------------------------------------

    def evaluate_pattern(self, pattern: Pattern) -> List[Solution]:
        return list(self._eval(pattern, [{}]))

    def _eval(
        self, pattern: Pattern, inputs: List[Solution]
    ) -> List[Solution]:
        if isinstance(pattern, EmptyPattern):
            return list(inputs)
        if isinstance(pattern, TriplePattern):
            out: List[Solution] = []
            for solution in inputs:
                out.extend(self._match_triple(pattern, solution))
            return out
        if isinstance(pattern, PathPattern):
            out = []
            for solution in inputs:
                out.extend(self._match_path(pattern, solution))
            return out
        if isinstance(pattern, And):
            return self._eval(pattern.right, self._eval(pattern.left, inputs))
        if isinstance(pattern, UnionPattern):
            return self._eval(pattern.left, inputs) + self._eval(
                pattern.right, inputs
            )
        if isinstance(pattern, OptPattern):
            left_solutions = self._eval(pattern.left, inputs)
            out = []
            for solution in left_solutions:
                extensions = self._eval(pattern.right, [solution])
                out.extend(extensions if extensions else [solution])
            return out
        if isinstance(pattern, Filter):
            candidates = self._eval(pattern.pattern, inputs)
            return [
                solution
                for solution in candidates
                if self._truthy(pattern.constraint, solution)
            ]
        if isinstance(pattern, Minus):
            left_solutions = self._eval(pattern.left, inputs)
            right_solutions = self._eval(pattern.right, [{}])
            out = []
            for solution in left_solutions:
                removed = False
                for other in right_solutions:
                    shared = set(solution) & set(other)
                    if shared and _compatible(solution, other) is not None:
                        removed = True
                        break
                if not removed:
                    out.append(solution)
            return out
        if isinstance(pattern, Bind):
            out = []
            for solution in inputs:
                try:
                    value = self._value(pattern.expression, solution)
                except _EvalError:
                    out.append(solution)
                    continue
                if pattern.variable.name in solution:
                    if _as_node(solution[pattern.variable.name]) == _as_node(
                        value
                    ):
                        out.append(solution)
                    continue
                extended = dict(solution)
                extended[pattern.variable.name] = value
                out.append(extended)
            return out
        if isinstance(pattern, Values):
            out = []
            for solution in inputs:
                for row in pattern.rows:
                    candidate = dict(solution)
                    ok = True
                    for variable, term in zip(pattern.variables_list, row):
                        if term is None:
                            continue
                        value = _as_node(_term_value(term, {}))
                        existing = candidate.get(variable.name)
                        if existing is not None and _as_node(existing) != value:
                            ok = False
                            break
                        candidate[variable.name] = value
                    if ok:
                        out.append(candidate)
            return out
        if isinstance(pattern, Graph):
            # single-graph store: GRAPH constrains nothing but binds the
            # graph variable to the default graph name
            return self._eval(pattern.pattern, inputs)
        if isinstance(pattern, Service):
            if self.service_resolver is None:
                if pattern.silent:
                    return list(inputs)
                raise UnsupportedFeatureError(
                    "SERVICE requires a service_resolver callback"
                )
            endpoint = (
                pattern.endpoint.value
                if isinstance(pattern.endpoint, IRI)
                else str(pattern.endpoint)
            )
            remote = self.service_resolver(endpoint, pattern.pattern)
            out = []
            for solution in inputs:
                for other in remote:
                    merged = _compatible(solution, other)
                    if merged is not None:
                        out.append(merged)
            return out
        if isinstance(pattern, SubQuery):
            inner = self.evaluate_select(pattern.query)
            out = []
            for solution in inputs:
                for other in inner:
                    merged = _compatible(solution, other)
                    if merged is not None:
                        out.append(merged)
            return out
        raise UnsupportedFeatureError(
            f"cannot evaluate pattern {type(pattern).__name__}"
        )

    def _match_triple(
        self, pattern: TriplePattern, solution: Solution
    ) -> Iterator[Solution]:
        s = _pattern_slot(pattern.subject, solution)
        p = _pattern_slot(pattern.predicate, solution)
        o = _pattern_slot(pattern.object, solution)
        for subject, predicate, obj in self.executor.scan(s, p, o):
            step1 = _bind_term(pattern.subject, subject, solution)
            if step1 is None:
                continue
            step2 = _bind_term(pattern.predicate, predicate, step1)
            if step2 is None:
                continue
            step3 = _bind_term(pattern.object, obj, step2)
            if step3 is not None:
                yield step3

    def _match_path(
        self, pattern: PathPattern, solution: Solution
    ) -> Iterator[Solution]:
        expr = path_to_regex(pattern.path)
        nfa = glushkov(expr)
        source_value = _pattern_slot(pattern.subject, solution)
        target_value = _pattern_slot(pattern.object, solution)
        sources = (
            [source_value]
            if source_value is not None
            else sorted(self.executor.nodes())
        )
        start_states = nfa.epsilon_closure(nfa.initial)
        for source in sources:
            seen = {(source, state) for state in start_states}
            queue = list(seen)
            reached = set()
            if start_states & nfa.finals:
                reached.add(source)
            while queue:
                node, state = queue.pop()
                for label, targets in nfa.transitions[state].items():
                    for next_node in self._path_step(node, label):
                        for next_state in targets:
                            item = (next_node, next_state)
                            if item in seen:
                                continue
                            seen.add(item)
                            queue.append(item)
                            if next_state in nfa.finals:
                                reached.add(next_node)
            for target in sorted(reached):
                if target_value is not None and target != target_value:
                    continue
                step1 = _bind_term(pattern.subject, source, solution)
                if step1 is None:
                    continue
                step2 = _bind_term(pattern.object, target, step1)
                if step2 is not None:
                    yield step2

    def _path_step(self, node: str, label: str) -> Iterable[str]:
        if label.startswith("!"):
            body = label[1:]
            forbidden_forward = set()
            forbidden_inverse = set()
            for atom in body.split("|"):
                if atom.startswith("^"):
                    forbidden_inverse.add(atom[1:])
                else:
                    forbidden_forward.add(atom)
            out = set()
            for predicate, target in self.executor.out_edges(node):
                if predicate not in forbidden_forward:
                    out.add(target)
            for predicate, source in self.executor.in_edges(node):
                if f"{predicate}" in forbidden_inverse:
                    continue
                if forbidden_inverse:
                    out.add(source)
            # per spec, inverse candidates only arise when the set
            # mentions inverse atoms
            return out
        if label.startswith("^"):
            return self.executor.predecessors(node, label[1:])
        return self.executor.successors(node, label)

    # -- expression evaluation -----------------------------------------------------

    def _truthy(self, expression: Expression, solution: Solution) -> bool:
        try:
            return bool(self._value(expression, solution))
        except _EvalError:
            return False

    def _value(self, expression: Expression, solution: Solution):
        if isinstance(expression, TermExpr):
            value = _term_value(expression.term, solution)
            return _coerce(value)
        if isinstance(expression, Comparison):
            return self._compare(expression, solution)
        if isinstance(expression, BoolExpr):
            if expression.op == "!":
                return not self._truthy_strict(
                    expression.operands[0], solution
                )
            if expression.op == "&&":
                return all(
                    self._truthy_strict(operand, solution)
                    for operand in expression.operands
                )
            return any(
                self._truthy_strict(operand, solution)
                for operand in expression.operands
            )
        if isinstance(expression, ExistsExpr):
            matches = self._eval(expression.pattern, [dict(solution)])
            return (not matches) if expression.negated else bool(matches)
        if isinstance(expression, FunctionCall):
            return self._call(expression, solution)
        if isinstance(expression, StarExpr):
            raise _EvalError("* outside aggregate")
        raise _EvalError(f"cannot evaluate {expression!r}")

    def _truthy_strict(
        self, expression: Expression, solution: Solution
    ) -> bool:
        return bool(self._value(expression, solution))

    def _compare(self, expression: Comparison, solution: Solution):
        op = expression.op
        if op in ("IN", "NOT IN"):
            left = _as_node(self._value(expression.left, solution))
            members = {
                _as_node(self._value(arg, solution))
                for arg in expression.right.args  # type: ignore[attr-defined]
            }
            inside = left in members
            return inside if op == "IN" else not inside
        left = self._value(expression.left, solution)
        right = self._value(expression.right, solution)
        if op in ("+", "-", "*", "/"):
            lnum, rnum = _numeric(left), _numeric(right)
            if op == "+":
                return lnum + rnum
            if op == "-":
                return lnum - rnum
            if op == "*":
                return lnum * rnum
            if rnum == 0:
                raise _EvalError("division by zero")
            return lnum / rnum
        try:
            lnum, rnum = _numeric(left), _numeric(right)
            left, right = lnum, rnum
        except _EvalError:
            left, right = _as_node(left), _as_node(right)
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise _EvalError(f"unknown operator {op}")

    def _call(self, expression: FunctionCall, solution: Solution):
        name = expression.name.lower()
        args = expression.args
        if name == "bound":
            term = args[0]
            if isinstance(term, TermExpr) and isinstance(term.term, Var):
                return term.term.name in solution
            raise _EvalError("bound() needs a variable")
        if name == "lang":
            literal = _as_literal(self._value(args[0], solution))
            if literal is not None:
                return literal.language or ""
            return ""
        if name == "datatype":
            literal = _as_literal(self._value(args[0], solution))
            if literal is not None:
                return literal.datatype or "xsd:string"
            raise _EvalError("datatype() needs a literal")
        if name == "str":
            return _lexical(self._value(args[0], solution))
        if name == "regex":
            text = _lexical(self._value(args[0], solution))
            pattern_text = _lexical(self._value(args[1], solution))
            flags = 0
            if len(args) > 2:
                if "i" in _lexical(self._value(args[2], solution)):
                    flags |= _re.IGNORECASE
            return _re.search(pattern_text, text, flags) is not None
        if name == "sameterm":
            return _as_node(self._value(args[0], solution)) == _as_node(
                self._value(args[1], solution)
            )
        if name == "isiri" or name == "isuri":
            value = self._value(args[0], solution)
            return isinstance(value, str) and not value.startswith('"')
        if name == "isliteral":
            return _as_literal(self._value(args[0], solution)) is not None
        if name == "isblank":
            value = self._value(args[0], solution)
            return isinstance(value, str) and value.startswith("_:")
        raise _EvalError(f"unsupported function {expression.name}")

    # -- query evaluation --------------------------------------------------------------

    def evaluate_select(self, query: Query) -> List[Solution]:
        solutions = self.evaluate_pattern(query.pattern)
        modifier = query.modifier
        if modifier.group_by or query.aggregates_used():
            solutions = self._aggregate(query, solutions)
        elif query.projections:
            solutions = [
                self._project(query, solution) for solution in solutions
            ]
        if modifier.distinct or modifier.reduced:
            seen = set()
            unique: List[Solution] = []
            for solution in solutions:
                key = tuple(sorted((k, _as_node(v)) for k, v in solution.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(solution)
            solutions = unique
        for condition in reversed(modifier.order_by):
            def sort_key(solution, cond=condition):
                try:
                    value = self._value(cond.expression, solution)
                except _EvalError:
                    return (0, "")
                if isinstance(value, (int, float)):
                    return (1, value)
                return (2, _as_node(value))

            solutions = sorted(
                solutions, key=sort_key, reverse=condition.descending
            )
        offset = modifier.offset or 0
        if offset:
            solutions = solutions[offset:]
        if modifier.limit is not None:
            solutions = solutions[: modifier.limit]
        return solutions

    def _project(self, query: Query, solution: Solution) -> Solution:
        out: Solution = {}
        for projection in query.projections:
            if projection.expression is None:
                if projection.variable.name in solution:
                    out[projection.variable.name] = solution[
                        projection.variable.name
                    ]
            else:
                try:
                    out[projection.variable.name] = self._value(
                        projection.expression, solution
                    )
                except _EvalError:
                    pass
        return out

    def _aggregate(
        self, query: Query, solutions: List[Solution]
    ) -> List[Solution]:
        groups: Dict[tuple, List[Solution]] = {}
        for solution in solutions:
            key_parts = []
            for group_expr in query.modifier.group_by:
                try:
                    key_parts.append(_as_node(self._value(group_expr, solution)))
                except _EvalError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(solution)
        if not query.modifier.group_by:
            groups = {(): solutions} if solutions else {(): []}
        out: List[Solution] = []
        for key, members in groups.items():
            row: Solution = {}
            for group_expr, value in zip(query.modifier.group_by, key):
                if isinstance(group_expr, TermExpr) and isinstance(
                    group_expr.term, Var
                ):
                    if value is not None:
                        row[group_expr.term.name] = value
            for projection in query.projections:
                if projection.expression is None:
                    if members and projection.variable.name in members[0]:
                        row[projection.variable.name] = members[0][
                            projection.variable.name
                        ]
                    continue
                row[projection.variable.name] = self._aggregate_value(
                    projection.expression, members
                )
            keep = True
            for having in query.modifier.having:
                try:
                    if not self._aggregate_value(having, members):
                        keep = False
                except _EvalError:
                    keep = False
            if keep:
                out.append(row)
        return out

    def _aggregate_value(self, expression: Expression, members: List[Solution]):
        if isinstance(expression, FunctionCall) and expression.name in (
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
            "SAMPLE",
        ):
            values = []
            for member in members:
                if expression.args and isinstance(
                    expression.args[0], StarExpr
                ):
                    values.append(1)
                    continue
                try:
                    values.append(self._value(expression.args[0], member))
                except _EvalError:
                    continue
            if expression.distinct:
                seen = set()
                deduped = []
                for value in values:
                    key = _as_node(value)
                    if key not in seen:
                        seen.add(key)
                        deduped.append(value)
                values = deduped
            if expression.name == "COUNT":
                return len(values)
            if not values:
                raise _EvalError("aggregate over empty group")
            if expression.name == "SAMPLE":
                return values[0]
            numbers = [_numeric(v) for v in values]
            if expression.name == "SUM":
                return sum(numbers)
            if expression.name == "AVG":
                return sum(numbers) / len(numbers)
            if expression.name == "MIN":
                return min(numbers)
            return max(numbers)
        if isinstance(expression, Comparison):
            left = self._aggregate_value(expression.left, members)
            right = self._aggregate_value(expression.right, members)
            return Evaluator._compare_values(expression.op, left, right)
        if isinstance(expression, TermExpr) and members:
            return self._value(expression, members[0])
        raise _EvalError(f"cannot aggregate {expression!r}")

    @staticmethod
    def _compare_values(op: str, left, right):
        try:
            left, right = _numeric(left), _numeric(right)
        except _EvalError:
            left, right = _as_node(left), _as_node(right)
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise _EvalError(f"unknown operator {op}")

    def evaluate_ask(self, query: Query) -> bool:
        return bool(self.evaluate_pattern(query.pattern))

    def evaluate_construct(self, query: Query) -> TripleStore:
        result = TripleStore()
        for solution in self.evaluate_pattern(query.pattern):
            for template in query.construct_template:
                try:
                    s = _as_node(_term_value(template.subject, solution))
                    p = _as_node(_term_value(template.predicate, solution))
                    o = _as_node(_term_value(template.object, solution))
                except _EvalError:
                    continue
                result.add(s, p, o)
        return result

    def evaluate(self, query: Query):
        """Dispatch on the query type.  DESCRIBE is implementation-
        defined per the standard; ours returns the concise bounded
        description (all outgoing triples) of the described nodes."""
        if query.query_type == "SELECT":
            return self.evaluate_select(query)
        if query.query_type == "ASK":
            return self.evaluate_ask(query)
        if query.query_type == "CONSTRUCT":
            return self.evaluate_construct(query)
        if query.query_type == "DESCRIBE":
            result = TripleStore()
            nodes = []
            for term in query.describe_terms:
                if isinstance(term, IRI):
                    nodes.append(term.value)
                elif isinstance(term, Var):
                    for solution in self.evaluate_pattern(query.pattern):
                        if term.name in solution:
                            nodes.append(_as_node(solution[term.name]))
            for node in nodes:
                for s, p, o in self.executor.scan(node, None, None):
                    result.add(s, p, o)
            return result
        raise UnsupportedFeatureError(
            f"unknown query type {query.query_type}"
        )


def _coerce(value):
    """Literal -> number when it looks numeric (for filter arithmetic)."""
    return value


_NODE_LITERAL_RE = _re.compile(
    r'^"(?P<lexical>(?:[^"\\]|\\.)*)"(?:@(?P<lang>[A-Za-z\-]+)'
    r"|\^\^(?P<datatype>\S+))?$"
)


def parse_node_literal(text: str) -> Opt[Literal]:
    """Recover a :class:`Literal` from its node-string encoding
    (``'"30"^^xsd:integer'`` → ``Literal("30", datatype="xsd:integer")``).

    Store nodes are plain strings; literal-valued objects round-trip
    through :func:`str`, and this inverse lets filters see through it.
    """
    match = _NODE_LITERAL_RE.match(text)
    if match is None:
        return None
    return Literal(
        match.group("lexical"), match.group("lang"), match.group("datatype")
    )


def _as_literal(value) -> Opt[Literal]:
    if isinstance(value, Literal):
        return value
    if isinstance(value, str) and value.startswith('"'):
        return parse_node_literal(value)
    return None


def _lexical(value) -> str:
    """The lexical form: literals lose quotes/tags, other terms are
    rendered as-is."""
    literal = _as_literal(value)
    if literal is not None:
        return literal.lexical
    return str(value)


def _numeric(value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return value
    literal = _as_literal(value)
    if literal is not None:
        value = literal.lexical
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError as exc:
                raise _EvalError(str(exc)) from exc
    raise _EvalError(f"not numeric: {value!r}")


def evaluate(store: TripleStore, query: Query, **kwargs):
    """Convenience one-shot evaluation."""
    return Evaluator(store, **kwargs).evaluate(query)
