"""Scenario: the complexity landscape of chain regular expressions
(Theorems 4.4–4.5 and Appendix A).

Demonstrates the gap the paper highlights between worst-case theory and
fragment-aware algorithms:

1. PTIME containment for RE(a, a+) and RE(a, (+a)) via block/position
   normal forms, cross-checked against the general automata procedure;
2. the remarkable PTIME *equivalence* test for RE(a, a*) / RE(a, a?)
   despite coNP-complete containment;
3. the executable Appendix A reduction: validity of a DNF formula as a
   containment question between RE(a, a?) expressions.

Usage::

    python examples/regex_complexity.py
"""

import random
import time

from repro.regex import (
    DNFFormula,
    best_containment,
    containment_a_aplus,
    equivalent,
    equivalent_blocks,
    is_contained,
    parse,
    random_dnf,
    validity_to_containment,
)


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def fragment_algorithms() -> None:
    print("== fragment-aware vs general algorithms ==")
    # long RE(a, a+) chains: block containment is linear
    n = 400
    left = parse(" ".join(["(a+)"] * n + ["b"]))
    right = parse(" ".join(["a"] + ["(a+)"] * (n - 1) + ["b"]))
    fast, fast_time = timed(containment_a_aplus, left, right)
    slow, slow_time = timed(is_contained, left, right)
    assert fast == slow
    print(
        f"RE(a,a+) containment, {n} factors: block algorithm "
        f"{fast_time * 1000:.2f} ms vs automata {slow_time * 1000:.2f} ms "
        f"(answer: {fast})"
    )

    # PTIME equivalence where containment is coNP-complete
    e1 = parse("a* a b? b*")
    e2 = parse("(a+) b*")  # parenthesized: '+' here is one-or-more
    print(
        f"equivalence in RE(a, a*, a?): {e1} == {e2}: "
        f"{equivalent_blocks(e1, e2)} "
        f"(general check agrees: {equivalent(e1, e2)})"
    )


def reduction_demo() -> None:
    print("\n== Appendix A: validity -> containment ==")
    # the paper's formula: (x1 ∧ ¬x2 ∧ x3) ∨ (¬x1 ∧ x3 ∧ ¬x4) ∨ (x2 ∧ ¬x3 ∧ x4)
    phi = DNFFormula(
        4,
        (
            {0: True, 1: False, 2: True},
            {0: False, 2: True, 3: False},
            {1: True, 2: False, 3: True},
        ),
    )
    e1, e2 = validity_to_containment(phi)
    print(f"φ valid (brute force): {phi.is_valid()}")
    print(f"L(e1) ⊆ L(e2):         {is_contained(e1, e2)}")
    print(f"|e1| = {e1.size()} nodes, |e2| = {e2.size()} nodes")

    tautology = DNFFormula(2, ({0: True}, {0: False}))
    e1, e2 = validity_to_containment(tautology)
    print(
        f"x1 ∨ ¬x1 valid: {tautology.is_valid()}; containment: "
        f"{is_contained(e1, e2)}"
    )

    rng = random.Random(7)
    agreements = 0
    for _ in range(20):
        formula = random_dnf(3, 2, 2, rng)
        e1, e2 = validity_to_containment(formula)
        agreements += is_contained(e1, e2) == formula.is_valid()
    print(f"randomized agreement with brute force: {agreements}/20")


def dispatch_demo() -> None:
    print("\n== best_containment dispatch ==")
    cases = [
        ("a(a+)b", "(a+)b", "RE(a,a+) blocks"),
        ("(ab)*", "(a+b)*", "greedy downward-closed"),
        ("(a+b)*a", "b*a(b*a)*", "general automata"),
    ]
    for left, right, route in cases:
        answer = best_containment(parse(left), parse(right))
        print(f"{left} ⊆ {right}: {answer}   [{route}]")


if __name__ == "__main__":
    fragment_algorithms()
    reduction_demo()
    dispatch_demo()
