"""Scenario: the treewidth-of-real-data study (Section 7.1, Table 1).

Maniu et al. computed treewidth *intervals* for 25 real graph data sets;
this example regenerates the qualitative finding on the synthetic
analogues of DESIGN.md §2: hierarchical data is nearly a tree, road
networks sit in the middle, and web-like graphs have treewidth so large
that decomposition-based algorithms are hopeless — while the tree-like
fringe can still be peeled off.

Usage::

    python examples/treewidth_study.py
"""

import random

from repro.graphs import (
    hierarchy_graph,
    lower_bound_degeneracy,
    p2p_network,
    road_network,
    treewidth_interval,
    upper_bound_min_degree,
    web_graph,
)


def fringe_fraction(graph) -> float:
    """Fraction of nodes peelable with degree <= 2 — the 'tree-like
    fringe' of Newman–Strogatz–Watts the paper mentions: partial
    decompositions can still handle this part."""
    work = {node: set(neigh) for node, neigh in graph.items()}
    peeled = 0
    changed = True
    while changed:
        changed = False
        for node in list(work):
            if len(work[node]) <= 2:
                for neighbour in work[node]:
                    work[neighbour].discard(node)
                del work[node]
                peeled += 1
                changed = True
    return peeled / max(len(graph), 1)


def main() -> None:
    rng = random.Random(2022)
    datasets = [
        ("Royal-like (genealogy)", hierarchy_graph(1500, rng)),
        ("HongKong-like (road grid)", road_network(18, 18, rng)),
        ("Paris-like (road grid)", road_network(28, 24, rng)),
        ("Gnutella-like (P2P)", p2p_network(1200, 2700, rng)),
        ("Wikipedia-like (web PA)", web_graph(800, 8, rng)),
    ]
    print(
        f"{'Dataset':28s} {'nodes':>7s} {'edges':>7s} "
        f"{'lower tw':>9s} {'upper tw':>9s} {'fringe':>7s}"
    )
    for name, graph in datasets:
        interval = treewidth_interval(graph, use_min_fill=False)
        fringe = fringe_fraction(graph)
        print(
            f"{name:28s} {interval.nodes:7d} {interval.edges:7d} "
            f"{interval.lower:9d} {interval.upper:9d} {fringe:6.0%}"
        )
    print(
        "\nReading: the ordering matches Table 1 — hierarchy << road << "
        "web-like.\nThe large fringe of road networks is what makes "
        "partial decompositions useful."
    )


if __name__ == "__main__":
    main()
